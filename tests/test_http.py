"""HTTP front end + model registry: the serving stack on the wire.

Pins down the network-surface contracts of :mod:`repro.serve.http` and
:mod:`repro.serve.registry`:

* **the wire adds no numerics** -- unary responses and every streamed
  checkpoint event are bit-identical to in-process
  :meth:`~repro.api.Session.predict` (checkpoint events against the
  matching single-point prefix schedule, the terminal event against the
  full early-exit result, exit checkpoints included);
* **typed errors survive HTTP** -- malformed JSON / oversized bodies /
  unknown models / unknown options map to 4xx with machine-readable
  ``type``/``reason`` fields, deadline shedding maps to 504 with
  ``reason="deadline"`` and never writes the result cache (the PR 6
  invariant extended to the wire);
* **hot reload is atomic** -- overwriting an artifact and scanning swaps
  the replica pool with zero dropped requests under concurrent load, and
  every response is bit-exact against one of the two artifact versions;
* **drain extends through open connections** -- a checkpoint stream open
  across ``close()`` ends with a terminal ``"draining"`` event instead
  of a dead socket.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.api import PredictOptions, ScModel, Session
from repro.config import HttpConfig, ServiceConfig
from repro.errors import ConfigurationError, ModelNotFoundError
from repro.nn.architectures import LayerSpec, build_network
from repro.obs import validate_exposition
from repro.serve import ModelRegistry, ScHttpServer, describe_artifact

BACKEND = "bit-exact-packed"
STREAM_LENGTH = 128


def _tiny_cnn(seed: int):
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs,
        activation="hardware",
        seed=seed,
        name="tiny-test",
        training_stream_length=STREAM_LENGTH,
    )


def _tiny_model(seed: int) -> ScModel:
    return ScModel(
        _tiny_cnn(seed), weight_bits=10, stream_length=STREAM_LENGTH, seed=7
    )


def _service_config(**overrides) -> ServiceConfig:
    defaults = dict(backend=BACKEND, num_workers=1, cache_capacity=0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _request(port, method, path, body=None, timeout=120.0):
    """One HTTP request; returns ``(status, parsed-or-raw body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        if isinstance(body, (dict, list)):
            body = json.dumps(body)
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        raw = resp.read()
    finally:
        conn.close()
    if resp.getheader("Content-Type", "").startswith("application/json"):
        return resp.status, json.loads(raw)
    return resp.status, raw


def _read_events(resp):
    """Decode SSE ``data:`` events from a streaming response."""
    events = []
    for block in resp.read().decode("utf-8").split("\n\n"):
        if block.startswith("data: "):
            events.append(json.loads(block[len("data: ") :]))
    return events


def _stream(port, path, body, timeout=120.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", path, body=json.dumps(body))
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type") == "text/event-stream"
        return _read_events(resp)
    finally:
        conn.close()


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((4, 1, 28, 28))


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    return _tiny_model(seed=5).save(tmp_path_factory.mktemp("models") / "m1")


@pytest.fixture(scope="module")
def session(artifact):
    with Session.from_artifact(artifact, backend=BACKEND) as sess:
        yield sess


@pytest.fixture(scope="module")
def server(artifact):
    registry = ModelRegistry(
        models={"m1": artifact},
        service=_service_config(cache_capacity=64, num_workers=2),
    )
    with ScHttpServer(registry, HttpConfig()) as srv:
        yield srv
    registry.close()


class TestProbesAndCatalog:
    def test_healthz(self, server):
        status, payload = _request(server.port, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "draining": False}

    def test_readyz(self, server):
        status, payload = _request(server.port, "GET", "/readyz")
        assert status == 200
        assert payload == {"status": "ready", "models": ["m1"]}

    def test_models_listing(self, server, artifact):
        status, payload = _request(server.port, "GET", "/v1/models")
        assert status == 200
        (entry,) = payload["models"]
        info = describe_artifact(artifact)
        assert entry["name"] == "m1"
        assert entry["format_version"] == info.format_version
        assert entry["weight_bits"] == info.weight_bits
        assert entry["stream_length"] == STREAM_LENGTH
        assert entry["sha256"] == info.sha256

    def test_metrics_golden_parse(self, server):
        status, raw = _request(server.port, "GET", "/metrics")
        assert status == 200
        families = validate_exposition(raw.decode("utf-8"))
        assert families  # non-empty exposition either shape

    def test_unknown_route_404(self, server):
        status, payload = _request(server.port, "GET", "/nope")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"

    def test_wrong_method_405(self, server):
        status, payload = _request(server.port, "GET", "/v1/models/m1/predict")
        assert status == 405
        assert payload["error"]["type"] == "MethodNotAllowed"


class TestUnaryPredict:
    def test_bit_identical_to_session(self, server, session, images):
        status, payload = _request(
            server.port,
            "POST",
            "/v1/models/m1/predict",
            {"images": images.tolist()},
        )
        assert status == 200
        reference = session.predict(images, PredictOptions(early_exit=True))
        assert np.array_equal(np.asarray(payload["scores"]), reference.scores)
        assert np.array_equal(
            np.asarray(payload["predictions"]), reference.predictions
        )
        assert np.array_equal(
            np.asarray(payload["exit_checkpoints"]),
            reference.exit_checkpoints,
        )
        assert payload["stream_length"] == STREAM_LENGTH
        assert payload["model"] == "m1"

    def test_wire_options_respected(self, server, session, images):
        body = {
            "images": images.tolist(),
            "options": {"stream_length": 64, "early_exit": False},
        }
        status, payload = _request(
            server.port, "POST", "/v1/models/m1/predict", body
        )
        assert status == 200
        reference = session.predict(
            images, PredictOptions(stream_length=64, early_exit=False)
        )
        assert np.array_equal(np.asarray(payload["scores"]), reference.scores)
        assert max(payload["exit_checkpoints"]) <= 64

    def test_repeat_request_is_cache_served(self, server):
        repeat = np.random.default_rng(21).random((2, 1, 28, 28)).tolist()
        _, first = _request(
            server.port, "POST", "/v1/models/m1/predict", {"images": repeat}
        )
        _, second = _request(
            server.port, "POST", "/v1/models/m1/predict", {"images": repeat}
        )
        assert first["cached"] == [False, False]
        assert second["cached"] == [True, True]
        assert second["scores"] == first["scores"]


class TestStreaming:
    def test_checkpoints_bit_identical_to_prefixes(
        self, server, session, images
    ):
        events = _stream(
            server.port, "/v1/models/m1/predict/stream", {"images": images.tolist()}
        )
        assert events[-1]["kind"] == "done"
        checkpoints = [e for e in events if e["kind"] == "checkpoint"]
        assert checkpoints and checkpoints[0]["checkpoint"] == STREAM_LENGTH // 8
        for event in checkpoints:
            point = event["checkpoint"]
            subset = images[event["images"]]
            reference = session.predict(
                subset,
                PredictOptions(
                    stream_length=point,
                    checkpoints=(point,),
                    early_exit=False,
                ),
            )
            assert np.array_equal(
                np.asarray(event["scores"]), reference.scores
            ), f"checkpoint {point} not an exact prefix"
            assert np.array_equal(
                np.asarray(event["predictions"]), reference.predictions
            )

    def test_done_event_matches_early_exit_predict(
        self, server, session, images
    ):
        events = _stream(
            server.port, "/v1/models/m1/predict/stream", {"images": images.tolist()}
        )
        done = events[-1]
        assert done["kind"] == "done"
        assert done["reason"] in ("complete", "early_exit")
        reference = session.predict(images, PredictOptions(early_exit=True))
        assert np.array_equal(np.asarray(done["scores"]), reference.scores)
        assert np.array_equal(
            np.asarray(done["predictions"]), reference.predictions
        )
        assert np.array_equal(
            np.asarray(done["exit_checkpoints"]), reference.exit_checkpoints
        )
        assert all(done["evaluated"])

    def test_exited_images_leave_the_stream(self, server, images):
        events = _stream(
            server.port, "/v1/models/m1/predict/stream", {"images": images.tolist()}
        )
        done = events[-1]
        gone: set[int] = set()
        for event in events[:-1]:
            assert not gone.intersection(event["images"])
            gone.update(event["exited"])
        # Each image's reported exit checkpoint is the last one it was
        # streamed at.
        last_seen = {}
        for event in events[:-1]:
            for index in event["images"]:
                last_seen[index] = event["checkpoint"]
        assert [last_seen[i] for i in range(images.shape[0])] == done[
            "exit_checkpoints"
        ]

    def test_explicit_schedule_streams_every_point(
        self, server, session, images
    ):
        schedule = [32, 64, 128]
        events = _stream(
            server.port,
            "/v1/models/m1/predict/stream",
            {
                "images": images.tolist(),
                "options": {"checkpoints": schedule, "early_exit": False},
            },
        )
        checkpoints = [e["checkpoint"] for e in events if e["kind"] == "checkpoint"]
        assert checkpoints == schedule
        assert events[-1]["reason"] == "complete"
        reference = session.predict(
            images,
            PredictOptions(checkpoints=tuple(schedule), early_exit=False),
        )
        assert np.array_equal(
            np.asarray(events[-1]["scores"]), reference.scores
        )


class TestTypedRejections:
    def test_malformed_json_400(self, server):
        status, payload = _request(
            server.port, "POST", "/v1/models/m1/predict", "{not json"
        )
        assert status == 400
        assert payload["error"]["reason"] == "malformed_json"

    def test_non_object_body_400(self, server):
        status, payload = _request(
            server.port, "POST", "/v1/models/m1/predict", [1, 2, 3]
        )
        assert status == 400
        assert payload["error"]["reason"] == "malformed_json"

    def test_missing_images_400(self, server):
        status, payload = _request(
            server.port, "POST", "/v1/models/m1/predict", {"options": {}}
        )
        assert status == 400
        assert payload["error"]["reason"] == "missing_images"

    def test_ragged_images_400(self, server):
        status, payload = _request(
            server.port,
            "POST",
            "/v1/models/m1/predict",
            {"images": [[1.0, 2.0], [3.0]]},
        )
        assert status == 400
        assert payload["error"]["reason"] == "bad_images"

    def test_unknown_option_400(self, server):
        status, payload = _request(
            server.port,
            "POST",
            "/v1/models/m1/predict",
            {"images": [[0.5]], "options": {"temperature": 2}},
        )
        assert status == 400
        assert payload["error"]["reason"] == "bad_options"

    def test_unknown_model_404(self, server, images):
        status, payload = _request(
            server.port,
            "POST",
            "/v1/models/ghost/predict",
            {"images": images.tolist()},
        )
        assert status == 404
        assert payload["error"]["type"] == "ModelNotFoundError"
        assert payload["error"]["reason"] == "unknown_model"

    def test_oversized_body_413(self, artifact):
        registry = ModelRegistry(
            models={"m1": artifact}, service=_service_config()
        )
        config = HttpConfig(max_body_bytes=1024)
        try:
            with ScHttpServer(registry, config) as server:
                big = {"images": [[0.5] * 2000]}
                status, payload = _request(
                    server.port, "POST", "/v1/models/m1/predict", big
                )
                assert status == 413
                assert payload["error"]["reason"] == "oversized_body"
        finally:
            registry.close()

    def test_shape_error_400(self, server):
        status, payload = _request(
            server.port,
            "POST",
            "/v1/models/m1/predict",
            {"images": [[0.1, 0.2, 0.3]]},
        )
        assert status == 400
        assert payload["error"]["type"] in ("ShapeError", "EncodingError")


class TestDeadlineOnTheWire:
    """The PR 6 deadline invariant extended through HTTP."""

    @pytest.fixture()
    def shed_server(self, artifact):
        registry = ModelRegistry(
            models={"m1": artifact},
            service=_service_config(shed_unmeetable_deadlines=True),
        )
        with ScHttpServer(registry, HttpConfig()) as srv:
            yield srv
        registry.close()

    def test_unmeetable_deadline_returns_typed_504(self, shed_server, images):
        # One computed request primes the service's streaming-rate
        # estimate; only then can an unmeetable deadline be priced.
        status, _ = _request(
            shed_server.port,
            "POST",
            "/v1/models/m1/predict",
            {"images": images.tolist()},
        )
        assert status == 200
        status, payload = _request(
            shed_server.port,
            "POST",
            "/v1/models/m1/predict",
            {
                "images": images.tolist(),
                "options": {"deadline_ms": 0.001},
            },
        )
        assert status == 504
        assert payload["error"]["type"] == "ServiceOverloadError"
        assert payload["error"]["reason"] == "deadline"

    def test_streaming_deadline_ends_typed(self, shed_server, images):
        status, _ = _request(
            shed_server.port,
            "POST",
            "/v1/models/m1/predict",
            {"images": images.tolist()},
        )
        assert status == 200
        events = _stream(
            shed_server.port,
            "/v1/models/m1/predict/stream",
            {
                "images": images.tolist(),
                "options": {"deadline_ms": 0.001},
            },
        )
        terminal = events[-1]
        if terminal["kind"] == "error":
            assert terminal["error"]["reason"] == "deadline"
        else:
            assert terminal["kind"] == "done"
            assert terminal["reason"] == "deadline"

    def test_deadline_requests_never_write_the_cache(self, artifact):
        registry = ModelRegistry(
            models={"m1": artifact},
            service=_service_config(cache_capacity=64),
        )
        probe = np.random.default_rng(31).random((2, 1, 28, 28)).tolist()
        try:
            with ScHttpServer(registry, HttpConfig()) as server:
                # Deadline generous enough to complete -- the request
                # succeeds, but a deadline-budgeted result must not be
                # cached (wall-clock dependent answers poison reuse).
                status, first = _request(
                    server.port,
                    "POST",
                    "/v1/models/m1/predict",
                    {
                        "images": probe,
                        "options": {"deadline_ms": 60000},
                    },
                )
                assert status == 200
                assert first["cached"] == [False, False]
                status, second = _request(
                    server.port,
                    "POST",
                    "/v1/models/m1/predict",
                    {"images": probe},
                )
                assert status == 200
                assert second["cached"] == [False, False]  # no stale write
                status, third = _request(
                    server.port,
                    "POST",
                    "/v1/models/m1/predict",
                    {"images": probe},
                )
                assert third["cached"] == [True, True]  # plain one cached
        finally:
            registry.close()


class TestHotReload:
    def test_scan_swaps_bit_exactly(self, tmp_path, images):
        path = _tiny_model(seed=5).save(tmp_path / "m")
        registry = ModelRegistry(
            models={"m": path}, service=_service_config()
        )
        try:
            with ScHttpServer(registry, HttpConfig()) as server:
                with Session.from_artifact(path, backend=BACKEND) as sess:
                    v1 = sess.predict(images, PredictOptions(early_exit=True))
                status, before = _request(
                    server.port,
                    "POST",
                    "/v1/models/m/predict",
                    {"images": images.tolist()},
                )
                assert status == 200
                assert np.array_equal(np.asarray(before["scores"]), v1.scores)
                assert before["generation"] == 1

                _tiny_model(seed=17).save(tmp_path / "m")
                changes = registry.scan()
                assert changes["reloaded"] == ["m"]

                with Session.from_artifact(path, backend=BACKEND) as sess:
                    v2 = sess.predict(images, PredictOptions(early_exit=True))
                assert not np.array_equal(v1.scores, v2.scores)
                status, after = _request(
                    server.port,
                    "POST",
                    "/v1/models/m/predict",
                    {"images": images.tolist()},
                )
                assert status == 200
                assert np.array_equal(np.asarray(after["scores"]), v2.scores)
                assert after["generation"] > before["generation"]
        finally:
            registry.close()

    def test_reload_drops_no_requests_under_load(self, tmp_path, images):
        path = _tiny_model(seed=5).save(tmp_path / "m")
        registry = ModelRegistry(
            models={"m": path},
            service=_service_config(num_workers=2),
        )
        with Session.from_artifact(path, backend=BACKEND) as sess:
            v1 = sess.predict(images, PredictOptions(early_exit=True))
        try:
            with ScHttpServer(registry, HttpConfig()) as server:
                results: list = []
                errors: list = []
                stop = threading.Event()

                def hammer():
                    while not stop.is_set():
                        try:
                            status, payload = _request(
                                server.port,
                                "POST",
                                "/v1/models/m/predict",
                                {"images": images.tolist()},
                            )
                            results.append((status, payload))
                        except Exception as exc:  # noqa: BLE001
                            errors.append(exc)

                threads = [
                    threading.Thread(target=hammer) for _ in range(4)
                ]
                for t in threads:
                    t.start()
                try:
                    while len(results) < 8 and not errors:
                        time.sleep(0.02)
                    _tiny_model(seed=17).save(tmp_path / "m")
                    changes = registry.scan()
                    while len(results) < 24 and not errors:
                        time.sleep(0.02)
                finally:
                    stop.set()
                    for t in threads:
                        t.join(timeout=120)
                with Session.from_artifact(path, backend=BACKEND) as sess:
                    v2 = sess.predict(images, PredictOptions(early_exit=True))
                assert not errors
                assert changes["reloaded"] == ["m"]
                generations = set()
                for status, payload in results:
                    assert status == 200, payload
                    scores = np.asarray(payload["scores"])
                    assert np.array_equal(scores, v1.scores) or np.array_equal(
                        scores, v2.scores
                    ), "a response matched neither artifact generation"
                    generations.add(payload["generation"])
                assert 2 in generations  # the new pool actually served
        finally:
            registry.close()


class TestDrain:
    def test_drain_with_open_stream_ends_typed(self, artifact, images):
        # A slow micro-batching window stretches each checkpoint chunk,
        # holding the stream open long enough to drain across it.
        registry = ModelRegistry(
            models={"m1": artifact},
            service=_service_config(max_wait_ms=200.0),
        )
        server = ScHttpServer(registry, HttpConfig()).start_background()
        closer: threading.Thread | None = None
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=120
            )
            conn.request(
                "POST",
                "/v1/models/m1/predict/stream",
                body=json.dumps(
                    {
                        "images": images.tolist(),
                        "options": {
                            "checkpoints": [16, 32, 48, 64, 80, 96, 112, 128],
                            "early_exit": False,
                        },
                    }
                ),
            )
            resp = conn.getresponse()
            assert resp.status == 200
            closer = threading.Thread(target=server.close)
            closer.start()
            events = _read_events(resp)
            conn.close()
            terminal = events[-1]
            assert terminal["kind"] in ("done", "error")
            if terminal["kind"] == "done":
                assert terminal["reason"] in ("draining", "complete")
            else:
                assert terminal["error"]["reason"] == "draining"
            closer.join(timeout=120)
            assert not closer.is_alive()
        finally:
            if closer is not None and closer.is_alive():  # pragma: no cover
                closer.join(timeout=10)
            server.close()
            registry.close()

    def test_readyz_reports_draining(self, artifact):
        registry = ModelRegistry(
            models={"m1": artifact}, service=_service_config()
        )
        server = ScHttpServer(registry, HttpConfig()).start_background()
        try:
            port = server.port
            status, _ = _request(port, "GET", "/readyz")
            assert status == 200
            server.close()
            with pytest.raises(OSError):
                _request(port, "GET", "/readyz", timeout=5)
        finally:
            server.close()
            registry.close()


class TestRegistryUnit:
    def test_unknown_name_is_typed(self, artifact, images):
        registry = ModelRegistry(
            models={"m1": artifact}, service=_service_config()
        )
        try:
            with pytest.raises(ModelNotFoundError) as excinfo:
                registry.submit("ghost", images)
            assert excinfo.value.model == "ghost"
        finally:
            registry.close()

    def test_describe_artifact_rejects_non_artifact(self, tmp_path):
        with pytest.raises(ConfigurationError):
            describe_artifact(tmp_path)

    def test_root_scan_discovers_and_forgets(self, tmp_path):
        root = tmp_path / "registry"
        root.mkdir()
        _tiny_model(seed=5).save(root / "alpha")
        registry = ModelRegistry(root=root, service=_service_config())
        try:
            assert registry.names() == ["alpha"]
            _tiny_model(seed=6).save(root / "beta")
            assert registry.scan()["added"] == ["beta"]
            assert registry.names() == ["alpha", "beta"]
            import shutil

            shutil.rmtree(root / "alpha")
            assert registry.scan()["removed"] == ["alpha"]
            assert registry.names() == ["beta"]
        finally:
            registry.close()

    def test_empty_registry_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelRegistry()


class TestModelsCli:
    def test_listing_matches_manifest(self, artifact, capsys):
        from repro.cli import main

        assert main(["models", "--model", str(artifact), "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        info = describe_artifact(artifact)
        assert listing == [info.listing()]
