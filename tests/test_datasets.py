"""Tests for the synthetic digit dataset."""

import numpy as np
import pytest

from repro.datasets import DigitDataset, generate_digit_dataset, render_digit
from repro.errors import DatasetError


class TestRenderDigit:
    def test_shape_and_range(self):
        image = render_digit(3, np.random.default_rng(0))
        assert image.shape == (28, 28)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_all_digits_renderable(self):
        rng = np.random.default_rng(1)
        for digit in range(10):
            assert render_digit(digit, rng).sum() > 5.0  # strokes actually drawn

    def test_invalid_digit(self):
        with pytest.raises(DatasetError):
            render_digit(11, np.random.default_rng(0))

    def test_jitter_zero_is_deterministic_shape(self):
        a = render_digit(7, np.random.default_rng(5), jitter=0.0)
        b = render_digit(7, np.random.default_rng(9), jitter=0.0)
        # Without jitter the strokes are fixed; only the pen thickness draw
        # differs, so the images must be highly correlated.
        correlation = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert correlation > 0.95

    def test_different_digits_look_different(self):
        rng = np.random.default_rng(2)
        one = render_digit(1, rng, jitter=0.0)
        eight = render_digit(8, rng, jitter=0.0)
        assert np.corrcoef(one.ravel(), eight.ravel())[0, 1] < 0.8


class TestGenerateDataset:
    def test_shapes_and_balance(self):
        dataset = generate_digit_dataset(200, 100, seed=3)
        assert dataset.train_images.shape == (200, 28, 28)
        assert dataset.test_images.shape == (100, 28, 28)
        counts = np.bincount(dataset.train_labels, minlength=10)
        assert counts.min() >= 15  # roughly balanced

    def test_deterministic_for_seed(self):
        a = generate_digit_dataset(50, 20, seed=5)
        b = generate_digit_dataset(50, 20, seed=5)
        assert np.array_equal(a.train_images, b.train_images)
        assert np.array_equal(a.test_labels, b.test_labels)

    def test_train_test_differ(self):
        dataset = generate_digit_dataset(50, 50, seed=6)
        assert not np.array_equal(dataset.train_images[:10], dataset.test_images[:10])

    def test_subset(self):
        dataset = generate_digit_dataset(100, 50, seed=7)
        small = dataset.subset(20, 10)
        assert small.train_images.shape[0] == 20
        assert small.n_classes == 10
        with pytest.raises(DatasetError):
            dataset.subset(1000, 10)

    def test_minimum_size_enforced(self):
        with pytest.raises(DatasetError):
            generate_digit_dataset(5, 100)

    def test_classes_are_separable(self):
        dataset = generate_digit_dataset(400, 200, seed=8)
        centroids = np.stack(
            [dataset.train_images[dataset.train_labels == c].mean(axis=0) for c in range(10)]
        )
        distances = (
            (dataset.test_images[:, None, :, :] - centroids[None]) ** 2
        ).sum(axis=(2, 3))
        accuracy = (distances.argmin(axis=1) == dataset.test_labels).mean()
        assert accuracy > 0.8
