"""Serving layer: micro-batching, progressive early exit, cache, bench.

Pins down the three serving contracts of :mod:`repro.serve`:

* **micro-batching transparency** -- coalescing requests into merged
  batches is invisible for bit-exact backends: per-image scores are
  bit-identical to a direct ``Backend.forward`` call, no matter how the
  scheduler grouped the requests;
* **progressive early exit** -- ``forward_partial`` scores at the final
  checkpoint equal the full-stream forward scores exactly (for the
  packed backend, bit for bit via prefix popcounts), and the stability +
  margin policy never changes a prediction on the configurations the
  benchmark ships;
* **the serving benchmark** -- ``benchmarks/bench_serve.py`` writes
  ``BENCH_serve.json`` reporting >= 1.5x mean stream-cycle reduction at
  ``N = 1024`` on the synthetic MNIST test set with unchanged accuracy.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.backends import Backend, backend_names, create_backend, describe_backends
from repro.backends.registry import backend_class
from repro.config import PredictOptions, ServiceConfig
from repro.errors import ConfigurationError, EncodingError, ShapeError
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.sc_layers import ScNetworkMapper
from repro.sc.packed import pack_bits, prefix_ones_counts
from repro.serve import (
    LruResultCache,
    CachedResult,
    ScInferenceService,
    early_exit_from_scores,
    image_digest,
    progressive_forward,
    resolve_checkpoints,
)


def _tiny_cnn():
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs, activation="hardware", seed=5, training_stream_length=128
    )


@pytest.fixture(scope="module")
def mapper():
    return ScNetworkMapper(_tiny_cnn(), stream_length=128, seed=7)


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((6, 1, 28, 28))


class TestResolveCheckpoints:
    def test_default_schedule(self):
        assert resolve_checkpoints(1024) == (128, 256, 512, 1024)

    def test_appends_full_length(self):
        assert resolve_checkpoints(100, (0.25, 0.5)) == (25, 50, 100)

    def test_deduplicates_tiny_streams(self):
        # 1/8 and 1/4 of N=4 both round to 1.
        assert resolve_checkpoints(4) == (1, 2, 4)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            resolve_checkpoints(128, (0.5, 1.5))
        with pytest.raises(ConfigurationError):
            resolve_checkpoints(128, ())
        with pytest.raises(ConfigurationError):
            resolve_checkpoints(0)


class TestEarlyExitPolicy:
    def test_stable_confident_image_exits_early(self):
        # Image 0: class 2 from the first checkpoint with a huge margin.
        # Image 1: flips class every checkpoint -> full stream.
        # Image 2: stable class but a sub-margin gap -> full stream.
        scores = np.zeros((3, 3, 4))
        scores[:, 0, 2] = 0.9
        for k in range(3):
            scores[k, 1, k % 4] = 0.9
        scores[:, 2, 1] = 0.05
        result = early_exit_from_scores(
            scores, (16, 32, 64), margin=0.1, stable_checkpoints=2
        )
        assert list(result.exit_checkpoints) == [32, 64, 64]
        assert list(result.predictions) == [2, 2, 1]
        # Fallback images return exactly the final-checkpoint scores.
        assert np.array_equal(result.scores[1], scores[-1, 1])

    def test_margin_zero_stability_one_exits_first(self):
        scores = np.zeros((2, 1, 3))
        scores[:, 0, 1] = 0.5
        result = early_exit_from_scores(
            scores, (8, 16), margin=0.0, stable_checkpoints=1
        )
        assert list(result.exit_checkpoints) == [8]

    def test_stability_longer_than_schedule_never_exits_early(self):
        scores = np.full((2, 2, 3), 0.1)
        scores[:, :, 0] = 0.9
        result = early_exit_from_scores(
            scores, (8, 16), margin=0.0, stable_checkpoints=5
        )
        assert list(result.exit_checkpoints) == [16, 16]

    def test_cycle_reduction_property(self):
        scores = np.zeros((2, 2, 2))
        scores[:, :, 0] = 1.0
        result = early_exit_from_scores(
            scores, (8, 16), margin=0.1, stable_checkpoints=1
        )
        assert result.stream_length == 16
        assert result.mean_exit_checkpoint == 8.0
        assert result.cycle_reduction == 2.0

    def test_rejects_bad_arguments(self):
        scores = np.zeros((2, 1, 3))
        with pytest.raises(ShapeError):
            early_exit_from_scores(scores[0], (8,))
        with pytest.raises(ShapeError):
            early_exit_from_scores(scores, (8, 16, 32))
        with pytest.raises(ConfigurationError):
            early_exit_from_scores(scores, (8, 16), margin=-1.0)
        with pytest.raises(ConfigurationError):
            early_exit_from_scores(scores, (8, 16), stable_checkpoints=0)


class TestForwardPartial:
    def test_packed_final_checkpoint_is_bit_exact(self, mapper, images):
        """Prefix popcount at checkpoint N reproduces forward() exactly."""
        backend = create_backend("bit-exact-packed", mapper)
        checkpoints = resolve_checkpoints(mapper.stream_length)
        partial = backend.forward_partial(images, checkpoints)
        assert partial.shape == (len(checkpoints), 6, 10)
        assert np.array_equal(partial[-1], backend.forward(images))

    def test_packed_prefixes_on_odd_stream_length(self, images):
        """Tail-word masking: prefix counts stay exact when N % 64 != 0."""
        odd = ScNetworkMapper(_tiny_cnn(), stream_length=100, seed=3)
        backend = create_backend("bit-exact-packed", odd)
        partial = backend.forward_partial(images[:2], (13, 50, 100))
        assert np.array_equal(partial[-1], backend.forward(images[:2]))

    def test_packed_prefix_matches_bitwise_reference(self, mapper, images):
        """Checkpoint scores equal decoding the literal stream prefix."""
        backend = create_backend("bit-exact-packed", mapper)
        words = backend.output_stream_words(images[:2])
        n = mapper.stream_length
        from repro.sc.packed import unpack_bits

        bits = unpack_bits(words, n)
        for p in (32, 100, n):
            scores = backend.forward_partial(images[:2], (p, n) if p < n else (n,))
            expected = 2.0 * bits[..., :p].sum(axis=-1) / p - 1.0
            assert np.allclose(scores[0] if p < n else scores[-1], expected)

    def test_sc_fast_final_checkpoint_matches_forward(self, mapper, images):
        backend = create_backend("sc-fast", mapper)
        partial = backend.forward_partial(images, (32, 64, 128))
        assert np.array_equal(partial[-1], backend.forward(images))

    def test_checkpoint_validation(self, mapper, images):
        backend = create_backend("bit-exact-packed", mapper)
        for bad in [(64, 32, 128), (0, 128), (32, 200), ()]:
            with pytest.raises(ConfigurationError):
                backend.forward_partial(images, bad)

    def test_sub_full_schedule_matches_prefix_planes(self, mapper, images):
        """Schedules stopping short of N are valid: per-request reduced
        stream lengths read exactly the same prefixes."""
        backend = create_backend("bit-exact-packed", mapper)
        short = backend.forward_partial(images, (32, 64))
        full = backend.forward_partial(images, (32, 64, 128))
        assert np.array_equal(short, full[:2])

    def test_non_progressive_backend_raises(self, mapper, images):
        backend = create_backend("float", mapper)
        assert backend.progressive is False
        with pytest.raises(ConfigurationError, match="progressive"):
            backend.forward_partial(images, (64, 128))

    def test_progressive_forward_degrades_gracefully(self, mapper, images):
        """Non-progressive backends run one full pass, exiting at N."""
        backend = create_backend("float", mapper)
        result = progressive_forward(backend, images)
        assert np.array_equal(result.scores, backend.forward(images))
        assert np.all(result.exit_checkpoints == mapper.stream_length)

    def test_packed_early_exit_keeps_predictions(self, mapper, images):
        """Exited predictions match the full stream under the shipped margin."""
        backend = create_backend("bit-exact-packed", mapper)
        result = progressive_forward(
            backend, images, margin=0.25, stable_checkpoints=2
        )
        full_predictions = np.argmax(backend.forward(images), axis=1)
        assert np.array_equal(result.predictions, full_predictions)
        assert (result.exit_checkpoints < mapper.stream_length).any()

    def test_prefix_ones_counts_reference(self, rng):
        bits = rng.integers(0, 2, (5, 3, 130), dtype=np.uint8)
        words = pack_bits(bits)
        counts = prefix_ones_counts(words, (1, 64, 65, 100, 130), 130)
        for k, p in enumerate((1, 64, 65, 100, 130)):
            assert np.array_equal(counts[k], bits[..., :p].sum(axis=-1))

    def test_prefix_ones_counts_validation(self, rng):
        words = pack_bits(rng.integers(0, 2, (2, 130), dtype=np.uint8))
        with pytest.raises(ShapeError):
            prefix_ones_counts(words, (0,), 130)
        with pytest.raises(ShapeError):
            prefix_ones_counts(words, (131,), 130)
        with pytest.raises(ShapeError):
            prefix_ones_counts(words, (64,), 300)

    def test_progressive_capability_flags(self):
        assert backend_class("sc-fast").progressive is True
        assert backend_class("bit-exact-packed").progressive is True
        assert backend_class("float").progressive is False
        # Since the batched/legacy prefix-popcount path landed, every
        # bit-exact backend is progressive.
        assert backend_class("bit-exact-batched").progressive is True
        assert backend_class("bit-exact-legacy").progressive is True

    def test_batched_and_legacy_prefixes_match_packed(self, mapper, images):
        """All bit-exact backends decode identical checkpoint scores."""
        checkpoints = (13, 64, 128)
        packed = create_backend("bit-exact-packed", mapper).forward_partial(
            images, checkpoints
        )
        batched = create_backend("bit-exact-batched", mapper).forward_partial(
            images, checkpoints
        )
        legacy = create_backend("bit-exact-legacy", mapper).forward_partial(
            images[:2], checkpoints
        )
        assert np.array_equal(batched, packed)
        assert np.array_equal(legacy, packed[:, :2])

    def test_batched_final_checkpoint_is_bit_exact(self, mapper, images):
        backend = create_backend("bit-exact-batched", mapper)
        partial = backend.forward_partial(images, (64, 128))
        assert np.array_equal(partial[-1], backend.forward(images))


class TestImageValidation:
    def test_single_image_promoted_to_batch(self, mapper, images):
        backend = create_backend("float", mapper)
        single = backend.forward(images[0])
        assert single.shape == (1, 10)
        assert np.array_equal(single, backend.forward(images[0:1]))

    def test_bad_rank_raises_shape_error(self):
        with pytest.raises(ShapeError):
            Backend._check_images(np.zeros((28, 28)))
        with pytest.raises(ShapeError):
            Backend._check_images(np.zeros((1, 1, 1, 28, 28)))

    def test_out_of_range_raises_encoding_error(self):
        with pytest.raises(EncodingError, match=r"\[0, 1\]"):
            Backend._check_images(np.full((1, 1, 4, 4), 1.5))
        with pytest.raises(EncodingError, match=r"\[0, 1\]"):
            Backend._check_images(np.full((1, 1, 4, 4), -0.1))

    def test_non_numeric_raises_encoding_error(self):
        with pytest.raises(EncodingError, match="numeric"):
            Backend._check_images(np.array([["a"]]))

    def test_nan_raises_encoding_error(self):
        bad = np.full((1, 1, 4, 4), 0.5)
        bad[0, 0, 0, 0] = np.nan
        with pytest.raises(EncodingError, match=r"\[0, 1\]"):
            Backend._check_images(bad)

    @pytest.mark.parametrize("name", ["float", "sc-fast", "bit-exact-packed"])
    def test_every_backend_validates_before_kernels(self, mapper, name):
        backend = create_backend(name, mapper)
        with pytest.raises(ShapeError):
            backend.forward(np.zeros((28, 28)))
        with pytest.raises(EncodingError):
            # Bipolar-range input: the classic caller bug this catches.
            backend.forward(np.full((1, 1, 28, 28), -1.0))


class TestRegistryHelp:
    def test_describe_backends_lists_every_name_sorted(self):
        lines = describe_backends().splitlines()
        assert [line.split(" -- ")[0] for line in lines] == list(backend_names())
        assert all(" -- " in line for line in lines)

    def test_unknown_backend_error_lists_sorted_names(self):
        with pytest.raises(ConfigurationError) as err:
            backend_class("no-such-backend")
        message = str(err.value)
        positions = [message.index(name) for name in backend_names()]
        assert positions == sorted(positions)


class TestLruCache:
    def test_round_trip_and_hit_rate(self):
        cache = LruResultCache(4)
        key = LruResultCache.key("digest", "sc-fast", 128)
        assert cache.get(key) is None
        cache.put(key, CachedResult(np.zeros(10), 3, 64))
        hit = cache.get(key)
        assert hit is not None and hit.prediction == 3
        assert cache.stats() == {
            "size": 1,
            "capacity": 4,
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
        }

    def test_lru_eviction_order(self):
        cache = LruResultCache(2)
        rows = [CachedResult(np.zeros(1), i, 1) for i in range(3)]
        for i, row in enumerate(rows):
            cache.put(LruResultCache.key(str(i), "b", 1), row)
        assert cache.get(LruResultCache.key("0", "b", 1)) is None  # evicted
        assert cache.get(LruResultCache.key("2", "b", 1)) is not None

    def test_zero_capacity_disables(self):
        cache = LruResultCache(0)
        cache.put(LruResultCache.key("d", "b", 1), CachedResult(np.zeros(1), 0, 1))
        assert len(cache) == 0

    def test_digest_distinguishes_images(self, images):
        assert image_digest(images[0]) == image_digest(images[0].copy())
        assert image_digest(images[0]) != image_digest(images[1])


class TestService:
    def test_micro_batched_equals_direct_forward(self, mapper, images):
        """Coalesced single-image requests are bit-identical to one
        direct ``Backend.forward`` call over the whole batch."""
        direct = create_backend("bit-exact-packed", mapper).forward(images)
        config = ServiceConfig(
            backend="bit-exact-packed",
            num_workers=2,
            max_batch_size=4,
            max_wait_ms=50.0,
            early_exit=False,
            cache_capacity=0,
        )
        with ScInferenceService(mapper, config) as service:
            futures = [service.submit(image) for image in images]
            scores = np.concatenate(
                [future.result(timeout=120).scores for future in futures]
            )
        assert np.array_equal(scores, direct)

    def test_multi_image_requests_equal_direct_forward(self, mapper, images):
        direct = create_backend("bit-exact-packed", mapper).forward(images)
        config = ServiceConfig(
            backend="bit-exact-packed",
            num_workers=1,
            max_wait_ms=20.0,
            early_exit=False,
        )
        with ScInferenceService(mapper, config) as service:
            response = service.infer(images[:4], timeout=120)
            tail = service.infer(images[4:], timeout=120)
        assert np.array_equal(response.scores, direct[:4])
        assert np.array_equal(tail.scores, direct[4:])

    def test_sharded_backends_stay_bit_identical(self, mapper, images):
        """A pool sharded across bit-exact backends answers identically."""
        direct = create_backend("bit-exact-packed", mapper).forward(images)
        config = ServiceConfig(
            backend=("bit-exact-packed", "bit-exact-batched"),
            num_workers=2,
            max_batch_size=2,
            max_wait_ms=5.0,
            early_exit=False,
            cache_capacity=0,
        )
        with ScInferenceService(mapper, config) as service:
            futures = [service.submit(image) for image in images]
            scores = np.concatenate(
                [future.result(timeout=120).scores for future in futures]
            )
        assert np.array_equal(scores, direct)

    def test_scheduler_coalesces_waiting_requests(self, mapper, images):
        config = ServiceConfig(
            backend="sc-fast",
            num_workers=1,
            max_batch_size=16,
            max_wait_ms=400.0,
            cache_capacity=0,
        )
        with ScInferenceService(mapper, config) as service:
            futures = [service.submit(image) for image in images]
            for future in futures:
                future.result(timeout=120)
            snapshot = service.metrics.snapshot()
        assert snapshot["requests"] == len(images)
        assert snapshot["max_batch_size"] >= 2
        assert snapshot["latency_ms"]["p50"] <= snapshot["latency_ms"]["p99"]
        assert snapshot["throughput_images_per_sec"] > 0

    def test_early_exit_service_matches_full_predictions(self, mapper, images):
        direct = create_backend("bit-exact-packed", mapper).forward(images)
        config = ServiceConfig(
            backend="bit-exact-packed",
            num_workers=1,
            max_wait_ms=10.0,
            early_exit=True,
            margin=0.25,
            stable_checkpoints=2,
        )
        with ScInferenceService(mapper, config) as service:
            response = service.infer(images, timeout=120)
        assert np.array_equal(response.predictions, np.argmax(direct, axis=1))
        assert (response.exit_checkpoints <= mapper.stream_length).all()
        assert (response.exit_checkpoints < mapper.stream_length).any()

    def test_cache_hit_on_repeat(self, mapper, images):
        config = ServiceConfig(
            backend="sc-fast", num_workers=1, max_wait_ms=1.0, cache_capacity=64
        )
        with ScInferenceService(mapper, config) as service:
            first = service.infer(images[0], timeout=120)
            second = service.infer(images[0], timeout=120)
            snapshot = service.metrics.snapshot()
        assert not first.cached.any()
        assert second.cached.all()
        assert np.array_equal(first.scores, second.scores)
        assert second.exit_checkpoints[0] == first.exit_checkpoints[0]
        assert snapshot["cache_hits"] == 1
        assert service.cache.stats()["hits"] == 1

    def test_submit_after_close_raises(self, mapper, images):
        service = ScInferenceService(
            mapper, ServiceConfig(backend="sc-fast", num_workers=1)
        )
        service.close()
        service.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            service.submit(images[0])

    def test_rejects_malformed_requests(self, mapper):
        """Fail-fast: malformed requests raise in the submitting caller,
        never as a worker-side future error."""
        config = ServiceConfig(backend="sc-fast", num_workers=1)
        with ScInferenceService(mapper, config) as service:
            with pytest.raises(ShapeError):
                service.submit(np.zeros((28, 28)))
            with pytest.raises(EncodingError):
                service.submit(np.full((1, 1, 28, 28), 2.0))
            with pytest.raises(EncodingError):
                service.submit(np.zeros((1, 1, 28, 28), dtype="U1"))
            with pytest.raises(ConfigurationError):
                service.submit(np.zeros((0, 1, 28, 28)))

    def test_rejects_invalid_options_in_caller(self, mapper, images):
        config = ServiceConfig(backend="bit-exact-packed", num_workers=1)
        with ScInferenceService(mapper, config) as service:
            with pytest.raises(ConfigurationError, match="exceeds"):
                service.submit(
                    images[:1],
                    PredictOptions(stream_length=mapper.stream_length * 2),
                )
            with pytest.raises(ConfigurationError):
                service.submit(images[:1], PredictOptions(deadline_ms=0.0))

    def test_explicit_schedule_needs_progressive_shards(self, mapper, images):
        config = ServiceConfig(backend="float", num_workers=1)
        with ScInferenceService(mapper, config) as service:
            with pytest.raises(ConfigurationError, match="progressive"):
                service.submit(images[:1], PredictOptions(stream_length=64))

    def test_progressive_gate_reads_replica_instances(self, mapper, images):
        """ParallelBackend mirrors its inner backend's flags per instance;
        the submit-time gate must read the replica, not the class."""
        config = ServiceConfig(backend="bit-exact-packed-mp", num_workers=1)
        with ScInferenceService(
            mapper, config, workers=2, inner_backend="float"
        ) as service:
            with pytest.raises(ConfigurationError, match="progressive"):
                service.submit(images[:1], PredictOptions(stream_length=64))


class TestPerRequestOptions:
    """PredictOptions reach the serving layer (the PR's acceptance bar)."""

    def _service(self, mapper, **overrides):
        settings = dict(
            backend="bit-exact-packed",
            num_workers=1,
            max_batch_size=8,
            max_wait_ms=1.0,
            cache_capacity=64,
            early_exit=False,
        )
        settings.update(overrides)
        return ScInferenceService(mapper, ServiceConfig(**settings))

    def test_reduced_stream_length_reads_exact_prefix(self, mapper, images):
        reference = create_backend("bit-exact-packed", mapper)
        with self._service(mapper, cache_capacity=0) as service:
            response = service.infer(
                images[:2], PredictOptions(stream_length=64), timeout=300
            )
        assert np.all(response.exit_checkpoints == 64)
        assert np.array_equal(
            response.scores,
            reference.forward_partial(images[:2], (64,))[-1],
        )

    def test_different_schedules_never_share_a_cache_entry(
        self, mapper, images
    ):
        with self._service(mapper) as service:
            first = service.infer(images[:1], timeout=300)
            assert not first.cached[0]
            # Same image, different stream length: a must-miss.
            shorter = service.infer(
                images[:1], PredictOptions(stream_length=64), timeout=300
            )
            assert not shorter.cached[0]
            assert shorter.exit_checkpoints[0] == 64
            # Same image, different checkpoint schedule: a must-miss too.
            rescheduled = service.infer(
                images[:1],
                PredictOptions(checkpoints=(32, 96), early_exit=True),
                timeout=300,
            )
            assert not rescheduled.cached[0]
            # Identical options do hit their own entries.
            assert service.infer(images[:1], timeout=300).cached[0]
            assert service.infer(
                images[:1], PredictOptions(stream_length=64), timeout=300
            ).cached[0]

    def test_expired_deadline_lowers_exit_checkpoints(self, mapper, images):
        """A tight per-request deadline measurably lowers exit checkpoints."""
        with self._service(mapper, cache_capacity=0) as service:
            unhurried = service.infer(images[:2], timeout=300)
            hurried = service.infer(
                images[2:4], PredictOptions(deadline_ms=1e-6), timeout=300
            )
        first_checkpoint = service.checkpoints[0]
        assert np.all(unhurried.exit_checkpoints == mapper.stream_length)
        assert np.all(hurried.exit_checkpoints == first_checkpoint)
        assert hurried.exit_checkpoints.max() < unhurried.exit_checkpoints.min()
        # The truncated scores are the exact stream prefix at the exit.
        reference = create_backend("bit-exact-packed", mapper)
        prefix = reference.forward_partial(images[2:4], (first_checkpoint,))
        assert np.array_equal(hurried.scores, prefix[-1])

    def test_deadline_results_never_enter_the_cache(self, mapper, images):
        with self._service(mapper) as service:
            hurried = service.infer(
                images[4:5], PredictOptions(deadline_ms=1e-6), timeout=300
            )
            assert hurried.exit_checkpoints[0] == service.checkpoints[0]
            # A later default request must recompute at full length, not
            # inherit the wall-clock-truncated scores.
            follow_up = service.infer(images[4:5], timeout=300)
            assert not follow_up.cached[0]
            assert follow_up.exit_checkpoints[0] == mapper.stream_length

    def test_deadline_requests_may_read_cached_full_results(
        self, mapper, images
    ):
        with self._service(mapper) as service:
            service.infer(images[:1], timeout=300)
            hurried = service.infer(
                images[:1], PredictOptions(deadline_ms=1e-6), timeout=300
            )
            # A cached full-quality answer is instantaneous: better than
            # any truncation the deadline could buy.
            assert hurried.cached[0]
            assert hurried.exit_checkpoints[0] == mapper.stream_length

    def test_mixed_option_batches_stay_bit_identical(self, mapper, images):
        """One merged batch, three different schedules: every request is
        answered as if it ran alone (bucketed evaluation)."""
        reference = create_backend("bit-exact-packed", mapper)
        with self._service(
            mapper, cache_capacity=0, max_wait_ms=50.0
        ) as service:
            futures = [
                service.submit(images[:2]),
                service.submit(images[2:4], PredictOptions(stream_length=64)),
                service.submit(images[4:6], PredictOptions(early_exit=True)),
            ]
            default, shorter, exiting = [
                f.result(timeout=300) for f in futures
            ]
        assert np.array_equal(default.scores, reference.forward(images[:2]))
        assert np.array_equal(
            shorter.scores, reference.forward_partial(images[2:4], (64,))[-1]
        )
        partial = reference.forward_partial(
            images[4:6], service.checkpoints
        )
        for row, exit_point in enumerate(exiting.exit_checkpoints):
            k = service.checkpoints.index(int(exit_point))
            assert np.array_equal(exiting.scores[row], partial[k, row])

    def test_per_request_early_exit_override(self, mapper, images):
        """early_exit=True on a default-off service takes the policy path."""
        with self._service(mapper, cache_capacity=0) as service:
            response = service.infer(
                images, PredictOptions(early_exit=True), timeout=300
            )
        assert set(np.unique(response.exit_checkpoints)) <= set(
            service.checkpoints
        )

    def test_unknown_backend_fails_at_construction(self, mapper):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ScInferenceService(mapper, ServiceConfig(backend="typo"))


class TestServiceConfig:
    def test_defaults_resolve(self):
        config = ServiceConfig()
        assert config.backend_names == ("sc-fast",)
        assert config.max_batch_size >= 1

    def test_sharded_backend_names(self):
        config = ServiceConfig(backend=("a", "b"))
        assert config.backend_names == ("a", "b")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": ""},
            {"backend": ()},
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"num_workers": 0},
            {"cache_capacity": -1},
            {"checkpoint_fractions": ()},
            {"checkpoint_fractions": (0.5, 0.25)},
            {"checkpoint_fractions": (0.0, 1.0)},
            {"margin": -0.5},
            {"stable_checkpoints": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs)


class TestBenchServe:
    def test_smoke_run_meets_acceptance(self, tmp_path):
        """The load benchmark writes BENCH_serve.json with >= 1.5x mean
        stream-cycle reduction at N = 1024 and unchanged accuracy."""
        spec = importlib.util.spec_from_file_location(
            "bench_serve",
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_serve.py",
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        output = tmp_path / "BENCH_serve.json"
        report = bench.run(smoke=True, output=output)
        on_disk = json.loads(output.read_text())
        assert on_disk["stream_length"] == 1024
        early = on_disk["early_exit"]
        assert early["cycle_reduction"] >= 1.5
        assert early["accuracy_unchanged"] is True
        assert early["accuracy_early"] == early["accuracy_full"]
        assert early["prediction_agreement"] == 1.0
        assert on_disk["packed_prefix"]["last_checkpoint_equals_forward"]
        assert on_disk["packed_prefix"]["early_exit_predictions_match_full"]
        assert on_disk["load_sweep"][0]["latency_ms"]["p50"] > 0
        assert on_disk["cache"]["hit_rate"] == pytest.approx(2 / 3)
        assert report["early_exit"]["cycle_reduction"] >= 1.5


class TestParallelBackendServing:
    """The process-sharded backend slots into the service unchanged."""

    def test_service_on_parallel_backend(self, mapper, images):
        direct = create_backend("bit-exact-packed", mapper).forward(images)
        config = ServiceConfig(
            backend="bit-exact-packed-mp",
            num_workers=1,  # one service thread whose replica owns the pool
            max_batch_size=8,
            max_wait_ms=20.0,
            early_exit=False,
            cache_capacity=0,
        )
        with ScInferenceService(mapper, config, workers=2) as service:
            response = service.infer(images, timeout=300)
        assert np.array_equal(response.scores, direct)
        # close() released every replica (the pool is shut down).
        assert all(
            getattr(replica, "_executor", None) is None
            for replica in service._replicas
        )

    def test_progressive_early_exit_through_parallel_backend(
        self, mapper, images
    ):
        reference = create_backend("bit-exact-packed", mapper)
        config = ServiceConfig(
            backend="bit-exact-packed-mp",
            num_workers=1,
            max_batch_size=8,
            max_wait_ms=20.0,
            early_exit=True,
            cache_capacity=0,
        )
        with ScInferenceService(mapper, config, workers=2) as service:
            response = service.infer(images, timeout=300)
        # Early exits are exact prefixes: every prediction matches the
        # full-stream forward (stability + margin policy only fires when
        # the prefix decision already agrees with later checkpoints; the
        # fallback checkpoint is the exact full stream).
        checkpoints = service.checkpoints
        partial = reference.forward_partial(images, checkpoints)
        for row, exit_point in enumerate(response.exit_checkpoints):
            k = checkpoints.index(int(exit_point))
            assert np.array_equal(response.scores[row], partial[k, row])
