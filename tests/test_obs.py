"""Observability: tracing, kernel-tier counters, exposition, event log.

Pins down the contracts of :mod:`repro.obs` and its serving integration:

* **trace exactness** -- at ``trace_sample_rate=1.0`` every response
  carries a :class:`~repro.obs.TraceSummary` whose queue + service split
  sums to the measured latency exactly (same monotonic marks);
* **span nesting** -- context-manager spans parent under the innermost
  enclosing span of their own thread, even when many threads record into
  one trace concurrently;
* **sampling determinism** -- rate 0 never allocates a trace, rate 1
  always does, and fractional sampling is reproducible under a seed;
* **kernel-tier equivalence** -- the same workload drives the same
  kernel seams with bit-identical call/byte totals whether the calls
  landed on the compiled native tier or the NumPy reference tier;
* **export** -- the Prometheus text exposition of a full service
  snapshot parses cleanly, and the JSONL event log captures traces plus
  ``repro`` logger records.
"""

import json
import logging
import threading

import numpy as np
import pytest

from repro.backends import create_backend
from repro.config import ServiceConfig
from repro.errors import ConfigurationError
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.sc_layers import ScNetworkMapper
from repro.obs import (
    JsonlEventLog,
    KernelCounters,
    Trace,
    Tracer,
    current_span,
    merge_kernel_snapshots,
    prometheus_text,
    validate_exposition,
)
from repro.sc import native
from repro.serve import ScInferenceService
from repro.serve.metrics import ServiceMetrics


def _tiny_cnn():
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs, activation="hardware", seed=5, training_stream_length=128
    )


@pytest.fixture(scope="module")
def mapper():
    return ScNetworkMapper(_tiny_cnn(), stream_length=128, seed=7)


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((6, 1, 28, 28))


def _service_config(**overrides) -> ServiceConfig:
    defaults = dict(
        backend="sc-fast",
        max_batch_size=8,
        max_wait_ms=2.0,
        num_workers=2,
        cache_capacity=0,
        trace_sample_rate=1.0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestTracerSampling:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.begin() is None for _ in range(20))
        # The off path is a single comparison: not even the decision
        # counter moves, so a production service at rate 0 is untouched.
        assert tracer.stats()["decisions"] == 0
        assert tracer.stats()["sampled"] == 0

    def test_rate_one_always_samples(self):
        tracer = Tracer(sample_rate=1.0)
        traces = [tracer.begin() for _ in range(20)]
        assert all(isinstance(trace, Trace) for trace in traces)
        stats = tracer.stats()
        assert stats["decisions"] == stats["sampled"] == 20

    def test_fractional_sampling_is_seed_deterministic(self):
        decisions = []
        for _ in range(2):
            tracer = Tracer(sample_rate=0.5, seed=42)
            decisions.append(
                [tracer.begin() is not None for _ in range(64)]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(sample_rate=1.0, capacity=3)
        ids = []
        for _ in range(5):
            trace = tracer.begin()
            ids.append(trace.trace_id)
            tracer.finish(trace)
        recent = [t["trace_id"] for t in tracer.recent()]
        assert recent == ids[-3:]
        assert [t["trace_id"] for t in tracer.recent(limit=1)] == ids[-1:]
        stats = tracer.stats()
        assert stats["finished"] == 5 and stats["buffered"] == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_service_config_validates_tracing_fields(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(trace_sample_rate=2.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(trace_capacity=0)


class TestSpanNesting:
    def test_explicit_spans_default_to_root_parent(self):
        trace = Trace("t-test")
        outer = trace.add_span("compute", 1.0, 2.0, batch=3)
        child = trace.add_span("forward", 1.1, 1.9, parent=outer)
        assert outer.parent_id == 0
        assert child.parent_id == outer.span_id
        assert outer.annotations == {"batch": 3}
        assert child.duration_ms == pytest.approx(800.0)

    def test_context_manager_nesting(self):
        trace = Trace("t-test")
        assert current_span() is None
        with trace.span("outer") as outer:
            assert current_span() is outer
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
        assert current_span() is None
        assert outer.parent_id == 0
        assert trace.find("inner").duration_ms is not None

    def test_concurrent_threads_nest_independently(self):
        # Each worker opens outer -> inner in its own thread; the
        # contextvar is per-thread, so every inner must parent under its
        # *own* thread's outer, never a sibling's.
        trace = Trace("t-test")
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        pairs = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            barrier.wait()
            with trace.span("outer", thread=index) as outer:
                with trace.span("inner", thread=index) as inner:
                    pass
            with lock:
                pairs.append((outer, inner))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(pairs) == n_threads
        for outer, inner in pairs:
            assert outer.parent_id == 0
            assert inner.parent_id == outer.span_id
            assert inner.annotations["thread"] == outer.annotations["thread"]
        # 1 root + 2 spans per thread, all retained.
        assert len(trace.spans) == 1 + 2 * n_threads

    def test_stage_ms_accumulates_repeated_names(self):
        trace = Trace("t-test")
        trace.add_span("compute", 0.0, 0.010)
        trace.add_span("compute", 0.020, 0.025)
        trace.add_span("cache_write", 0.030, 0.031)
        stages = trace.stage_ms()
        assert stages["compute"] == pytest.approx(15.0)
        assert stages["cache_write"] == pytest.approx(1.0)

    def test_to_dict_reports_relative_milliseconds(self):
        trace = Trace("t-test")
        start = trace.started_at
        trace.add_span("queue", start + 0.001, start + 0.003)
        payload = trace.to_dict()
        assert payload["trace_id"] == "t-test"
        root, queue = payload["spans"]
        assert root["span_id"] == 0 and root["parent_id"] is None
        assert queue["start_ms"] == pytest.approx(1.0, abs=1e-6)
        assert queue["duration_ms"] == pytest.approx(2.0, abs=1e-6)


class TestServiceTracing:
    def test_every_response_traced_with_exact_split(self, mapper, images):
        with ScInferenceService(mapper, _service_config()) as service:
            futures = [service.submit(images[i % 6]) for i in range(12)]
            responses = [f.result(timeout=60) for f in futures]
            stats = service.tracer.stats()
        assert stats["decisions"] == stats["sampled"] == 12
        for response in responses:
            trace = response.trace
            assert trace is not None
            assert trace.queue_ms >= 0.0 and trace.service_ms > 0.0
            assert trace.queue_ms + trace.service_ms == pytest.approx(
                trace.latency_ms, abs=1e-6
            )
            assert trace.replica == "sc-fast"
            assert trace.worker in (0, 1)
            assert trace.batch_seq is not None
            assert trace.batch_images >= 1
            assert trace.retries == 0 and not trace.degraded
            for stage in ("submit", "queue", "compute"):
                assert stage in trace.stages, trace.stages

    def test_forward_span_nests_under_compute(self, mapper, images):
        with ScInferenceService(mapper, _service_config()) as service:
            service.submit(images[0]).result(timeout=60)
            (payload,) = service.tracer.recent(limit=1)
        spans = {span["name"]: span for span in payload["spans"]}
        compute = spans["compute"]
        forward = spans.get("forward_partial") or spans.get("forward")
        assert compute["parent_id"] == 0
        assert forward["parent_id"] == compute["span_id"]
        assert forward["duration_ms"] <= compute["duration_ms"] + 1e-6

    def test_progressive_trace_carries_checkpoint_costs(self, mapper, images):
        config = _service_config(early_exit=True)
        with ScInferenceService(mapper, config) as service:
            response = service.submit(images[0]).result(timeout=60)
        trace = response.trace
        assert trace.checkpoints, "progressive request lost its schedule"
        assert len(trace.checkpoint_ms) == len(trace.checkpoints)
        # Pro-rata attribution: cost grows monotonically with cycles and
        # the last checkpoint carries the full measured forward time.
        assert list(trace.checkpoint_ms) == sorted(trace.checkpoint_ms)
        assert trace.checkpoint_ms[-1] > 0.0

    def test_cache_hit_trace_has_zero_queue(self, mapper, images):
        config = _service_config(cache_capacity=64)
        with ScInferenceService(mapper, config) as service:
            service.submit(images[0]).result(timeout=60)
            response = service.submit(images[0]).result(timeout=60)
        trace = response.trace
        assert response.cached.all()
        assert trace.cached_images == 1
        assert trace.queue_ms == 0.0
        assert trace.replica is None and trace.batch_seq is None
        assert trace.service_ms == pytest.approx(trace.latency_ms)

    def test_rate_zero_leaves_responses_untraced(self, mapper, images):
        config = _service_config(trace_sample_rate=0.0)
        with ScInferenceService(mapper, config) as service:
            responses = [
                service.submit(images[i]).result(timeout=60) for i in range(3)
            ]
            stats = service.tracer.stats()
        assert all(response.trace is None for response in responses)
        assert stats["decisions"] == 0 and stats["buffered"] == 0

    def test_snapshot_extends_metrics_with_obs_sections(self, mapper, images):
        with ScInferenceService(mapper, _service_config()) as service:
            service.submit(images[0]).result(timeout=60)
            snapshot = service.snapshot()
        assert snapshot["requests"] == 1
        assert "kernels" in snapshot and "tracing" in snapshot
        assert isinstance(snapshot["workspaces"], list)
        assert snapshot["tracing"]["finished"] == 1
        assert snapshot["queue_time_ms"]["histogram"]["count"] == 1
        assert snapshot["service_time_ms"]["histogram"]["count"] == 1


class TestKernelCounters:
    def test_record_snapshot_and_totals(self):
        counters = KernelCounters()
        counters.record("fused_counts", "numpy", 0.5, 100)
        counters.record("fused_counts", "numpy", 0.25, 50)
        counters.record("fused_counts", "native", 0.1, 150)
        snap = counters.snapshot()
        assert snap["fused_counts"]["numpy"] == {
            "calls": 2,
            "seconds": 0.75,
            "bytes": 150,
        }
        assert counters.totals() == {
            "fused_counts": {"calls": 3, "bytes": 300}
        }
        counters.reset()
        assert counters.snapshot() == {}

    def test_merge_kernel_snapshots(self):
        a = KernelCounters()
        b = KernelCounters()
        a.record("fused_chain", "numpy", 1.0, 10)
        b.record("fused_chain", "native", 2.0, 10)
        b.record("stream_words", "numpy", 0.5, 5)
        merged = merge_kernel_snapshots([a.snapshot(), b.snapshot()])
        assert merged["fused_chain"]["numpy"]["calls"] == 1
        assert merged["fused_chain"]["native"]["calls"] == 1
        assert merged["stream_words"]["numpy"]["bytes"] == 5

    def test_packed_backend_counts_kernel_seams(self, mapper, images):
        backend = create_backend("bit-exact-packed", mapper)
        backend.forward(images[:2])
        snap = backend.kernel_snapshot()
        assert snap, "forward recorded no kernel invocations"
        for kernel, tiers in snap.items():
            assert set(tiers) == {"numpy"}, (kernel, tiers)
            for cell in tiers.values():
                assert cell["calls"] >= 1
                assert cell["bytes"] > 0
                assert cell["seconds"] >= 0.0

    def test_tier_totals_bit_identical(self, mapper, images):
        """Same workload, same seams, same bytes -- regardless of tier."""
        packed = create_backend("bit-exact-packed", mapper)
        compiled = create_backend("bit-exact-native", mapper)
        packed.forward(images[:2])
        compiled.forward(images[:2])
        assert packed.counters.totals() == compiled.counters.totals()
        if native.available():
            tiers = {
                tier
                for cells in compiled.kernel_snapshot().values()
                for tier in cells
            }
            assert "native" in tiers

    def test_workspace_stats_after_forward(self, mapper, images):
        backend = create_backend("bit-exact-packed", mapper)
        backend.forward(images[:1])
        stats = backend.workspace_stats()
        assert stats["buffers"] >= 1
        assert stats["peak_nbytes"] >= stats["nbytes"] > 0


class TestServiceMetricsSplit:
    def test_queue_service_series_and_histograms(self):
        metrics = ServiceMetrics()
        for i in range(10):
            metrics.record_request(
                latency_seconds=0.010 * (i + 1),
                exit_checkpoints=[64],
                stream_length=128,
                queue_seconds=0.001 * (i + 1),
                service_seconds=0.009 * (i + 1),
            )
        snapshot = metrics.snapshot()
        queue = snapshot["queue_time_ms"]
        service = snapshot["service_time_ms"]
        assert queue["p50"] == pytest.approx(5.5)
        assert service["mean"] == pytest.approx(49.5)
        hist = queue["histogram"]
        assert hist["count"] == 10
        assert sum(hist["counts"]) == 10
        assert hist["sum"] == pytest.approx(55.0)
        # queue times 1..10 ms against bounds (.5, 1, 2, 5, 10, ...):
        # le-semantics puts exactly 1.0 in the le=1 bucket, and
        # 6..10 ms (five values) in the le=10 bucket.
        bounds = hist["le"]
        assert hist["counts"][bounds.index(1.0)] == 1
        assert hist["counts"][bounds.index(10.0)] == 5

    def test_split_is_optional(self):
        metrics = ServiceMetrics()
        metrics.record_request(
            latency_seconds=0.01, exit_checkpoints=[128], stream_length=128
        )
        snapshot = metrics.snapshot()
        assert snapshot["queue_time_ms"] is None
        assert snapshot["service_time_ms"] is None
        assert snapshot["latency_ms"]["p50"] == pytest.approx(10.0)

    def test_recent_p99_copies_window_under_lock(self):
        metrics = ServiceMetrics()
        assert metrics.recent_p99_ms() is None
        for latency in (0.001, 0.002, 0.100):
            metrics.record_request(
                latency_seconds=latency,
                exit_checkpoints=[128],
                stream_length=128,
            )
        p99 = metrics.recent_p99_ms()
        assert p99 is not None
        # The read must not hold the lock during the percentile: a
        # concurrent writer gets in while recent_p99_ms is mid-flight.
        done = threading.Event()

        def hammer():
            for _ in range(200):
                metrics.record_request(
                    latency_seconds=0.001,
                    exit_checkpoints=[128],
                    stream_length=128,
                )
            done.set()

        thread = threading.Thread(target=hammer)
        thread.start()
        for _ in range(50):
            assert metrics.recent_p99_ms() is not None
        thread.join(timeout=10)
        assert done.is_set()


class TestExport:
    def test_service_snapshot_exposition_validates(self, mapper, images):
        # The packed backend so the kernel-tier counter families render.
        config = _service_config(backend="bit-exact-packed", num_workers=1)
        with ScInferenceService(mapper, config) as service:
            futures = [service.submit(images[i]) for i in range(4)]
            for future in futures:
                future.result(timeout=60)
            snapshot = service.snapshot()
        text = prometheus_text(snapshot)
        families = validate_exposition(text)
        for name in (
            "repro_requests_total",
            "repro_latency_ms",
            "repro_queue_time_ms",
            "repro_service_time_ms",
            "repro_kernel_calls_total",
            "repro_traces_sampled_total",
        ):
            assert name in families, sorted(families)
        assert families["repro_queue_time_ms"] == "histogram"
        assert families["repro_requests_total"] == "counter"

    def test_validate_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            validate_exposition("repro_orphan_metric 1.0\n")
        with pytest.raises(ValueError):
            validate_exposition(
                "# TYPE repro_x counter\nrepro_x not-a-number\n"
            )
        with pytest.raises(ValueError):
            validate_exposition(
                "# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 5\n'
                'repro_h_bucket{le="2"} 3\n'
                'repro_h_bucket{le="+Inf"} 3\n'
            )

    def test_jsonl_event_log_captures_logger_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = logging.getLogger("repro.test_obs")
        logger.setLevel(logging.INFO)
        with JsonlEventLog(path) as events:
            events.emit("trace", trace_id="t1", latency_ms=5.0)
            handler = events.logging_handler()
            logger.addHandler(handler)
            try:
                logger.warning(
                    "replica %d restarted",
                    3,
                    extra={"obs_event": {"kind": "replica_restart", "worker": 3}},
                )
                logger.info("plain record")
            finally:
                logger.removeHandler(handler)
        events.emit("dropped", after="close")
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [event["kind"] for event in lines] == [
            "trace",
            "replica_restart",
            "log",
        ]
        assert lines[0]["latency_ms"] == 5.0
        assert lines[1]["worker"] == 3
        assert lines[1]["message"] == "replica 3 restarted"
        assert lines[2]["level"] == "INFO"

    def test_service_event_log_streams_traces(self, mapper, images, tmp_path):
        path = tmp_path / "service_events.jsonl"
        config = _service_config(event_log_path=str(path))
        with ScInferenceService(mapper, config) as service:
            futures = [service.submit(images[i]) for i in range(3)]
            for future in futures:
                future.result(timeout=60)
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        traces = [event for event in lines if event["kind"] == "trace"]
        assert len(traces) == 3
        for event in traces:
            assert event["summary"]["queue_ms"] + event["summary"][
                "service_ms"
            ] == pytest.approx(event["summary"]["latency_ms"], abs=1e-6)
            names = {span["name"] for span in event["spans"]}
            assert {"request", "submit", "queue", "compute"} <= names
