"""Compiled native kernel tier: bit-identity, fallback, thread sharding.

The contract under test is the one the backend registry advertises:
``bit-exact-native`` is a pure drop-in for ``bit-exact-packed`` --
bit-identical scores whether or not the compiled tier is available, with
graceful degradation (never an error) when it is not -- and
``bit-exact-native-mp`` shards batches across threads without changing a
single score.
"""

import os
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.backends import (
    BitExactNativeBackend,
    NativeParallelBackend,
    ParallelBackend,
    create_backend,
    describe_backends,
    resolve_parallel_backend,
)
from repro.blocks.batched import feature_extraction_recurrence_words
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.sc_layers import ScNetworkMapper
from repro.sc import native
from repro.sc.packed import (
    fused_xnor_column_counts,
    fused_xnor_majority_chain,
    pack_bits,
    pack_comparator_words,
    words_for_length,
)
from repro.workspace import Workspace

needs_native = pytest.mark.skipif(
    not native.available(),
    reason=f"compiled native tier unavailable: {native.native_error()}",
)


def _tiny_cnn():
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs, activation="hardware", seed=5, training_stream_length=128
    )


@pytest.fixture(scope="module")
def network():
    return _tiny_cnn()


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((6, 1, 28, 28))


def _random_words(rng, shape, length):
    bits = (rng.random(shape[:-1] + (length,)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


# -- kernel-level bit-identity -------------------------------------------------


@needs_native
@pytest.mark.parametrize("length", [1, 63, 64, 100, 1000, 8192])
def test_fused_counts_matches_numpy(length):
    rng = np.random.default_rng(length)
    a = _random_words(rng, (3, 5, words_for_length(length)), length)
    b = _random_words(rng, (3, 5, words_for_length(length)), length)
    extra = _random_words(rng, (3, 2, words_for_length(length)), length)
    expected = fused_xnor_column_counts(a, b, length, extra=extra)
    got = native.fused_xnor_column_counts(a, b, length, extra=extra)
    assert got is not None
    assert got.dtype == expected.dtype
    np.testing.assert_array_equal(got, expected)


@needs_native
def test_fused_counts_broadcast_and_u16():
    # Broadcast leading axes and an m_total past the uint8 count range.
    length = 300
    rng = np.random.default_rng(0)
    w = words_for_length(length)
    a = _random_words(rng, (4, 1, 300, w), length)
    b = _random_words(rng, (1, 2, 300, w), length)
    expected = fused_xnor_column_counts(a, b, length)
    got = native.fused_xnor_column_counts(a, b, length)
    assert got is not None
    assert got.dtype == np.uint16
    np.testing.assert_array_equal(got, expected)


@needs_native
@pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 16])
def test_fused_chain_matches_numpy(k):
    length = 200
    rng = np.random.default_rng(k)
    w = words_for_length(length)
    a = _random_words(rng, (5, k, w), length)
    b = _random_words(rng, (5, k, w), length)
    np.testing.assert_array_equal(
        native.fused_xnor_majority_chain(a, b, length),
        fused_xnor_majority_chain(a, b, length),
    )


@needs_native
@pytest.mark.parametrize("dtype", [np.uint8, np.uint16])
def test_fe_stepper_matches_numpy(dtype):
    rng = np.random.default_rng(7)
    half, low, high = 4, -4, 5
    counts = rng.integers(0, 11, size=(129, 1000)).astype(dtype)
    got = native.feature_extraction_recurrence_words(counts, half, low, high)
    assert got is not None
    np.testing.assert_array_equal(
        got, feature_extraction_recurrence_words(counts, half, low, high)
    )


@needs_native
@pytest.mark.parametrize("dtype", [np.int64, np.float64])
def test_pack_comparator_words_matches_numpy(dtype):
    rng = np.random.default_rng(5)
    length = 1000
    if dtype is np.int64:
        draws = rng.integers(0, 1 << 10, size=(40, length))
        thresholds = rng.integers(0, (1 << 10) + 1, size=40)
    else:
        draws = rng.random((40, length))
        thresholds = rng.random(40)
    expected = pack_comparator_words(draws, thresholds)
    got = native.pack_comparator_words(draws, thresholds)
    assert got is not None
    np.testing.assert_array_equal(got, expected)


@needs_native
def test_ones_count_matches_numpy():
    length = 777
    words = _random_words(np.random.default_rng(2), (9, words_for_length(length)), length)
    from repro.sc.packed import ones_count

    got = native.ones_count(words)
    assert got is not None
    np.testing.assert_array_equal(got, ones_count(words))


# -- backend-level drop-in equivalence ----------------------------------------


@pytest.mark.parametrize("stream_length", [100, 1000, 8192])
def test_native_backend_bit_identical(network, images, stream_length):
    batch = images if stream_length < 8192 else images[:2]
    mapper = ScNetworkMapper(network, stream_length=stream_length, seed=7)
    reference = create_backend("bit-exact-packed", mapper).forward(batch)
    scores = create_backend("bit-exact-native", mapper).forward(batch)
    np.testing.assert_array_equal(scores, reference)


def test_native_forward_partial_checkpoints_exact(network, images):
    mapper = ScNetworkMapper(network, stream_length=1000, seed=7)
    points = (100, 250, 500, 1000)
    packed = create_backend("bit-exact-packed", mapper)
    nat = create_backend("bit-exact-native", mapper)
    np.testing.assert_array_equal(
        nat.forward_partial(images, points),
        packed.forward_partial(images, points),
    )
    # The final checkpoint is the full forward pass, exactly.
    np.testing.assert_array_equal(
        nat.forward_partial(images, points)[-1], nat.forward(images)
    )


def test_use_native_false_runs_numpy_kernels(network, images):
    mapper = ScNetworkMapper(network, stream_length=200, seed=7)
    backend = BitExactNativeBackend(mapper, use_native=False)
    assert not backend.native_active
    np.testing.assert_array_equal(
        backend.forward(images),
        create_backend("bit-exact-packed", mapper).forward(images),
    )


def test_availability_reported_by_registry():
    lines = describe_backends().splitlines()
    native_lines = [l for l in lines if l.startswith("bit-exact-native ")]
    assert len(native_lines) == 1
    assert "native tier:" in native_lines[0]
    # The "name -- description" line format the serving docs rely on.
    assert " -- " in native_lines[0]


def test_env_var_disables_tier_without_breaking_backend(network):
    """REPRO_NATIVE=0 must yield a working (NumPy) backend, not an error."""
    code = (
        "import numpy as np\n"
        "from repro.sc import native\n"
        "assert not native.available()\n"
        "assert 'unavailable' in native.describe()\n"
        "from repro.backends import create_backend, describe_backends\n"
        "from repro.nn.architectures import LayerSpec, build_network\n"
        "from repro.nn.sc_layers import ScNetworkMapper\n"
        "specs = [\n"
        "    LayerSpec(kind='conv', name='C', kernel=3, channels=2),\n"
        "    LayerSpec(kind='pool', name='P', kernel=4, stride=4),\n"
        "    LayerSpec(kind='fc', name='F', units=16),\n"
        "    LayerSpec(kind='output', name='O', units=10),\n"
        "]\n"
        "net = build_network(specs, activation='hardware', seed=5,\n"
        "                    training_stream_length=128)\n"
        "mapper = ScNetworkMapper(net, stream_length=100, seed=7)\n"
        "images = np.random.default_rng(11).random((2, 1, 28, 28))\n"
        "nat = create_backend('bit-exact-native', mapper)\n"
        "assert not nat.native_active\n"
        "ref = create_backend('bit-exact-packed', mapper).forward(images)\n"
        "np.testing.assert_array_equal(nat.forward(images), ref)\n"
        "mp = create_backend('bit-exact-native-mp', mapper, workers=2)\n"
        "np.testing.assert_array_equal(mp.forward(images), ref)\n"
        "mp.close()\n"
    )
    env = dict(os.environ, REPRO_NATIVE="0")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH"),
        ) if p
    )
    subprocess.run(
        [sys.executable, "-c", code], check=True, env=env, timeout=300
    )


# -- thread-sharded parallel backend ------------------------------------------


@pytest.fixture(scope="module")
def thread_mapper(network):
    return ScNetworkMapper(network, stream_length=200, seed=7)


def test_thread_mode_forward_bit_identical(thread_mapper, images):
    reference = create_backend("bit-exact-packed", thread_mapper).forward(images)
    with create_backend(
        "bit-exact-native-mp", thread_mapper, workers=3
    ) as backend:
        assert backend.executor_mode == "thread"
        np.testing.assert_array_equal(backend.forward(images), reference)


def test_thread_mode_forward_partial_bit_identical(thread_mapper, images):
    points = (50, 100, 200)
    reference = create_backend("bit-exact-packed", thread_mapper).forward_partial(
        images, points
    )
    with create_backend(
        "bit-exact-native-mp", thread_mapper, workers=3
    ) as backend:
        np.testing.assert_array_equal(
            backend.forward_partial(images, points), reference
        )


def test_thread_mode_deterministic_under_concurrent_submits(
    thread_mapper, images
):
    """Concurrent forward calls share the replica pool without cross-talk."""
    reference = create_backend("bit-exact-packed", thread_mapper).forward(images)
    with create_backend(
        "bit-exact-native-mp", thread_mapper, workers=2
    ) as backend:
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(backend.forward, images) for _ in range(8)
            ]
            results = [f.result() for f in futures]
    for result in results:
        np.testing.assert_array_equal(result, reference)


def test_thread_mode_break_pool_is_a_noop(thread_mapper):
    with create_backend(
        "bit-exact-native-mp", thread_mapper, workers=2
    ) as backend:
        assert backend.break_pool() is False
        assert backend.pool_breaks == 0


def test_thread_mode_use_after_close_raises(thread_mapper, images):
    backend = create_backend("bit-exact-native-mp", thread_mapper, workers=2)
    backend.close()
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        backend.forward(images)


def test_thread_mode_serves_through_inference_service(thread_mapper, images):
    """bit-exact-native-mp is a drop-in replica backend for the service."""
    from repro.config import ServiceConfig
    from repro.serve import ScInferenceService

    direct = create_backend("bit-exact-packed", thread_mapper).forward(images)
    config = ServiceConfig(
        backend="bit-exact-native-mp",
        num_workers=1,  # one service thread whose replica owns the thread pool
        max_batch_size=8,
        max_wait_ms=20.0,
        early_exit=False,
        cache_capacity=0,
    )
    with ScInferenceService(thread_mapper, config, workers=2) as service:
        response = service.infer(images, timeout=300)
    np.testing.assert_array_equal(response.scores, direct)


def test_process_mode_still_default_for_packed(thread_mapper):
    with create_backend(
        "bit-exact-packed-mp", thread_mapper, workers=2
    ) as backend:
        assert backend.executor_mode == "process"


def test_executor_validation(thread_mapper):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ParallelBackend(thread_mapper, workers=2, executor="fibers")


# -- resolution policy ---------------------------------------------------------


def test_resolve_policy_picks_threads_for_native():
    assert resolve_parallel_backend("bit-exact-native", 4) == (
        "bit-exact-native-mp",
        {"workers": 4, "inner_backend": "bit-exact-native"},
    )
    assert resolve_parallel_backend("bit-exact-native-mp", 4) == (
        "bit-exact-native-mp",
        {"workers": 4, "inner_backend": "bit-exact-native"},
    )


def test_resolve_policy_keeps_processes_for_packed():
    assert resolve_parallel_backend("bit-exact-packed", 4) == (
        "bit-exact-packed-mp",
        {"workers": 4, "inner_backend": "bit-exact-packed"},
    )


def test_resolve_policy_explicit_executor_wins():
    name, options = resolve_parallel_backend(
        "bit-exact-native", 4, executor="process"
    )
    assert name == "bit-exact-packed-mp"
    assert options["inner_backend"] == "bit-exact-native"
    name, options = resolve_parallel_backend(
        "bit-exact-packed", 4, executor="thread"
    )
    assert name == "bit-exact-native-mp"
    assert options["inner_backend"] == "bit-exact-packed"


def test_resolve_policy_single_worker_passthrough():
    assert resolve_parallel_backend("bit-exact-native", None) == (
        "bit-exact-native",
        {},
    )
    assert resolve_parallel_backend("bit-exact-native", 1) == (
        "bit-exact-native",
        {},
    )


def test_resolve_policy_rejects_bad_executor():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        resolve_parallel_backend("bit-exact-packed", 4, executor="fibers")


# -- wide-slab regression (word-blocked per-cycle fallback) --------------------


def test_wide_slab_recurrence_words_regression():
    """A CONV-shaped wide slab must stay bit-exact through the fallback.

    ``n_states * batch`` far above the all-states slab cap forces the
    per-cycle path; since the word-emitting rewrite it assembles packed
    words directly (no ``(N, batch)`` byte-per-bit transients), and must
    agree bit-for-bit with the forced all-states strategy.
    """
    rng = np.random.default_rng(17)
    half, low, high = 4, -4, 5  # 10 states, first-layer CONV geometry
    counts = rng.integers(0, 11, size=(6000, 130)).astype(np.uint8)
    workspace = Workspace()
    auto = feature_extraction_recurrence_words(
        counts, half, low, high, workspace=workspace
    ).copy()
    forced = feature_extraction_recurrence_words(
        counts, half, low, high, strategy="all-states"
    )
    np.testing.assert_array_equal(auto, forced)
    # Odd tail: packed tail bits must stay zero through the direct path.
    tail_counts = rng.integers(0, 11, size=(3000, 67)).astype(np.uint8)
    words = feature_extraction_recurrence_words(tail_counts, half, low, high)
    assert words.shape == (3000, 2)
    assert not np.any(words[:, -1] >> np.uint64(3))
