"""Tests for the CMOS baseline cost models."""

import pytest

from repro.cmos import (
    CmosTechnology,
    GATE_LIBRARY,
    cmos_apc_feature_extraction_cost,
    cmos_categorization_cost,
    cmos_mux_pooling_cost,
    cmos_sng_cost,
)
from repro.errors import ConfigurationError


class TestCmosLibrary:
    def test_known_gates_present(self):
        for gate in ("inv", "nand2", "xnor2", "dff", "full_adder"):
            assert gate in GATE_LIBRARY

    def test_unknown_gate_rejected(self):
        with pytest.raises(ConfigurationError):
            CmosTechnology().gate_energy_j("flux_capacitor")

    def test_block_energy_adds_up(self):
        tech = CmosTechnology(leakage_fraction=0.0)
        energy = tech.block_energy_j({"nand2": 10}, 100)
        assert energy == pytest.approx(10 * 100 * GATE_LIBRARY["nand2"].energy_j)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            CmosTechnology(clock_hz=0)
        with pytest.raises(ConfigurationError):
            CmosTechnology(leakage_fraction=-0.1)


class TestCmosBlocks:
    def test_sng_energy_scales_with_outputs(self):
        small = cmos_sng_cost(100)
        large = cmos_sng_cost(800)
        assert large.energy_pj == pytest.approx(8 * small.energy_pj, rel=0.01)

    def test_feature_extraction_energy_grows_with_inputs(self):
        sizes = [9, 25, 121, 800]
        energies = [cmos_apc_feature_extraction_cost(s).energy_pj for s in sizes]
        assert energies == sorted(energies)

    def test_feature_extraction_delay_grows_with_inputs(self):
        # The paper's Table 5 CMOS delays grow with the APC tree depth.
        assert (
            cmos_apc_feature_extraction_cost(800).latency_ns
            > cmos_apc_feature_extraction_cost(9).latency_ns
        )

    def test_feature_extraction_order_of_magnitude(self):
        # Paper Table 5: hundreds of pJ at M=9, thousands at M=800.
        assert 100 < cmos_apc_feature_extraction_cost(9).energy_pj < 1000
        assert 3000 < cmos_apc_feature_extraction_cost(800).energy_pj < 30000

    def test_pooling_cheaper_than_feature_extraction(self):
        assert (
            cmos_mux_pooling_cost(9).energy_pj
            < cmos_apc_feature_extraction_cost(9).energy_pj
        )

    def test_categorization_more_expensive_than_feature_extraction(self):
        # Table 7's CMOS categorizer (full-precision adder tree) costs more
        # than the APC-based block of the same size in Table 5.
        assert (
            cmos_categorization_cost(500).energy_pj
            > cmos_apc_feature_extraction_cost(500).energy_pj
        )

    def test_energy_scales_with_stream_length(self):
        short = cmos_sng_cost(100, stream_length=128)
        long = cmos_sng_cost(100, stream_length=1024)
        assert long.energy_pj == pytest.approx(8 * short.energy_pj, rel=0.01)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            cmos_sng_cost(0)
        with pytest.raises(ConfigurationError):
            cmos_apc_feature_extraction_cost(10, stream_length=0)
        with pytest.raises(ConfigurationError):
            cmos_mux_pooling_cost(-2)
        with pytest.raises(ConfigurationError):
            cmos_categorization_cost(0)
