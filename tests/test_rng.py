"""Tests for repro.rng: TRNG model, LFSR, RNG matrix, quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.rng import (
    AqfpTrueRng,
    Lfsr,
    RngMatrix,
    bit_bias,
    chi_square_uniformity,
    pairwise_word_correlation,
    serial_correlation,
)


class TestAqfpTrueRng:
    def test_bits_are_binary(self):
        trng = AqfpTrueRng(8, seed=1)
        bits = trng.bits((100, 7))
        assert bits.shape == (100, 7)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_unbiased_by_default(self):
        trng = AqfpTrueRng(8, seed=2)
        assert abs(bit_bias(trng.bits(200_000))) < 0.01

    def test_bias_knob_shifts_distribution(self):
        trng = AqfpTrueRng(8, seed=3, bias=0.2)
        assert trng.bits(100_000).mean() == pytest.approx(0.7, abs=0.02)

    def test_persistence_creates_serial_correlation(self):
        ideal = AqfpTrueRng(4, seed=4)
        sticky = AqfpTrueRng(4, seed=4, flip_persistence=0.8)
        assert abs(serial_correlation(ideal.bits(50_000))) < 0.02
        assert serial_correlation(sticky.bits(50_000)) > 0.5

    def test_words_within_range(self):
        trng = AqfpTrueRng(6, seed=5)
        words = trng.words(1000)
        assert words.min() >= 0
        assert words.max() < 64

    def test_words_roughly_uniform(self):
        trng = AqfpTrueRng(6, seed=6)
        assert chi_square_uniformity(trng.words(50_000), 64) < 2.0

    def test_reset_reproduces_sequence(self):
        trng = AqfpTrueRng(8, seed=7)
        first = trng.bits(64)
        trng.reset()
        assert np.array_equal(first, trng.bits(64))

    def test_jj_count(self):
        assert AqfpTrueRng(10, seed=1).jj_count == 20

    def test_invalid_bias_rejected(self):
        with pytest.raises(ConfigurationError):
            AqfpTrueRng(8, bias=0.6)

    def test_invalid_persistence_rejected(self):
        with pytest.raises(ConfigurationError):
            AqfpTrueRng(8, flip_persistence=1.0)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            AqfpTrueRng(0)


class TestLfsr:
    def test_seed_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            Lfsr(8, seed=0)

    def test_unknown_width_needs_taps(self):
        with pytest.raises(ConfigurationError):
            Lfsr(21)

    def test_bad_tap_rejected(self):
        with pytest.raises(ConfigurationError):
            Lfsr(8, taps=(9,))

    def test_maximal_period_small_width(self):
        lfsr = Lfsr(5, seed=1)
        seen = set()
        for _ in range(lfsr.period):
            seen.add(lfsr.step())
        assert len(seen) == 31  # every non-zero state visited exactly once

    def test_never_reaches_zero(self):
        lfsr = Lfsr(6, seed=3)
        assert all(lfsr.step() != 0 for _ in range(200))

    def test_reset_restores_sequence(self):
        lfsr = Lfsr(10, seed=5)
        first = lfsr.sequence(32).tolist()
        lfsr.reset()
        assert lfsr.sequence(32).tolist() == first

    def test_words_shape(self):
        assert Lfsr(8, seed=1).words((4, 5)).shape == (4, 5)

    def test_roughly_uniform(self):
        lfsr = Lfsr(10, seed=77)
        assert chi_square_uniformity(lfsr.sequence(1023), 1024) < 2.0

    @given(st.integers(min_value=1, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_state_stays_in_range(self, seed):
        lfsr = Lfsr(8, seed=seed)
        for _ in range(50):
            assert 0 < lfsr.step() < 256


class TestRngMatrix:
    def test_word_count_and_width(self):
        matrix = RngMatrix(8, seed=1)
        assert matrix.n_words == 32
        assert matrix.word_bits == 8

    def test_words_shape_and_range(self):
        matrix = RngMatrix(6, seed=2)
        words = matrix.words(50)
        assert words.shape == (50, 24)
        assert words.min() >= 0 and words.max() < 64

    def test_shared_bits_rules(self):
        matrix = RngMatrix(8, seed=3)
        assert matrix.shared_bits(0, 8) == 8     # same row, both directions
        assert matrix.shared_bits(0, 1) == 0     # different rows
        assert matrix.shared_bits(0, 16) == 1    # row vs column
        assert matrix.shared_bits(5, 5) == 8     # identity

    def test_shared_bits_range_check(self):
        with pytest.raises(ConfigurationError):
            RngMatrix(4).shared_bits(0, 99)

    def test_sharing_gain_is_about_four(self):
        matrix = RngMatrix(10, seed=4)
        # 4N words from N*N units (plus splitters) instead of 4N private
        # N-bit TRNGs: a 2x JJ saving with the chosen cell costs (4x on the
        # TRNG cells themselves before the splitter overhead).
        assert matrix.sharing_gain() >= 2.0

    def test_distinct_row_words_uncorrelated(self):
        matrix = RngMatrix(10, seed=5)
        words = matrix.words(4000)
        corr = pairwise_word_correlation(words[:, :10])
        off_diag = corr[~np.eye(10, dtype=bool)]
        assert off_diag.max() < 0.1

    def test_invalid_cycles(self):
        with pytest.raises(ConfigurationError):
            RngMatrix(4).words(0)

    def test_too_small_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            RngMatrix(1)


class TestQualityMetrics:
    def test_bit_bias_empty_rejected(self):
        with pytest.raises(ShapeError):
            bit_bias(np.array([]))

    def test_serial_correlation_needs_length(self):
        with pytest.raises(ShapeError):
            serial_correlation(np.array([1, 0]), lag=5)

    def test_serial_correlation_constant_sequence(self):
        assert serial_correlation(np.ones(100)) == 0.0

    def test_chi_square_detects_non_uniformity(self):
        skewed = np.zeros(10_000, dtype=int)
        assert chi_square_uniformity(skewed, 64) > 10.0

    def test_pairwise_correlation_shape_check(self):
        with pytest.raises(ShapeError):
            pairwise_word_correlation(np.arange(10))

    def test_pairwise_correlation_identical_columns(self):
        col = np.random.default_rng(0).integers(0, 100, size=(50, 1))
        corr = pairwise_word_correlation(np.hstack([col, col]))
        assert corr[0, 1] == pytest.approx(1.0, abs=1e-9)
