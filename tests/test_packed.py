"""Equivalence tests: packed kernels and batched recurrences vs legacy paths.

The word-packed engine and the batched block kernels are pure
re-representations of the same hardware: every test here asserts
*bit-identical* output against the byte-per-bit / per-instance reference
implementations, across shapes, encodings, odd stream lengths (tail words
shorter than 64 bits) and both feature-extraction feedback modes.
"""

import numpy as np
import pytest

from repro.blocks.categorization import MajorityChainCategorizationBlock
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.errors import EncodingError, ShapeError
from repro.rng.lfsr import Lfsr
from repro.sc.bitstream import Bitstream
from repro.sc.ops import and_multiply, mux_add, mux_scaled_add, or_gate, xnor_multiply
from repro.sc.packed import (
    PackedBitstream,
    pack_bits,
    tail_mask,
    unpack_bits,
    words_for_length,
)

#: Shapes exercising leading value axes and non-multiple-of-64 tail words.
SHAPES = [(1,), (63,), (64,), (65,), (3, 130), (2, 3, 64), (4, 200), (5, 1)]


def random_bits(rng, shape):
    return rng.integers(0, 2, shape, dtype=np.uint8)


class TestPackUnpack:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_roundtrip(self, rng, shape):
        bits = random_bits(rng, shape)
        words = pack_bits(bits)
        assert words.shape == shape[:-1] + (words_for_length(shape[-1]),)
        assert np.array_equal(unpack_bits(words, shape[-1]), bits)

    @pytest.mark.parametrize("length", [1, 63, 64, 65, 127, 130])
    def test_tail_words_are_masked(self, rng, length):
        bits = np.ones(length, dtype=np.uint8)
        words = pack_bits(bits)
        assert words[-1] == tail_mask(length)

    def test_bitstream_interop(self, rng):
        bits = random_bits(rng, (3, 100))
        stream = Bitstream(bits, "unipolar")
        packed = stream.packed()
        assert packed.encoding == "unipolar"
        assert packed.length == 100
        assert packed.value_shape == (3,)
        back = Bitstream.from_packed(packed)
        assert np.array_equal(back.bits, bits)
        assert back.encoding == "unipolar"
        assert np.array_equal(packed.to_bitstream().bits, bits)

    def test_popcount_decode_matches_unpacked(self, rng):
        bits = random_bits(rng, (4, 333))
        stream = Bitstream(bits)
        packed = stream.packed()
        assert np.array_equal(packed.ones_count(), bits.sum(axis=-1))
        assert np.allclose(packed.to_values(), stream.to_values())

    def test_constructor_rejects_bad_word_count(self):
        with pytest.raises(ShapeError):
            PackedBitstream(np.zeros(2, dtype=np.uint64), length=200)

    def test_constructor_masks_dirty_tail(self):
        dirty = np.full(1, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        packed = PackedBitstream(dirty, length=10)
        assert packed.ones_count() == 10

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            PackedBitstream.from_bits(np.array([0, 1, 2], dtype=np.uint8))
        with pytest.raises(EncodingError):
            PackedBitstream.from_bits(np.array([0.5, 0.0]))
        with pytest.raises(EncodingError):
            PackedBitstream.from_bits(np.array([-1.0, 1.0]))


class TestPackedOps:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_xnor_matches_uint8_path(self, rng, shape):
        a, b = random_bits(rng, shape), random_bits(rng, shape)
        legacy = xnor_multiply(Bitstream(a), Bitstream(b))
        packed = xnor_multiply(Bitstream(a).packed(), Bitstream(b).packed())
        assert isinstance(packed, PackedBitstream)
        assert packed.encoding == legacy.encoding
        assert np.array_equal(packed.unpack(), legacy.bits)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_and_or_match_uint8_path(self, rng, shape):
        a, b = random_bits(rng, shape), random_bits(rng, shape)
        pa, pb = Bitstream(a, "unipolar").packed(), Bitstream(b, "unipolar").packed()
        assert np.array_equal(
            and_multiply(pa, pb).unpack(), and_multiply(a, b).bits
        )
        assert np.array_equal(or_gate(pa, pb).unpack(), or_gate(a, b))

    def test_mixed_operands_dispatch_to_packed(self, rng):
        a, b = random_bits(rng, (3, 70)), random_bits(rng, (3, 70))
        out = xnor_multiply(Bitstream(a).packed(), Bitstream(b))
        assert isinstance(out, PackedBitstream)
        assert np.array_equal(out.unpack(), xnor_multiply(a, b).bits)

    def test_length_mismatch_rejected(self, rng):
        a = Bitstream(random_bits(rng, (64,))).packed()
        b = Bitstream(random_bits(rng, (65,))).packed()
        with pytest.raises(ShapeError):
            xnor_multiply(a, b)

    def test_mux_add_matches_uint8_path(self, rng):
        bits = random_bits(rng, (4, 2, 100))
        select = rng.integers(0, 4, (2, 100))
        legacy = mux_add(Bitstream(bits), select)
        packed = mux_add(PackedBitstream.from_bits(bits), select)
        assert np.array_equal(packed.unpack(), legacy.bits)

    def test_mux_add_broadcast_select(self, rng):
        bits = random_bits(rng, (3, 2, 80))
        select = rng.integers(0, 3, (80,))
        legacy = mux_add(Bitstream(bits), select)
        packed = mux_add(PackedBitstream.from_bits(bits), select)
        assert np.array_equal(packed.unpack(), legacy.bits)

    def test_mux_add_rejects_out_of_range_select(self, rng):
        packed = PackedBitstream.from_bits(random_bits(rng, (2, 64)))
        with pytest.raises(ShapeError):
            mux_add(packed, np.full(64, 5))

    def test_mux_scaled_add_same_rng_matches(self, rng):
        bits = random_bits(rng, (4, 3, 120))
        legacy = mux_scaled_add(Bitstream(bits), np.random.default_rng(7))
        packed = mux_scaled_add(
            PackedBitstream.from_bits(bits), np.random.default_rng(7)
        )
        assert np.array_equal(packed.unpack(), legacy.bits)

    def test_value_shape_mismatch_rejected(self, rng):
        # Same ndim but different (broadcastable) value shapes must raise,
        # not silently broadcast.
        a = PackedBitstream.from_bits(random_bits(rng, (2, 1, 64)))
        b = PackedBitstream.from_bits(random_bits(rng, (1, 3, 64)))
        for op in (xnor_multiply, and_multiply, or_gate):
            with pytest.raises(ShapeError):
                op(a, b)

    def test_raw_array_operands_still_validated(self):
        # The bitwise kernels must not silently accept non-binary arrays
        # the way np.logical_* used to normalise them.
        with pytest.raises(EncodingError):
            and_multiply(np.array([[2]]), np.array([[3]]))
        with pytest.raises(EncodingError):
            xnor_multiply(np.array([0.5, 1.0]), np.array([0.0, 1.0]))
        packed = PackedBitstream.from_bits(np.array([[0, 1]], dtype=np.uint8))
        with pytest.raises(EncodingError):
            xnor_multiply(packed, np.array([[2, 3]]))

    def test_or_gate_packed_inherits_encoding(self, rng):
        bits = random_bits(rng, (3, 70))
        unipolar = Bitstream(bits, "unipolar").packed()
        assert or_gate(unipolar, unipolar).encoding == "unipolar"
        bipolar = Bitstream(bits).packed()
        assert or_gate(bipolar, bipolar).encoding == "bipolar"
        with pytest.raises(EncodingError):
            or_gate(unipolar, Bitstream(bits))  # mixed encodings ambiguous

    def test_mux_add_packed_rejects_bad_encoding(self, rng):
        packed = PackedBitstream.from_bits(random_bits(rng, (2, 64)))
        select = rng.integers(0, 2, (64,))
        with pytest.raises(EncodingError):
            mux_add(packed, select, encoding="biplar")

    def test_packed_mux_accepts_signed_select_words(self, rng):
        from repro.sc.packed import packed_mux

        a = pack_bits(random_bits(rng, (3, 70)))
        b = pack_bits(random_bits(rng, (3, 70)))
        select = pack_bits(random_bits(rng, (3, 70))).astype(np.int64)
        out = packed_mux(a, b, select)
        expected = (a & ~select.astype(np.uint64)) | (b & select.astype(np.uint64))
        assert np.array_equal(out, expected)

    def test_structural_helpers_return_copies(self, rng):
        bits = random_bits(rng, (2, 40))
        stream = Bitstream(bits)
        sub = stream.select(0)
        sub.bits[:] = 0
        assert np.array_equal(stream.bits, bits)  # parent unchanged
        reshaped = stream.reshape_values((2, 1))
        reshaped.bits[:] = 0
        assert np.array_equal(stream.bits, bits)


class TestBitstreamValidation:
    def test_rejects_out_of_range_integers(self):
        with pytest.raises(EncodingError):
            Bitstream(np.array([0, 1, 2]))
        with pytest.raises(EncodingError):
            Bitstream(np.array([-1, 0, 1]))

    def test_rejects_fractional_floats(self):
        with pytest.raises(EncodingError):
            Bitstream(np.array([0.0, 0.5, 1.0]))

    def test_accepts_bool_and_integral_floats(self):
        assert Bitstream(np.array([True, False])).length == 2
        assert np.array_equal(
            Bitstream(np.array([0.0, 1.0, 1.0])).bits, [0, 1, 1]
        )


class TestPoolingClosedForm:
    @pytest.mark.parametrize("m", [1, 2, 4, 9, 16])
    @pytest.mark.parametrize("length", [1, 65, 257])
    def test_matches_reference_loop(self, rng, m, length):
        block = SorterAveragePoolingBlock(m)
        bits = random_bits(rng, (5, m, length))
        assert np.array_equal(
            block.forward_bits(bits), block.forward_bits_reference(bits)
        )

    def test_matches_sorted_vector_model(self, rng):
        block = SorterAveragePoolingBlock(4)
        bits = random_bits(rng, (4, 200))
        assert np.array_equal(
            block.forward_bits(bits), block.forward_bits_sorted_vector(bits)
        )

    def test_deep_batch_axes(self, rng):
        block = SorterAveragePoolingBlock(4)
        bits = random_bits(rng, (2, 3, 4, 4, 100))
        out = block.forward_bits(bits)
        assert out.shape == (2, 3, 4, 100)
        assert np.array_equal(out, block.forward_bits_reference(bits))


class TestFeatureExtractionBatched:
    @pytest.mark.parametrize("feedback_mode", ["signed", "unsigned"])
    @pytest.mark.parametrize("m", [3, 8, 9])
    @pytest.mark.parametrize("length", [63, 64, 200])
    def test_batch_matches_per_instance(self, rng, feedback_mode, m, length):
        block = SorterFeatureExtractionBlock(m, feedback_mode=feedback_mode)
        products = random_bits(rng, (6, m, length))
        batched = block.forward_products(products)
        singles = np.stack([block.forward_products(p) for p in products])
        assert np.array_equal(batched, singles)

    @pytest.mark.parametrize("feedback_mode", ["signed", "unsigned"])
    def test_matches_sorted_vector_model(self, rng, feedback_mode):
        block = SorterFeatureExtractionBlock(9, feedback_mode=feedback_mode)
        products = random_bits(rng, (9, 150))
        assert np.array_equal(
            block.forward_products(products),
            block.forward_products_sorted_vector(products),
        )

    def test_transfer_curve_cache_key_includes_feedback_mode(self):
        from repro.blocks.feature_extraction import SorterTransferCurve

        signed = SorterTransferCurve.cached(
            5, n_points=17, stream_length=256, feedback_mode="signed"
        )
        unsigned = SorterTransferCurve.cached(
            5, n_points=17, stream_length=256, feedback_mode="unsigned"
        )
        assert signed is not unsigned
        assert signed is SorterTransferCurve.cached(
            5, n_points=17, stream_length=256, feedback_mode="signed"
        )


class TestMajorityChainPacked:
    @staticmethod
    def reference_chain(products):
        """Naive arithmetic majority chain (pre-packing reference)."""

        def maj3(a, b, c):
            return (
                (a.astype(np.int64) + b.astype(np.int64) + c.astype(np.int64)) >= 2
            ).astype(np.uint8)

        k = products.shape[-2]
        if k == 1:
            return products[..., 0, :]
        if k == 2:
            return products[..., 0, :] & products[..., 1, :]
        acc = maj3(products[..., 0, :], products[..., 1, :], products[..., 2, :])
        index = 3
        while index < k:
            if index + 1 < k:
                acc = maj3(acc, products[..., index, :], products[..., index + 1, :])
                index += 2
            else:
                acc = maj3(acc, products[..., index, :], np.zeros_like(acc))
                index += 1
        return acc

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 17, 64])
    @pytest.mark.parametrize("length", [63, 100, 200])
    def test_matches_reference(self, rng, k, length):
        block = MajorityChainCategorizationBlock(k)
        products = random_bits(rng, (3, k, length))
        assert np.array_equal(
            block.forward_products(products), self.reference_chain(products)
        )


class TestLfsrVectorizedWords:
    @staticmethod
    def reference_words(lfsr, count):
        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            out[i] = lfsr.step()
        return out

    @pytest.mark.parametrize("n_bits", [3, 5, 8, 10, 16])
    @pytest.mark.parametrize("count", [1, 7, 64, 1000])
    def test_matches_step_loop(self, n_bits, count):
        fast, slow = Lfsr(n_bits, seed=5), Lfsr(n_bits, seed=5)
        assert np.array_equal(fast.words(count), self.reference_words(slow, count))
        assert fast.state == slow.state

    def test_custom_short_taps(self):
        fast, slow = Lfsr(8, seed=7, taps=(3, 2)), Lfsr(8, seed=7, taps=(3, 2))
        assert np.array_equal(fast.words(500), self.reference_words(slow, 500))
        assert fast.state == slow.state

    def test_incremental_draws_continue_sequence(self):
        fast, slow = Lfsr(10, seed=9), Lfsr(10, seed=9)
        got = np.concatenate([fast.words(13), fast.words(7), fast.words(450)])
        assert np.array_equal(got, self.reference_words(slow, 470))

    def test_zero_count_leaves_state(self):
        lfsr = Lfsr(8, seed=3)
        before = lfsr.state
        assert lfsr.words(0).size == 0
        assert lfsr.state == before


# -- ISSUE 4: out=-capable kernels, fused reductions, word-direct SNG --------


from repro.sc.packed import (  # noqa: E402  (grouped with their tests)
    _popcount_words_fallback,
    fused_xnor_column_counts,
    fused_xnor_majority_chain,
    majority_chain_words,
    pack_comparator_words,
    packed_and,
    packed_column_counts,
    packed_mux,
    packed_or,
    packed_xnor,
    popcount_words,
    unpack_bits_into,
)
from repro.workspace import Workspace

#: Stream lengths with non-trivial tail words (and one aligned control).
TAIL_LENGTHS = [100, 1000, 128]


class TestOutKernels:
    """The out=-capable gate kernels match their allocating forms exactly."""

    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    def test_xnor_out(self, rng, length):
        a = pack_bits(random_bits(rng, (5, length)))
        b = pack_bits(random_bits(rng, (5, length)))
        expected = packed_xnor(a, b, length)
        out = np.empty_like(a)
        result = packed_xnor(a, b, length, out=out)
        assert result is out
        assert np.array_equal(out, expected)
        # Tail bits of the XNOR (which negates) must stay zero.
        assert not np.any(out[..., -1] & ~tail_mask(length))

    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    def test_and_or_out(self, rng, length):
        a = pack_bits(random_bits(rng, (4, length)))
        b = pack_bits(random_bits(rng, (4, length)))
        for op in (packed_and, packed_or):
            out = np.empty_like(a)
            assert op(a, b, out=out) is out
            assert np.array_equal(out, op(a, b))

    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    def test_mux_out(self, rng, length):
        a = pack_bits(random_bits(rng, (4, length)))
        b = pack_bits(random_bits(rng, (4, length)))
        select = pack_bits(random_bits(rng, (4, length)))
        expected = packed_mux(a, b, select)
        out = np.empty_like(a)
        assert packed_mux(a, b, select, out=out) is out
        assert np.array_equal(out, expected)
        # Documented aliasing: out may alias b.
        b2 = b.copy()
        packed_mux(a, b2, select, out=b2)
        assert np.array_equal(b2, expected)

    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    def test_column_counts_out(self, rng, length):
        words = pack_bits(random_bits(rng, (3, 7, length)))
        expected = packed_column_counts(words, length)
        out = np.empty((3, length), dtype=np.uint8)
        assert packed_column_counts(words, length, out=out) is out
        assert np.array_equal(out, expected)
        with pytest.raises(ShapeError):
            packed_column_counts(
                words, length, out=np.empty((3, length + 1), dtype=np.uint8)
            )


class TestUnpackBitsInto:
    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    def test_matches_unpack_bits(self, rng, length):
        words = pack_bits(random_bits(rng, (2, 5, length)))
        padded = words.shape[-1] * 64
        out = np.empty(words.shape[:-1] + (padded,), dtype=np.uint8)
        assert unpack_bits_into(words, out) is out
        assert np.array_equal(out[..., :length], unpack_bits(words, length))
        # Tail positions beyond the stream are zero (tail-word invariant).
        assert not out[..., length:].any()

    def test_rejects_bad_out(self, rng):
        words = pack_bits(random_bits(rng, (3, 100)))
        with pytest.raises(ShapeError):
            unpack_bits_into(words, np.empty((3, 100), dtype=np.uint8))
        with pytest.raises(ShapeError):
            unpack_bits_into(
                words, np.empty((3, 2 * 64), dtype=np.uint16)
            )


class TestPopcountPaths:
    """np.bitwise_count fast path and the byte-LUT fallback agree."""

    def test_fallback_matches_primary(self, rng):
        words = rng.integers(0, 2**63, (4, 9), dtype=np.uint64)
        words[0, 0] = 0
        words[0, 1] = np.uint64(0xFFFFFFFFFFFFFFFF)
        assert np.array_equal(
            popcount_words(words), _popcount_words_fallback(words)
        )

    def test_fallback_matches_python_bit_count(self, rng):
        words = rng.integers(0, 2**63, 64, dtype=np.uint64)
        expected = np.array([int(w).bit_count() for w in words], dtype=np.uint64)
        assert np.array_equal(_popcount_words_fallback(words), expected)


class TestPackComparatorWords:
    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    def test_matches_comparator_bits(self, rng, length):
        draws = rng.integers(0, 1024, (6, length))
        thresholds = rng.integers(0, 1025, (6,))
        expected = (draws < thresholds[:, None]).astype(np.uint8)
        words = pack_comparator_words(draws, thresholds)
        assert np.array_equal(unpack_bits(words, length), expected)
        out = np.empty_like(words)
        assert pack_comparator_words(draws, thresholds, out=out) is out
        assert np.array_equal(out, words)

    def test_rejects_mismatched_thresholds(self, rng):
        with pytest.raises(ShapeError):
            pack_comparator_words(
                rng.integers(0, 8, (3, 64)), rng.integers(0, 8, (4,))
            )


class TestFusedColumnCounts:
    """Streaming-CSA fusion is bit-identical to the materialised tree."""

    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    @pytest.mark.parametrize("m", [1, 2, 3, 9, 10, 17])
    def test_matches_product_tree(self, rng, length, m):
        a = pack_bits(random_bits(rng, (4, m, length)))
        b = pack_bits(random_bits(rng, (4, m, length)))
        expected = packed_column_counts(packed_xnor(a, b, length), length)
        assert np.array_equal(
            fused_xnor_column_counts(a, b, length), expected
        )

    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    def test_extra_planes_and_broadcast(self, rng, length):
        a = pack_bits(random_bits(rng, (3, 5, length)))  # (3, 5, W)
        b = pack_bits(random_bits(rng, (2, 1, 5, length)))  # (2, 1, 5, W)
        extra = pack_bits(random_bits(rng, (2, 3, 2, length)))
        w = a.shape[-1]
        products = packed_xnor(
            np.broadcast_to(a, (2, 3, 5, w)).copy(),
            np.broadcast_to(b, (2, 3, 5, w)).copy(),
            length,
        )
        expected = packed_column_counts(
            np.concatenate([products, extra], axis=-2), length
        )
        got = fused_xnor_column_counts(a, b, length, extra=extra)
        assert np.array_equal(got, expected)

    def test_out_and_workspace_reuse(self, rng):
        length = 1000
        workspace = Workspace()
        a = pack_bits(random_bits(rng, (4, 9, length)))
        b = pack_bits(random_bits(rng, (4, 9, length)))
        expected = packed_column_counts(packed_xnor(a, b, length), length)
        out = np.empty((4, length), dtype=np.uint8)
        got = fused_xnor_column_counts(
            a, b, length, out=out, workspace=workspace
        )
        assert got is out
        assert np.array_equal(out, expected)
        retained = workspace.nbytes
        # Steady state: a second identical call allocates nothing new.
        fused_xnor_column_counts(a, b, length, out=out, workspace=workspace)
        assert workspace.nbytes == retained
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("m", [300, 511, 700, 1568])
    def test_wide_counts_dtype(self, rng, m):
        # More than 255 streams forces uint16 counts (the wide-shift
        # path); m >= 511 exercises bit planes at exponent >= 9, which a
        # narrow shift would silently wrap (regression: FC-500-sized
        # layers came out garbage while small test nets passed).
        length = 100
        a = pack_bits(random_bits(rng, (2, m, length)))
        b = pack_bits(random_bits(rng, (2, m, length)))
        extra = pack_bits(random_bits(rng, (2, 1, length)))
        expected = packed_column_counts(
            np.concatenate([packed_xnor(a, b, length), extra], axis=-2),
            length,
        )
        got = fused_xnor_column_counts(a, b, length, extra=extra)
        assert got.dtype == np.uint16
        assert np.array_equal(got, expected)

    def test_rejects_mismatched_axes(self, rng):
        a = pack_bits(random_bits(rng, (2, 3, 128)))
        b = pack_bits(random_bits(rng, (2, 4, 128)))
        with pytest.raises(ShapeError):
            fused_xnor_column_counts(a, b, 128)

    def test_rejects_too_narrow_out(self, rng):
        # A uint8 out cannot hold counts of 300 streams; silent modular
        # wrap-around must be a loud error instead.
        length, m = 100, 300
        a = pack_bits(random_bits(rng, (1, m, length)))
        b = pack_bits(random_bits(rng, (1, m, length)))
        with pytest.raises(ShapeError):
            fused_xnor_column_counts(
                a, b, length, out=np.empty((1, length), dtype=np.uint8)
            )
        with pytest.raises(ShapeError):
            packed_column_counts(
                packed_xnor(a, b, length),
                length,
                out=np.empty((1, length), dtype=np.uint8),
            )


class TestFusedMajorityChain:
    @pytest.mark.parametrize("length", TAIL_LENGTHS)
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 9, 16])
    def test_matches_chain_over_products(self, rng, length, k):
        a = pack_bits(random_bits(rng, (3, k, length)))
        b = pack_bits(random_bits(rng, (2, 1, k, length)))
        w = a.shape[-1]
        expected = majority_chain_words(
            packed_xnor(
                np.broadcast_to(a, (2, 3, k, w)).copy(),
                np.broadcast_to(b, (2, 3, k, w)).copy(),
                length,
            )
        )
        workspace = Workspace()
        got = fused_xnor_majority_chain(a, b, length, workspace=workspace)
        assert np.array_equal(got, expected)
        out = np.empty((2, 3, w), dtype=np.uint64)
        assert (
            fused_xnor_majority_chain(
                a, b, length, out=out, workspace=workspace
            )
            is out
        )
        assert np.array_equal(out, expected)


class TestWorkspace:
    def test_reuse_and_growth(self):
        workspace = Workspace()
        first = workspace.array("k", (4, 8), np.uint64)
        first[...] = 7
        again = workspace.array("k", (4, 8), np.uint64)
        assert again.base is first.base  # same backing buffer
        smaller = workspace.array("k", (2, 8), np.uint64)
        assert smaller.base is first.base  # shrinking reuses capacity
        before = workspace.nbytes
        workspace.array("k", (8, 8), np.uint64)  # growth reallocates
        assert workspace.nbytes > before
        assert len(workspace) == 1
        workspace.clear()
        assert workspace.nbytes == 0

    def test_distinct_keys_are_distinct_buffers(self):
        workspace = Workspace()
        a = workspace.array(("x", 0), (16,), np.uint8)
        b = workspace.array(("x", 1), (16,), np.uint8)
        a[...] = 1
        b[...] = 2
        assert a.sum() == 16 and b.sum() == 32
