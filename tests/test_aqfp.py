"""Tests for repro.aqfp: cells, netlists, balancing, synthesis, clocking,
energy, and the gate-level simulator (cross-checked against the sorting
networks and majority chains they implement)."""

import numpy as np
import pytest

from repro.aqfp import (
    AqfpTechnology,
    CellType,
    Netlist,
    analyze_clocking,
    balance_netlist,
    estimate_cost,
    majority_synthesis,
    simulate,
)
from repro.aqfp.cells import CELL_LIBRARY, cell_spec
from repro.aqfp.energy import cost_from_counts
from repro.aqfp.gates import (
    add_magnitude_comparator,
    add_majority_chain,
    add_xnor,
    build_majority_chain_netlist,
    build_sorter_netlist,
)
from repro.errors import ConfigurationError, NetlistError, SimulationError
from repro.sorting import bitonic_sorter


class TestCells:
    def test_library_is_complete(self):
        assert set(CELL_LIBRARY) == set(CellType)

    def test_majority_costs_like_and(self):
        assert cell_spec(CellType.MAJ3).jj_count == cell_spec(CellType.AND2).jj_count

    def test_buffer_has_two_junctions(self):
        assert cell_spec(CellType.BUFFER).jj_count == 2


class TestTechnology:
    def test_defaults_valid(self):
        tech = AqfpTechnology()
        assert tech.phase_time_s == pytest.approx(tech.cycle_time_s / 4)

    def test_energy_scales_linearly(self):
        tech = AqfpTechnology()
        assert tech.energy_j(100, 10) == pytest.approx(10 * tech.energy_j(100, 1))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AqfpTechnology(energy_per_jj_j=0)
        with pytest.raises(ConfigurationError):
            AqfpTechnology(cooling_overhead=0.5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            AqfpTechnology().energy_j(-1, 5)


class TestNetlist:
    def test_gate_arity_checked(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate(CellType.AND2, (a,))

    def test_unknown_input_rejected(self):
        netlist = Netlist()
        with pytest.raises(NetlistError):
            netlist.add_gate(CellType.BUFFER, (42,))

    def test_add_input_vs_add_gate(self):
        netlist = Netlist()
        with pytest.raises(NetlistError):
            netlist.add_gate(CellType.INPUT, ())

    def test_jj_count_and_summary(self):
        netlist = Netlist("demo")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        out = netlist.add_gate(CellType.AND2, (a, b))
        netlist.set_outputs([out])
        assert netlist.jj_count() == 6
        summary = netlist.summary()
        assert summary["gates"] == 1
        assert summary["depth"] == 1

    def test_constants_do_not_add_depth(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        const = netlist.add_gate(CellType.CONST_1, ())
        out = netlist.add_gate(CellType.OR2, (a, const))
        netlist.set_outputs([out])
        assert netlist.logic_depth() == 1
        assert netlist.is_phase_aligned()

    def test_unbalanced_detected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        buffered = netlist.add_gate(CellType.BUFFER, (a,))
        out = netlist.add_gate(CellType.AND2, (buffered, b))
        netlist.set_outputs([out])
        assert not netlist.is_phase_aligned()

    def test_fanout_violations(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_gate(CellType.BUFFER, (a,))
        netlist.add_gate(CellType.INVERTER, (a,))
        assert netlist.fanout_violations() == [a]


class TestBalancing:
    def test_balance_fixes_alignment_and_fanout(self):
        netlist = build_sorter_netlist(bitonic_sorter(5), "sorter5")
        balanced, report = balance_netlist(netlist)
        assert balanced.is_phase_aligned()
        assert balanced.fanout_violations() == []
        assert report.jj_after >= report.jj_before
        assert report.buffers_added > 0
        assert report.splitters_added > 0

    def test_balanced_netlist_preserves_function(self, rng):
        netlist = build_sorter_netlist(bitonic_sorter(7), "sorter7")
        balanced, _ = balance_netlist(netlist)
        stimulus = {i: rng.integers(0, 2, 32).astype(np.uint8) for i in balanced.inputs}
        outputs = simulate(balanced, stimulus)
        stacked = np.stack([stimulus[i] for i in balanced.inputs])
        expected = np.sort(stacked, axis=0)[::-1]
        got = np.stack([outputs[o] for o in balanced.outputs])
        assert np.array_equal(got, expected)

    def test_fanout_limit_validation(self):
        netlist = build_sorter_netlist(bitonic_sorter(3))
        from repro.aqfp.balance import insert_splitters

        with pytest.raises(NetlistError):
            insert_splitters(netlist, fanout_limit=1)


class TestSynthesis:
    def test_rewrite_preserves_function(self, rng):
        netlist = build_sorter_netlist(bitonic_sorter(6), "sorter6")
        synthesized, report = majority_synthesis(netlist)
        assert report.and_or_rewritten > 0
        stimulus = {i: rng.integers(0, 2, 16).astype(np.uint8) for i in synthesized.inputs}
        outputs = simulate(synthesized, stimulus)
        stacked = np.stack([stimulus[i] for i in synthesized.inputs])
        expected = np.sort(stacked, axis=0)[::-1]
        got = np.stack([outputs[o] for o in synthesized.outputs])
        assert np.array_equal(got, expected)

    def test_rewrite_replaces_all_and_or(self):
        netlist = build_sorter_netlist(bitonic_sorter(4))
        synthesized, _ = majority_synthesis(netlist)
        counts = synthesized.cell_counts()
        assert counts.get(CellType.AND2, 0) == 0
        assert counts.get(CellType.OR2, 0) == 0
        assert counts.get(CellType.MAJ3, 0) > 0


class TestGateMacros:
    def test_xnor_truth_table(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        out = add_xnor(netlist, a, b)
        netlist.set_outputs([out])
        stimulus = {a: np.array([0, 0, 1, 1], dtype=np.uint8),
                    b: np.array([0, 1, 0, 1], dtype=np.uint8)}
        result = simulate(netlist, stimulus)[out]
        assert np.array_equal(result, np.array([1, 0, 0, 1]))

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 7, 10])
    def test_majority_chain_matches_functional_model(self, k, rng):
        from repro.blocks.categorization import MajorityChainCategorizationBlock

        netlist = build_majority_chain_netlist(k)
        stimulus = {
            node: rng.integers(0, 2, 64).astype(np.uint8) for node in netlist.inputs
        }
        hardware_out = list(simulate(netlist, stimulus).values())[0]
        products = np.stack([stimulus[node] for node in netlist.inputs])
        model_out = MajorityChainCategorizationBlock(k).forward_products(products)
        assert np.array_equal(hardware_out, model_out)

    def test_magnitude_comparator(self, rng):
        n_bits = 4
        netlist = Netlist()
        value_bits = [netlist.add_input(f"v{i}") for i in range(n_bits)]
        random_bits = [netlist.add_input(f"r{i}") for i in range(n_bits)]
        out = add_magnitude_comparator(netlist, value_bits, random_bits)
        netlist.set_outputs([out])
        values = rng.integers(0, 16, 64)
        randoms = rng.integers(0, 16, 64)
        stimulus = {}
        for position in range(n_bits):
            shift = n_bits - 1 - position  # MSB first
            stimulus[value_bits[position]] = ((values >> shift) & 1).astype(np.uint8)
            stimulus[random_bits[position]] = ((randoms >> shift) & 1).astype(np.uint8)
        result = simulate(netlist, stimulus)[out]
        assert np.array_equal(result, (randoms < values).astype(np.uint8))

    def test_empty_majority_chain_rejected(self):
        netlist = Netlist()
        with pytest.raises(NetlistError):
            add_majority_chain(netlist, [])


class TestClockingAndEnergy:
    def test_clocking_requires_balanced(self):
        netlist = build_sorter_netlist(bitonic_sorter(5))
        with pytest.raises(SimulationError):
            analyze_clocking(netlist, AqfpTechnology())

    def test_clocking_report_values(self):
        netlist, _ = balance_netlist(build_sorter_netlist(bitonic_sorter(4)))
        tech = AqfpTechnology()
        report = analyze_clocking(netlist, tech, stream_length=1024)
        assert report.phases == netlist.logic_depth()
        assert report.fill_latency_s == pytest.approx(report.phases * tech.phase_time_s)
        assert 0.9 < report.utilization < 1.0

    def test_estimate_cost_scales_with_stream(self):
        netlist, _ = balance_netlist(build_sorter_netlist(bitonic_sorter(4)))
        tech = AqfpTechnology()
        short = estimate_cost(netlist, tech, 128)
        long = estimate_cost(netlist, tech, 1024)
        assert long.energy_pj == pytest.approx(8 * short.energy_pj)
        assert long.latency_ns == pytest.approx(short.latency_ns)

    def test_cost_ratio_helpers(self):
        tech = AqfpTechnology()
        cheap = cost_from_counts(100, 10, tech, 1024)
        costly = cost_from_counts(1000, 20, tech, 1024)
        assert cheap.energy_ratio(costly) == pytest.approx(10.0)
        assert cheap.speedup(costly) == pytest.approx(2.0)

    def test_cost_validation(self):
        with pytest.raises(SimulationError):
            cost_from_counts(-1, 0, AqfpTechnology(), 1024)


class TestSimulator:
    def test_missing_stimulus_rejected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        out = netlist.add_gate(CellType.BUFFER, (a,))
        netlist.set_outputs([out])
        with pytest.raises(SimulationError):
            simulate(netlist, {})

    def test_all_primitive_gates(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        c = netlist.add_input("c")
        gates = {
            "and": netlist.add_gate(CellType.AND2, (a, b)),
            "or": netlist.add_gate(CellType.OR2, (a, b)),
            "nand": netlist.add_gate(CellType.NAND2, (a, b)),
            "nor": netlist.add_gate(CellType.NOR2, (a, b)),
            "inv": netlist.add_gate(CellType.INVERTER, (a,)),
            "maj": netlist.add_gate(CellType.MAJ3, (a, b, c)),
            "const0": netlist.add_gate(CellType.CONST_0, ()),
            "const1": netlist.add_gate(CellType.CONST_1, ()),
        }
        netlist.set_outputs(list(gates.values()))
        stimulus = {
            a: np.array([0, 0, 1, 1], dtype=np.uint8),
            b: np.array([0, 1, 0, 1], dtype=np.uint8),
            c: np.array([1, 0, 0, 1], dtype=np.uint8),
        }
        out = simulate(netlist, stimulus)
        assert np.array_equal(out[gates["and"]], [0, 0, 0, 1])
        assert np.array_equal(out[gates["or"]], [0, 1, 1, 1])
        assert np.array_equal(out[gates["nand"]], [1, 1, 1, 0])
        assert np.array_equal(out[gates["nor"]], [1, 0, 0, 0])
        assert np.array_equal(out[gates["inv"]], [1, 1, 0, 0])
        assert np.array_equal(out[gates["maj"]], [0, 0, 0, 1])
        assert np.array_equal(out[gates["const0"]], [0, 0, 0, 0])
        assert np.array_equal(out[gates["const1"]], [1, 1, 1, 1])
