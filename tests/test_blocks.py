"""Tests for repro.blocks: the paper's proposed blocks and the APC baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqfp import simulate
from repro.blocks import (
    ApcFeatureExtractionBlock,
    MajorityChainCategorizationBlock,
    SngBlock,
    SorterAveragePoolingBlock,
    SorterFeatureExtractionBlock,
    SorterTransferCurve,
    chain_output_probability,
    estimate_transfer_curve,
    sorter_activation,
)
from repro.blocks.feature_extraction import neutral_column
from repro.errors import ConfigurationError, ShapeError


def bipolar_streams(values, length, rng):
    p = (np.asarray(values, dtype=float) + 1.0) / 2.0
    return (rng.random(p.shape + (length,)) < p[..., None]).astype(np.uint8)


class TestFeatureExtraction:
    @pytest.mark.parametrize("m", [3, 5, 9, 10, 25])
    def test_counter_model_matches_sorted_vector_model(self, m, rng):
        block = SorterFeatureExtractionBlock(m)
        products = rng.integers(0, 2, (m, 256)).astype(np.uint8)
        assert np.array_equal(
            block.forward_products(products),
            block.forward_products_sorted_vector(products),
        )

    @pytest.mark.parametrize("mode", ["signed", "unsigned"])
    def test_models_match_in_both_feedback_modes(self, mode, rng):
        block = SorterFeatureExtractionBlock(9, feedback_mode=mode)
        products = rng.integers(0, 2, (9, 200)).astype(np.uint8)
        assert np.array_equal(
            block.forward_products(products),
            block.forward_products_sorted_vector(products),
        )

    def test_output_approximates_clipped_inner_product(self, rng):
        m, n = 25, 4096
        inputs = rng.uniform(-1, 1, m)
        weights = rng.uniform(-1, 1, m)
        block = SorterFeatureExtractionBlock(m)
        products = np.logical_not(
            np.logical_xor(
                bipolar_streams(inputs, n, rng), bipolar_streams(weights, n, rng)
            )
        ).astype(np.uint8)
        decoded = 2.0 * block.forward_products(products).mean() - 1.0
        target = np.clip((inputs * weights).sum(), -1, 1)
        assert abs(decoded - target) < 0.25

    def test_saturation_positive_and_negative(self, rng):
        m, n = 9, 2048
        block = SorterFeatureExtractionBlock(m)
        ones = np.ones((m, n), dtype=np.uint8)
        zeros = np.zeros((m, n), dtype=np.uint8)
        assert 2.0 * block.forward_products(ones).mean() - 1.0 > 0.95
        assert 2.0 * block.forward_products(zeros).mean() - 1.0 < -0.95

    def test_even_input_padding(self, rng):
        block = SorterFeatureExtractionBlock(4)
        assert block.effective_inputs == 5
        products = rng.integers(0, 2, (4, 128)).astype(np.uint8)
        out = block.forward_products(products)
        assert out.shape == (128,)

    def test_neutral_column_value_is_zero(self):
        column = neutral_column(256)
        assert column.mean() == pytest.approx(0.5)

    def test_batched_forward(self, rng):
        block = SorterFeatureExtractionBlock(9)
        products = rng.integers(0, 2, (4, 3, 9, 64)).astype(np.uint8)
        out = block.forward_products(products)
        assert out.shape == (4, 3, 64)
        # Every batch entry must match its own individual simulation.
        single = block.forward_products(products[2, 1])
        assert np.array_equal(out[2, 1], single)

    def test_forward_with_bias(self, rng):
        block = SorterFeatureExtractionBlock(9)
        x = bipolar_streams(rng.uniform(-1, 1, 9), 256, rng)
        w = bipolar_streams(rng.uniform(-1, 1, 9), 256, rng)
        bias = bipolar_streams(np.array([0.5]), 256, rng)
        out = block.forward(x, w, bias)
        assert out.bits.shape == (256,)

    def test_shape_validation(self, rng):
        block = SorterFeatureExtractionBlock(9)
        with pytest.raises(ShapeError):
            block.forward_products(rng.integers(0, 2, (5, 64)).astype(np.uint8))
        with pytest.raises(ShapeError):
            block.forward_products_sorted_vector(
                rng.integers(0, 2, (2, 9, 64)).astype(np.uint8)
            )

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SorterFeatureExtractionBlock(0)
        with pytest.raises(ConfigurationError):
            SorterFeatureExtractionBlock(9, feedback_mode="bogus")

    def test_reference_output_is_clip(self):
        block = SorterFeatureExtractionBlock(3)
        assert block.reference_output(np.array([0.8, 0.8, 0.8])) == pytest.approx(1.0)
        assert sorter_activation(-3.0) == pytest.approx(-1.0)

    def test_hardware_estimate_grows_with_inputs(self):
        small = SorterFeatureExtractionBlock(9).hardware()
        large = SorterFeatureExtractionBlock(81).hardware()
        assert large.jj_count > small.jj_count
        assert large.depth_phases > small.depth_phases

    def test_netlist_single_cycle_matches_model(self, rng):
        m = 5
        block = SorterFeatureExtractionBlock(m)
        netlist = block.build_netlist()
        x = rng.integers(0, 2, (m, 16)).astype(np.uint8)
        w = rng.integers(0, 2, (m, 16)).astype(np.uint8)
        feedback = np.zeros((m, 16), dtype=np.uint8)
        feedback[: (m - 1) // 2] = 1  # signed-mode initial accumulator
        stimulus = {}
        input_ids = netlist.inputs
        for index in range(m):
            stimulus[input_ids[index]] = x[index]
            stimulus[input_ids[m + index]] = w[index]
            stimulus[input_ids[2 * m + index]] = feedback[index]
        outputs = simulate(netlist, stimulus)
        products = np.logical_not(np.logical_xor(x, w)).astype(np.uint8)
        merged = np.sort(np.concatenate([products, feedback], axis=0), axis=0)[::-1]
        out_values = list(outputs.values())
        # First output is the output bit at sorted position m - 1.
        assert np.array_equal(out_values[0], merged[m - 1])

    def test_transfer_curve_monotone_and_saturating(self):
        curve = SorterTransferCurve(25, stream_length=2048)
        zs = np.linspace(-3.5, 3.5, 21)
        values = curve(zs)
        assert np.all(np.diff(values) >= -1e-9)
        assert values[0] < -0.9 and values[-1] > 0.9
        assert np.all(curve.derivative(zs) >= 0)

    def test_transfer_curve_cache(self):
        a = SorterTransferCurve.cached(9, stream_length=2048)
        b = SorterTransferCurve.cached(9, stream_length=2048)
        assert a is b

    def test_estimate_transfer_curve_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_transfer_curve(0, np.array([0.0]))


class TestPooling:
    @pytest.mark.parametrize("m", [2, 4, 9, 16])
    def test_counter_model_matches_sorted_vector_model(self, m, rng):
        block = SorterAveragePoolingBlock(m)
        bits = rng.integers(0, 2, (m, 256)).astype(np.uint8)
        assert np.array_equal(
            block.forward_bits(bits), block.forward_bits_sorted_vector(bits)
        )

    @pytest.mark.parametrize("m", [4, 9, 16])
    def test_output_is_mean_of_inputs(self, m, rng):
        block = SorterAveragePoolingBlock(m)
        values = rng.uniform(-1, 1, m)
        bits = bipolar_streams(values, 4096, rng)
        decoded = 2.0 * block.forward_bits(bits).mean() - 1.0
        assert decoded == pytest.approx(values.mean(), abs=0.05)

    def test_much_more_accurate_than_mux_pooling(self, rng):
        from repro.sc.ops import mux_scaled_add

        m, n = 9, 512
        values = rng.uniform(-1, 1, m)
        bits = bipolar_streams(values, n, rng)
        sorter_error = abs(
            2.0 * SorterAveragePoolingBlock(m).forward_bits(bits).mean() - 1.0
            - values.mean()
        )
        mux_errors = []
        for _ in range(10):
            mux_out = mux_scaled_add(bits, rng)
            mux_errors.append(abs(mux_out.to_values() - values.mean()))
        assert sorter_error < np.mean(mux_errors)

    def test_batched_forward(self, rng):
        block = SorterAveragePoolingBlock(4)
        bits = rng.integers(0, 2, (6, 4, 128)).astype(np.uint8)
        out = block.forward_bits(bits)
        assert out.shape == (6, 128)
        assert np.array_equal(out[3], block.forward_bits(bits[3]))

    def test_conservation_of_ones(self, rng):
        # One output 1 for every M input 1s (up to the feedback remainder).
        m, n = 4, 512
        block = SorterAveragePoolingBlock(m)
        bits = rng.integers(0, 2, (m, n)).astype(np.uint8)
        out = block.forward_bits(bits)
        total_in = int(bits.sum())
        total_out = int(out.sum())
        assert abs(total_out - total_in // m) <= 1

    def test_shape_validation(self, rng):
        block = SorterAveragePoolingBlock(4)
        with pytest.raises(ShapeError):
            block.forward_bits(rng.integers(0, 2, (3, 64)).astype(np.uint8))

    def test_hardware_estimate(self):
        assert SorterAveragePoolingBlock(4).hardware().jj_count > 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            SorterAveragePoolingBlock(0)


class TestCategorization:
    @pytest.mark.parametrize("k", [1, 2, 3, 6, 15])
    def test_chain_matches_reference_probability(self, k, rng):
        block = MajorityChainCategorizationBlock(k)
        p = 0.6
        products = (rng.random((k, 200_00)) < p).astype(np.uint8)
        measured = block.forward_products(products).mean()
        expected = chain_output_probability(p, k)
        assert measured == pytest.approx(float(expected), abs=0.02)

    def test_ranking_preserved_for_separated_scores(self, rng):
        k, n = 100, 1024
        block = MajorityChainCategorizationBlock(k)
        inputs = rng.uniform(-1, 1, k)
        weights = rng.uniform(-1, 1, (5, k))
        weights[3] = np.sign(inputs) * 0.9  # clearly the best-aligned class
        scores = []
        for class_index in range(5):
            products = np.logical_not(
                np.logical_xor(
                    bipolar_streams(inputs, n, rng),
                    bipolar_streams(weights[class_index], n, rng),
                )
            ).astype(np.uint8)
            scores.append(block.forward_products(products).mean())
        assert int(np.argmax(scores)) == 3

    def test_chain_probability_monotone(self):
        p = np.linspace(0, 1, 21)
        q = chain_output_probability(p, 101)
        assert np.all(np.diff(q) >= -1e-12)
        assert q[0] == pytest.approx(0.0)
        assert q[-1] == pytest.approx(1.0)

    def test_chain_probability_fixed_point_at_half(self):
        assert chain_output_probability(0.5, 501) == pytest.approx(0.5, abs=1e-6)

    def test_two_input_chain_is_and(self, rng):
        block = MajorityChainCategorizationBlock(2)
        bits = rng.integers(0, 2, (2, 64)).astype(np.uint8)
        assert np.array_equal(block.forward_products(bits), bits[0] & bits[1])

    def test_shape_validation(self, rng):
        block = MajorityChainCategorizationBlock(10)
        with pytest.raises(ShapeError):
            block.forward_products(rng.integers(0, 2, (5, 64)).astype(np.uint8))

    def test_hardware_linear_growth(self):
        small = MajorityChainCategorizationBlock(100).hardware()
        large = MajorityChainCategorizationBlock(800).hardware()
        assert large.jj_count > 6 * small.jj_count
        assert large.depth_phases > small.depth_phases

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            MajorityChainCategorizationBlock(0)
        with pytest.raises(ConfigurationError):
            chain_output_probability(0.5, 0)


class TestSngBlock:
    def test_generate_decodes_back(self):
        block = SngBlock(20, 8, seed=3)
        values = np.linspace(-0.9, 0.9, 20)
        stream = block.generate(values, 4096)
        assert np.allclose(stream.to_values(), values, atol=0.08)

    def test_matrix_count(self):
        assert SngBlock(100, 10).n_matrices == 3
        assert SngBlock(40, 10).n_matrices == 1

    def test_random_words_shape(self):
        block = SngBlock(50, 10, seed=1)
        words = block.random_words(64)
        assert words.shape == (50, 64)

    def test_hardware_shared_cheaper_than_private(self):
        block = SngBlock(200, 10)
        assert block.hardware().jj_count < block.hardware_unshared().jj_count

    def test_value_shape_checked(self):
        block = SngBlock(10, 8)
        with pytest.raises(ShapeError):
            block.generate(np.zeros(5), 128)

    def test_comparator_netlist_is_buildable(self):
        netlist = SngBlock(4, 4).build_comparator_netlist()
        netlist.validate()
        assert netlist.jj_count() > 0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SngBlock(0)
        with pytest.raises(ConfigurationError):
            SngBlock(10, n_bits=1)


class TestApcBaseline:
    def test_activation_follows_tanh_shape(self, rng):
        m, n = 16, 4096
        block = ApcFeatureExtractionBlock(m)
        values = rng.uniform(-0.5, 0.5, m)
        products = bipolar_streams(values, n, rng)
        decoded = 2.0 * block.forward_products(products).mean() - 1.0
        assert abs(decoded - np.tanh(values.sum())) < 0.35

    def test_saturation(self):
        block = ApcFeatureExtractionBlock(8)
        ones = np.ones((8, 1024), dtype=np.uint8)
        assert 2.0 * block.forward_products(ones).mean() - 1.0 > 0.9

    def test_forward_wrapper(self, rng):
        block = ApcFeatureExtractionBlock(9)
        x = rng.integers(0, 2, (9, 256)).astype(np.uint8)
        w = rng.integers(0, 2, (9, 256)).astype(np.uint8)
        assert block.forward(x, w).bits.shape == (256,)

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            ApcFeatureExtractionBlock(9).forward_products(
                rng.integers(0, 2, (5, 64)).astype(np.uint8)
            )

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ApcFeatureExtractionBlock(0)


class TestBlockHardwareContainer:
    def test_combine_and_replicate(self):
        from repro.blocks.hardware import BlockHardware

        a = BlockHardware("a", 100, 5)
        b = BlockHardware("b", 50, 3)
        combined = a.combine(b)
        assert combined.jj_count == 150
        assert combined.depth_phases == 8
        replicated = a.replicate(4)
        assert replicated.jj_count == 400
        assert replicated.depth_phases == 5
        with pytest.raises(ConfigurationError):
            a.replicate(0)

    def test_cost_conversion(self):
        from repro.aqfp import AqfpTechnology
        from repro.blocks.hardware import BlockHardware

        cost = BlockHardware("a", 1000, 10).cost(AqfpTechnology(), 1024)
        assert cost.energy_pj > 0
        assert cost.latency_ns > 0


class TestPropertyBased:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_feature_extraction_models_agree(self, m, seed):
        rng = np.random.default_rng(seed)
        block = SorterFeatureExtractionBlock(m)
        products = rng.integers(0, 2, (m, 64)).astype(np.uint8)
        assert np.array_equal(
            block.forward_products(products),
            block.forward_products_sorted_vector(products),
        )

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_pooling_models_agree(self, m, seed):
        rng = np.random.default_rng(seed)
        block = SorterAveragePoolingBlock(m)
        bits = rng.integers(0, 2, (m, 64)).astype(np.uint8)
        assert np.array_equal(
            block.forward_bits(bits), block.forward_bits_sorted_vector(bits)
        )

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_chain_probability_in_unit_interval(self, p, k):
        q = float(chain_output_probability(p, k))
        assert 0.0 <= q <= 1.0
