"""Tests for repro.sorting: comparator networks and bitonic constructions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError, ShapeError
from repro.sorting import (
    Comparator,
    ComparatorNetwork,
    bitonic_merger,
    bitonic_sorter,
    merge_sorted_halves,
    sort_bits,
)


class TestComparatorNetwork:
    def test_comparator_validation(self):
        with pytest.raises(NetlistError):
            Comparator(1, 1)
        with pytest.raises(NetlistError):
            Comparator(-1, 0)

    def test_out_of_range_lane_rejected(self):
        net = ComparatorNetwork(4)
        with pytest.raises(NetlistError):
            net.append(Comparator(0, 7))

    def test_apply_checks_width(self):
        net = bitonic_sorter(4)
        with pytest.raises(ShapeError):
            net.apply(np.zeros((3, 2), dtype=np.uint8))

    def test_depth_and_stages_consistent(self):
        net = bitonic_sorter(8)
        assert net.depth() == len(net.stages())
        assert sum(len(s) for s in net.stages()) == net.size

    def test_compose_widths_must_match(self):
        with pytest.raises(NetlistError):
            bitonic_sorter(4).compose(bitonic_sorter(5))

    def test_compose_runs_sequentially(self):
        sorter = bitonic_sorter(6)
        composed = sorter.compose(sorter)
        data = np.random.default_rng(1).integers(0, 2, (6, 50)).astype(np.uint8)
        assert np.array_equal(composed.apply(data), sorter.apply(data))

    def test_gate_count(self):
        net = bitonic_sorter(8)
        counts = net.gate_count()
        assert counts["and"] == counts["or"] == net.size

    def test_zero_one_check_width_limit(self):
        with pytest.raises(NetlistError):
            ComparatorNetwork(32).sorts_all_binary_inputs()


class TestBitonicSorter:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 16])
    def test_sorts_all_binary_inputs(self, width):
        assert bitonic_sorter(width).sorts_all_binary_inputs()

    @pytest.mark.parametrize("width", [3, 5, 9])
    def test_ascending_order(self, width):
        net = bitonic_sorter(width, descending=False)
        rng = np.random.default_rng(width)
        data = rng.integers(0, 2, (width, 64)).astype(np.uint8)
        assert np.array_equal(net.apply(data), np.sort(data, axis=0))

    def test_size_grows_subquadratically(self):
        # Bitonic sorting networks use O(n log^2 n) comparators.
        small = bitonic_sorter(16).size
        large = bitonic_sorter(64).size
        assert large < small * 16

    def test_depth_matches_theory_for_power_of_two(self):
        # depth = log2(n) * (log2(n) + 1) / 2 for power-of-two widths.
        assert bitonic_sorter(16).depth() == 10
        assert bitonic_sorter(8).depth() == 6

    def test_invalid_width(self):
        with pytest.raises(NetlistError):
            bitonic_sorter(0)

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_inputs_sorted(self, width, seed):
        net = bitonic_sorter(width)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, (width, 8)).astype(np.uint8)
        out = net.apply(data)
        expected = np.sort(data, axis=0)[::-1]
        assert np.array_equal(out, expected)


class TestBitonicMerger:
    @pytest.mark.parametrize("half", [1, 2, 3, 4, 5, 8])
    def test_merges_opposite_sorted_halves(self, half):
        merger = bitonic_merger(2 * half)
        for ones_top in range(half + 1):
            for ones_bottom in range(half + 1):
                top = np.array([0] * (half - ones_top) + [1] * ones_top, dtype=np.uint8)
                bottom = np.array([1] * ones_bottom + [0] * (half - ones_bottom), dtype=np.uint8)
                merged = merger.apply(np.concatenate([top, bottom])[:, None])[:, 0]
                assert np.array_equal(merged, np.sort(np.concatenate([top, bottom]))[::-1])

    def test_merger_cheaper_than_sorter(self):
        assert bitonic_merger(32).size < bitonic_sorter(32).size

    def test_invalid_width(self):
        with pytest.raises(NetlistError):
            bitonic_merger(0)


class TestFunctionalHelpers:
    def test_sort_bits_descending(self):
        data = np.array([0, 1, 0, 1, 1], dtype=np.uint8)
        assert np.array_equal(sort_bits(data), np.array([1, 1, 1, 0, 0]))

    def test_sort_bits_matches_network(self, rng):
        data = rng.integers(0, 2, (9, 32)).astype(np.uint8)
        network_result = bitonic_sorter(9).apply(data)
        assert np.array_equal(sort_bits(data, descending=True, axis=0), network_result)

    def test_merge_sorted_halves(self, rng):
        top = sort_bits(rng.integers(0, 2, 6).astype(np.uint8))
        bottom = sort_bits(rng.integers(0, 2, 6).astype(np.uint8))
        merged = merge_sorted_halves(top[:, None], bottom[:, None])
        assert np.array_equal(merged[:, 0], sort_bits(np.concatenate([top, bottom])))
