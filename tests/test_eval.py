"""Tests for the evaluation harness (Tables 1-9, figures, ablations)."""

import numpy as np
import pytest

from repro.eval import (
    categorization_inaccuracy,
    feature_extraction_inaccuracy,
    fig7_rng_distribution,
    fig13_activation_curve,
    format_table,
    pooling_inaccuracy,
    table4_sng,
    table5_feature_extraction,
    table6_pooling,
    table7_categorization,
    table8_configuration,
)
from repro.eval.ablations import (
    ablation_balancing_overhead,
    ablation_feedback_mode,
    ablation_majority_synthesis,
    ablation_rng_sharing,
    ablation_sorter_vs_apc,
)
from repro.eval.block_accuracy import table1_feature_extraction, table2_pooling
from repro.eval.network_report import network_hardware_rollup
from repro.errors import ConfigurationError
from repro.nn.architectures import build_snn
from repro.nn.sc_layers import ScNetworkMapper


class TestBlockAccuracy:
    def test_feature_extraction_error_decreases_with_stream_length(self):
        short = feature_extraction_inaccuracy(9, 128, trials=8, reference="expected")
        long = feature_extraction_inaccuracy(9, 1024, trials=8, reference="expected")
        assert long < short

    def test_feature_extraction_reference_validation(self):
        with pytest.raises(ConfigurationError):
            feature_extraction_inaccuracy(9, 128, reference="bogus")

    def test_pooling_error_small_and_decreasing(self):
        short = pooling_inaccuracy(4, 128, trials=10)
        long = pooling_inaccuracy(4, 1024, trials=10)
        assert long < short
        assert long < 0.05  # Table 2 reports < 0.01 at this point

    def test_categorization_relative_error_bounded(self):
        # With random (untrained, small-margin) weights the chain gives away
        # some margin; the metric must stay a small fraction of the score
        # spread.  Trained networks have far larger margins (see the
        # integration tests), which is what the paper's 0.4 % figure assumes.
        error = categorization_inaccuracy(100, 512, trials=3)
        assert 0.0 <= error < 0.5

    def test_table_sweep_structure(self):
        table = table1_feature_extraction((9,), (128, 256), trials=3)
        assert set(table) == {9}
        assert set(table[9]) == {128, 256}

    def test_table2_values_positive(self):
        table = table2_pooling((4,), (128,), trials=3)
        assert table[4][128] > 0


class TestHardwareTables:
    def test_table4_aqfp_wins_by_orders_of_magnitude(self):
        rows = table4_sng((100,))
        assert rows[0].energy_ratio > 1e3

    def test_table5_ratio_and_scaling(self):
        rows = table5_feature_extraction((9, 121))
        assert all(row.energy_ratio > 1e3 for row in rows)
        assert rows[1].aqfp.energy_pj > rows[0].aqfp.energy_pj
        assert rows[1].cmos.energy_pj > rows[0].cmos.energy_pj

    def test_table6_pooling_ratio(self):
        rows = table6_pooling((4, 36))
        assert all(row.energy_ratio > 1e3 for row in rows)

    def test_table7_categorization_ratio_and_linear_growth(self):
        rows = table7_categorization((100, 800))
        assert all(row.energy_ratio > 1e4 for row in rows)
        growth = rows[1].aqfp.energy_pj / rows[0].aqfp.energy_pj
        assert 4 < growth < 12  # roughly linear in input count (8x inputs)

    def test_aqfp_latency_far_below_cmos_stream_delay(self):
        row = table5_feature_extraction((25,))[0]
        assert row.speedup > 10

    def test_comparison_row_format(self):
        row = table4_sng((100,))[0]
        assert len(row.as_row()) == 7


class TestFiguresAndTables:
    def test_fig7_distribution_balanced(self):
        result = fig7_rng_distribution(50_000)
        assert result["ones"] == pytest.approx(0.5, abs=0.02)
        assert result["zeros"] == pytest.approx(0.5, abs=0.02)

    def test_fig7_bias_shifts_peaks(self):
        result = fig7_rng_distribution(50_000, bias=0.2)
        assert result["ones"] > 0.65

    def test_fig13_curve_tracks_clip(self):
        data = fig13_activation_curve(n_inputs=9, stream_length=2048, n_points=31)
        assert data["block_output"].shape == data["inner_product"].shape
        # Saturated regions must match the ideal clip closely.
        saturated = np.abs(data["inner_product"]) > 2.5
        assert np.allclose(
            data["block_output"][saturated], data["ideal_clip"][saturated], atol=0.2
        )

    def test_table8_contains_both_networks(self):
        rows = table8_configuration()
        networks = {row["network"] for row in rows}
        assert networks == {"SNN", "DNN"}
        layers = [row["layer"] for row in rows if row["network"] == "SNN"]
        assert layers[0] == "Conv3_x" and layers[-1] == "OutLayer"

    def test_format_table_renders_all_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="demo")
        assert "demo" in text
        assert text.count("\n") == 4


class TestNetworkRollup:
    def test_rollup_totals_positive_and_aqfp_wins(self):
        network = build_snn(activation="clip", training_stream_length=None)
        inventories = ScNetworkMapper(network).layer_inventories()
        aqfp, cmos = network_hardware_rollup(inventories, stream_length=256)
        assert aqfp.energy_uj_per_image > 0
        assert cmos.energy_uj_per_image > aqfp.energy_uj_per_image * 1e3
        assert aqfp.throughput_images_per_ms > cmos.throughput_images_per_ms


class TestAblations:
    def test_sorter_vs_apc(self):
        result = ablation_sorter_vs_apc(input_size=9, stream_length=512, trials=5)
        assert result["sorter_mean_abs_error"] < 0.5
        assert result["apc_mean_abs_error"] < 0.6

    def test_feedback_mode_signed_is_more_accurate(self):
        result = ablation_feedback_mode(input_size=49, stream_length=512, trials=6)
        assert result["signed_mean_abs_error"] < result["unsigned_mean_abs_error"]

    def test_rng_sharing_saves_rng_junctions(self):
        result = ablation_rng_sharing(n_outputs=50, cycles=512)
        assert result["rng_shared_jj"] < result["rng_private_jj"]
        assert result["shared_jj"] <= result["private_jj"]

    def test_majority_synthesis_cost_neutral(self):
        result = ablation_majority_synthesis(width=6)
        assert result["gates_rewritten"] > 0
        # The rewrite itself is cost-neutral up to a handful of shared constants.
        assert abs(result["jj_after"] - result["jj_before"]) <= 10
        assert result["depth_after"] <= result["depth_before"]

    def test_balancing_overhead_reported(self):
        result = ablation_balancing_overhead(width=6)
        assert result["phase_aligned"] == 1.0
        assert result["jj_after"] > result["jj_before"]
        assert result["buffers_added"] > 0
