"""Cross-module integration tests.

These tie the layers of the stack together: SNG -> blocks -> decoded values,
gate-level netlists vs vectorised block models, and the end-to-end train ->
quantise -> SC-inference pipeline on a small network.
"""

import numpy as np
import pytest

from repro.aqfp import balance_netlist, estimate_cost, simulate, AqfpTechnology
from repro.blocks import (
    MajorityChainCategorizationBlock,
    SngBlock,
    SorterAveragePoolingBlock,
    SorterFeatureExtractionBlock,
)
from repro.datasets import generate_digit_dataset
from repro.nn import (
    Dense,
    HardwareActivation,
    Network,
    ScInferenceEngine,
    Trainer,
    TrainingConfig,
)
from repro.nn.layers import Flatten, LogitScale
from repro.sorting import bitonic_sorter


class TestSngToBlockPipeline:
    def test_sng_streams_through_feature_extraction(self):
        """Full SC data path: binary weights -> SNG -> XNOR -> sorter block."""
        m, n = 9, 2048
        rng = np.random.default_rng(42)
        inputs = rng.uniform(-1, 1, m)
        weights = rng.uniform(-1, 1, m)
        input_sng = SngBlock(m, 10, seed=1)
        weight_sng = SngBlock(m, 10, seed=2)
        input_stream = input_sng.generate(inputs, n)
        weight_stream = weight_sng.generate(weights, n)
        block = SorterFeatureExtractionBlock(m)
        output = block.forward(input_stream, weight_stream)
        decoded = float(output.to_values())
        target = float(np.clip((inputs * weights).sum(), -1, 1))
        assert abs(decoded - target) < 0.3

    def test_sng_streams_through_pooling(self):
        m, n = 4, 4096
        rng = np.random.default_rng(7)
        values = rng.uniform(-1, 1, m)
        sng = SngBlock(m, 10, seed=3)
        stream = sng.generate(values, n)
        block = SorterAveragePoolingBlock(m)
        decoded = float(block.forward(stream).to_values())
        assert decoded == pytest.approx(values.mean(), abs=0.06)

    def test_categorization_ranks_sng_streams(self):
        k, n = 64, 2048
        rng = np.random.default_rng(11)
        inputs = rng.uniform(-1, 1, k)
        sng = SngBlock(k, 10, seed=5)
        input_stream = sng.generate(inputs, n)
        block = MajorityChainCategorizationBlock(k)
        aligned = np.sign(inputs) * 0.9
        opposed = -aligned
        weight_sng = SngBlock(k, 10, seed=6)
        aligned_score = block.forward(input_stream, weight_sng.generate(aligned, n)).bits.mean()
        opposed_score = block.forward(input_stream, weight_sng.generate(opposed, n)).bits.mean()
        assert aligned_score > opposed_score + 0.2


class TestHardwareVsModel:
    def test_balanced_sorter_netlist_costs_match_stage_model_scale(self):
        """The stage-level estimator must track the explicit balanced netlist."""
        from repro.aqfp.gates import build_sorter_netlist
        from repro.blocks.hardware import sorter_stage_costs

        width = 8
        netlist, _ = balance_netlist(build_sorter_netlist(bitonic_sorter(width)))
        explicit_jj = netlist.jj_count()
        estimated_jj = sorter_stage_costs(bitonic_sorter(width)).jj_count
        assert 0.3 < estimated_jj / explicit_jj < 3.0

    def test_estimated_energy_positive_for_every_block(self):
        technology = AqfpTechnology()
        for block in (
            SorterFeatureExtractionBlock(9),
            SorterAveragePoolingBlock(4),
            MajorityChainCategorizationBlock(100),
        ):
            cost = block.hardware().cost(technology, 1024)
            assert cost.energy_pj > 0
            assert cost.latency_ns > 0

    def test_gate_level_feature_extraction_cycle(self):
        """One full cycle of the block netlist agrees with the numpy model."""
        rng = np.random.default_rng(5)
        m = 3
        block = SorterFeatureExtractionBlock(m)
        netlist = block.build_netlist()
        balanced, _ = balance_netlist(netlist)
        x = rng.integers(0, 2, (m, 8)).astype(np.uint8)
        w = rng.integers(0, 2, (m, 8)).astype(np.uint8)
        feedback = np.zeros((m, 8), dtype=np.uint8)
        feedback[: (m - 1) // 2] = 1
        stimulus = {}
        inputs = balanced.inputs
        for index in range(m):
            stimulus[inputs[index]] = x[index]
            stimulus[inputs[m + index]] = w[index]
            stimulus[inputs[2 * m + index]] = feedback[index]
        outputs = simulate(balanced, stimulus)
        output_bit = list(outputs.values())[0]
        products = np.logical_not(np.logical_xor(x, w)).astype(np.uint8)
        merged = np.sort(np.concatenate([products, feedback]), axis=0)[::-1]
        assert np.array_equal(output_bit, merged[m - 1])
        assert estimate_cost(balanced, AqfpTechnology()).energy_pj > 0


class TestEndToEndTraining:
    def test_small_dense_network_survives_sc_mapping(self, tiny_dataset):
        """Train a small dense model and check the SC fast model stays close."""
        x_train = tiny_dataset.train_images.reshape(len(tiny_dataset.train_labels), -1) * 2 - 1
        x_test = tiny_dataset.test_images.reshape(len(tiny_dataset.test_labels), -1) * 2 - 1

        network = Network(
            [
                Flatten(),
                Dense(784, 64, rng=np.random.default_rng(0)),
                HardwareActivation(785, stream_length=1024),
                Dense(64, 10, rng=np.random.default_rng(1)),
                LogitScale(64 / 32.0),
            ],
            name="tiny",
        )
        trainer = Trainer(network, TrainingConfig(epochs=6, batch_size=32, seed=0))
        history = trainer.fit(
            x_train.reshape(-1, 1, 28, 28), tiny_dataset.train_labels
        )
        assert history.train_accuracies[-1] > 0.8

        float_acc = network.accuracy(
            x_test.reshape(-1, 1, 28, 28), tiny_dataset.test_labels
        )
        assert float_acc > 0.7

        engine = ScInferenceEngine(network, stream_length=1024, seed=3)
        sc_result = engine.evaluate_sc_fast(
            tiny_dataset.test_images[:, None], tiny_dataset.test_labels
        )
        assert sc_result.accuracy > float_acc - 0.3

    def test_cnn_bit_exact_single_image(self, tiny_dataset):
        """A tiny CNN classifies one image identically in fast and bit-exact modes."""
        from repro.nn.architectures import LayerSpec, build_network

        specs = [
            LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=4),
            LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
            LayerSpec(kind="fc", name="FC32", units=32),
            LayerSpec(kind="output", name="OutLayer", units=10),
        ]
        network = build_network(specs, activation="hardware", seed=5,
                                training_stream_length=512)
        x_train = tiny_dataset.train_images[:, None] * 2 - 1
        trainer = Trainer(network, TrainingConfig(epochs=3, batch_size=32, seed=2))
        trainer.fit(x_train, tiny_dataset.train_labels)

        engine = ScInferenceEngine(network, stream_length=512, seed=7)
        test_images = tiny_dataset.test_images[:, None]
        float_result = engine.evaluate_float(test_images, tiny_dataset.test_labels)
        fast_result = engine.evaluate_sc_fast(test_images, tiny_dataset.test_labels)
        assert float_result.accuracy > 0.6
        # The tiny network is trained for only a few epochs, so the SC noise
        # costs accuracy, but it must stay far above the 10 % chance level.
        assert fast_result.accuracy > 0.3

        bit_exact = engine.evaluate_sc_bit_exact(
            test_images, tiny_dataset.test_labels, max_images=1, position_chunk=49
        )
        assert bit_exact.n_images == 1
        assert bit_exact.mode == "sc-bit-exact"


class TestBatchedBitExact:
    """Whole-network batched bit-exact inference (word-packed engine PR)."""

    @staticmethod
    def _tiny_cnn(stream_length=128):
        from repro.nn.architectures import LayerSpec, build_network

        specs = [
            LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=4),
            LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
            LayerSpec(kind="fc", name="FC32", units=32),
            LayerSpec(kind="output", name="OutLayer", units=10),
        ]
        return build_network(
            specs, activation="hardware", seed=5,
            training_stream_length=stream_length,
        )

    def test_batched_path_matches_legacy_per_image(self, tiny_dataset):
        """Batched scores must be bit-identical to the legacy per-image path."""
        engine = ScInferenceEngine(self._tiny_cnn(), stream_length=128, seed=7)
        images = tiny_dataset.test_images[:3, None]
        legacy = np.stack(
            [engine.mapper.bit_exact_forward_legacy(img) for img in images]
        )
        batched = engine.mapper.bit_exact_forward_batch(images)
        assert np.array_equal(batched, legacy)
        # Position chunking is a memory knob only: it must not change bits.
        chunked = engine.mapper.bit_exact_forward_batch(images, position_chunk=17)
        assert np.array_equal(chunked, batched)

    def test_thirty_two_images_bit_exact(self, tiny_dataset):
        """Bit-exact inference over 32 synthetic-MNIST images in one call.

        The seed implementation restricted bit-exact validation to "a
        handful" of images; the batched engine makes 32 routine.
        """
        engine = ScInferenceEngine(self._tiny_cnn(), stream_length=128, seed=7)
        images = tiny_dataset.test_images[:32, None]
        labels = tiny_dataset.test_labels[:32]
        result = engine.evaluate_sc_bit_exact(images, labels, max_images=32)
        assert result.n_images == 32
        assert result.mode == "sc-bit-exact"
        # The reported accuracy must be exactly the argmax accuracy of the
        # batched engine's scores (same seed => same streams => same bits).
        scores = engine.mapper.bit_exact_forward_batch(images)
        assert scores.shape == (32, 10)
        expected = float((np.argmax(scores, axis=1) == labels).mean())
        assert result.accuracy == expected
