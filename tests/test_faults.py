"""Fault tolerance: injection harness, supervision, admission, chaos.

Exercises the robustness layer of :mod:`repro.serve` end to end with the
deterministic fault injectors of :mod:`repro.serve.faults`:

* **worker isolation** -- a poisoned batch fails *its* futures with a
  typed :class:`~repro.errors.InferenceError` and never kills the worker
  thread (the regression for the old blanket ``except`` in the worker
  loop);
* **replica supervision** -- a crashing replica is closed, rebuilt with
  exponential backoff inside a restart budget, and the batch retried;
  the retried answer is bit-identical to a fault-free run;
* **bounded admission** -- ``max_queue_depth`` sheds with
  :class:`~repro.errors.ServiceOverloadError` instead of queueing
  without bound, and unmeetable deadlines are shed at submit;
* **progressive degradation** -- overload answers from a truncated
  checkpoint schedule, flagged on the response and never cached;
* **pool breakage** -- a :class:`~repro.backends.parallel.ParallelBackend`
  whose worker processes die serves bit-identically through its circuit
  breaker and rebuilds the pool after the cooldown;
* **chaos** -- a 500-request run under injected crash + straggler +
  pool break: every submitted future resolves (result or typed error),
  non-degraded scores are bit-identical to a fault-free evaluation, and
  the metrics account for every injected event.
"""

import time
from concurrent.futures import TimeoutError as FuturesTimeoutError

import numpy as np
import pytest

from repro.backends import create_backend
from repro.config import PredictOptions, ServiceConfig
from repro.errors import (
    ConfigurationError,
    InferenceError,
    ServiceOverloadError,
)
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.sc_layers import ScNetworkMapper
from repro.serve import (
    FaultPlan,
    InjectedCrashError,
    PoisonedBatch,
    PoolBreak,
    ReplicaCrash,
    ScInferenceService,
    SlowReplica,
)


def _tiny_cnn():
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs, activation="hardware", seed=5, training_stream_length=128
    )


@pytest.fixture(scope="module")
def mapper():
    return ScNetworkMapper(_tiny_cnn(), stream_length=128, seed=7)


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((6, 1, 28, 28))


@pytest.fixture(scope="module")
def reference(mapper, images):
    """Fault-free bit-exact scores: full stream and every checkpoint."""
    backend = create_backend("bit-exact-packed", mapper)
    checkpoints = (16, 32, 64, 128)
    return {
        "full": backend.forward(images),
        "checkpoints": checkpoints,
        "partial": backend.forward_partial(images, checkpoints),
    }


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        backend="bit-exact-packed",
        max_batch_size=8,
        max_wait_ms=1.0,
        num_workers=1,
        cache_capacity=0,
        early_exit=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestFaultPlanUnit:
    def test_rejects_invalid_triggers(self):
        with pytest.raises(ConfigurationError):
            ReplicaCrash()  # neither at_batch nor rate
        with pytest.raises(ConfigurationError):
            ReplicaCrash(at_batch=-1)
        with pytest.raises(ConfigurationError):
            ReplicaCrash(rate=1.5)
        with pytest.raises(ConfigurationError):
            ReplicaCrash(at_batch=0, times=0)
        with pytest.raises(ConfigurationError):
            SlowReplica(at_batch=0, delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(object())

    def test_at_batch_fires_exactly_once(self):
        plan = FaultPlan(ReplicaCrash(at_batch=1))
        plan.before_batch(worker=0)  # attempt 0: no fault
        with pytest.raises(InjectedCrashError):
            plan.before_batch(worker=0)  # attempt 1: fires
        plan.before_batch(worker=0)  # attempt 2: spent
        assert plan.fired == {"replica_crash": 1}

    def test_worker_targeted_fault_uses_worker_counter(self):
        plan = FaultPlan(ReplicaCrash(at_batch=0, worker=1))
        plan.before_batch(worker=0)  # worker 0 never matches
        plan.before_batch(worker=0)
        with pytest.raises(InjectedCrashError):
            plan.before_batch(worker=1)  # worker 1's attempt 0
        assert plan.fired == {"replica_crash": 1}

    def test_rate_faults_are_deterministic_per_seed(self):
        def firing_pattern(seed):
            plan = FaultPlan(
                PoisonedBatch(rate=0.5, times=None), seed=seed
            )
            pattern = []
            for _ in range(32):
                try:
                    plan.before_batch(worker=0)
                    pattern.append(False)
                except InferenceError:
                    pattern.append(True)
            return pattern

        assert firing_pattern(3) == firing_pattern(3)
        assert any(firing_pattern(3))
        assert not all(firing_pattern(3))

    def test_reset_rewinds_counters(self):
        plan = FaultPlan(ReplicaCrash(at_batch=0))
        with pytest.raises(InjectedCrashError):
            plan.before_batch(worker=0)
        plan.before_batch(worker=0)  # spent
        plan.reset()
        with pytest.raises(InjectedCrashError):
            plan.before_batch(worker=0)  # fires again after reset
        assert plan.fired == {"replica_crash": 1}

    def test_pool_break_ignores_non_parallel_replicas(self, mapper):
        plan = FaultPlan(PoolBreak(at_batch=0))
        replica = create_backend("bit-exact-packed", mapper)
        plan.before_batch(worker=0, replica=replica)  # no break_pool: no-op
        assert plan.fired == {"pool_break": 1}

    def test_fault_plan_validated_by_service_config(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(fault_plan=object())
        ServiceConfig(fault_plan=FaultPlan(ReplicaCrash(at_batch=0)))


class TestWorkerIsolation:
    """The regression for the worker loop's old blanket ``except``."""

    def test_poisoned_batch_fails_futures_not_the_worker(
        self, mapper, images, reference
    ):
        plan = FaultPlan(PoisonedBatch(at_batch=0))
        config = _config(fault_plan=plan, max_batch_retries=0)
        with ScInferenceService(mapper, config) as service:
            poisoned = service.submit(images[:2])
            with pytest.raises(InferenceError):
                poisoned.result(timeout=30)
            # The worker thread survived and serves the next request
            # bit-identically to a fault-free evaluation.
            response = service.infer(images, timeout=30)
            np.testing.assert_array_equal(response.scores, reference["full"])
            snapshot = service.metrics.snapshot()
        assert snapshot["faults"]["failed_requests"] == 1
        assert snapshot["faults"]["restarts"] == 0  # poison never restarts
        assert plan.fired == {"poisoned_batch": 1}

    def test_poison_is_request_scoped_never_retried(self, mapper, images):
        plan = FaultPlan(PoisonedBatch(at_batch=0))
        config = _config(fault_plan=plan, max_batch_retries=3)
        with ScInferenceService(mapper, config) as service:
            with pytest.raises(InferenceError):
                service.infer(images[:1], timeout=30)
            snapshot = service.metrics.snapshot()
        assert snapshot["faults"]["retries"] == 0


class TestReplicaSupervision:
    def test_crash_on_first_batch_restarts_and_retry_succeeds(
        self, mapper, images, reference
    ):
        plan = FaultPlan(ReplicaCrash(at_batch=0))
        config = _config(fault_plan=plan, restart_backoff_ms=1.0)
        with ScInferenceService(mapper, config) as service:
            response = service.infer(images, timeout=30)
            np.testing.assert_array_equal(response.scores, reference["full"])
            snapshot = service.metrics.snapshot()
        assert snapshot["faults"]["restarts"] == 1
        assert snapshot["faults"]["retries"] == 1
        assert snapshot["faults"]["failed_requests"] == 0
        assert plan.fired == {"replica_crash": 1}

    def test_restart_budget_exhaustion_fails_typed(self, mapper, images):
        plan = FaultPlan(ReplicaCrash(rate=1.0, times=None))
        config = _config(
            fault_plan=plan,
            max_replica_restarts=2,
            max_batch_retries=5,
            restart_backoff_ms=1.0,
        )
        with ScInferenceService(mapper, config) as service:
            future = service.submit(images[:1])
            with pytest.raises(InferenceError) as excinfo:
                future.result(timeout=30)
            snapshot = service.metrics.snapshot()
        # The typed error chains the underlying crash for debuggability.
        assert isinstance(excinfo.value.__cause__, InjectedCrashError)
        assert snapshot["faults"]["restarts"] == 2
        assert snapshot["faults"]["failed_requests"] == 1


class TestBoundedAdmission:
    def test_queue_full_rejects_fast_with_typed_error(self, mapper, images):
        # One worker stalled by a straggler fault; depth-2 admission.
        plan = FaultPlan(SlowReplica(rate=1.0, times=None, delay_s=0.2))
        config = _config(fault_plan=plan, max_queue_depth=2)
        with ScInferenceService(mapper, config) as service:
            futures = []
            shed = 0
            for _ in range(6):
                try:
                    futures.append(service.submit(images[:1]))
                except ServiceOverloadError as exc:
                    assert exc.reason == "queue_full"
                    shed += 1
            assert shed == 4  # depth 2: exactly two admitted
            for future in futures:
                future.result(timeout=30)  # admitted requests all answer
            snapshot = service.metrics.snapshot()
        assert snapshot["faults"]["shed"]["queue_full"] == 4
        assert snapshot["requests"] == 2

    def test_cache_hits_bypass_admission(self, mapper, images):
        config = _config(cache_capacity=64, max_queue_depth=1)
        with ScInferenceService(mapper, config) as service:
            service.infer(images[:1], timeout=30)  # populate the cache
            # A full-hit request never occupies an admission slot.
            for _ in range(8):
                response = service.infer(images[:1], timeout=30)
                assert response.cached.all()

    def test_unmeetable_deadline_shed_at_submit(self, mapper, images):
        config = _config(shed_unmeetable_deadlines=True)
        with ScInferenceService(mapper, config) as service:
            # Prime the streaming-rate estimate; nothing shed before it.
            service.infer(images, timeout=30)
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(images[:1], PredictOptions(deadline_ms=1e-6))
            snapshot = service.metrics.snapshot()
        assert excinfo.value.reason == "deadline"
        assert snapshot["faults"]["shed"]["deadline"] == 1

    def test_deadline_shedding_off_by_default(self, mapper, images):
        # Back-compat: without the opt-in, an expired deadline answers
        # from the first checkpoint instead of being rejected.
        with ScInferenceService(mapper, _config()) as service:
            service.infer(images, timeout=30)
            response = service.infer(
                images[:1], PredictOptions(deadline_ms=1e-6), timeout=30
            )
        assert response.exit_checkpoints[0] < mapper.stream_length


class TestProgressiveDegradation:
    def test_cap_checkpoints(self):
        from repro.serve.progressive import cap_checkpoints

        assert cap_checkpoints((16, 32, 64, 128), 64) == (16, 32, 64)
        assert cap_checkpoints((16, 32, 64, 128), 128) == (16, 32, 64, 128)
        # Every point above the cap: the first survives so the schedule
        # never goes empty (an early answer is the point of degrading).
        assert cap_checkpoints((16, 32, 64, 128), 8) == (16,)

    def test_overload_truncates_schedule_and_skips_cache(
        self, mapper, images, reference
    ):
        # degrade_queue_depth=1: degraded whenever anything is in flight.
        config = _config(
            cache_capacity=64,
            degrade_queue_depth=1,
            degraded_max_fraction=0.5,
        )
        with ScInferenceService(mapper, config) as service:
            response = service.infer(images, timeout=30)
            assert response.degraded
            assert (response.exit_checkpoints <= 64).all()
            # Degraded answers are exact prefix evaluations...
            point = int(response.exit_checkpoints[0])
            plane = reference["partial"][
                reference["checkpoints"].index(point)
            ]
            np.testing.assert_array_equal(response.scores, plane)
            # ...but must never enter the full-precision cache.
            assert service.cache.stats()["size"] == 0
            snapshot = service.metrics.snapshot()
        assert snapshot["faults"]["degraded_requests"] == 1

    def test_no_degradation_when_not_overloaded(self, mapper, images):
        config = _config(degrade_queue_depth=50, cache_capacity=64)
        with ScInferenceService(mapper, config) as service:
            response = service.infer(images, timeout=30)
            assert not response.degraded
            assert service.cache.stats()["size"] == images.shape[0]


class TestCancelOnTimeout:
    def test_infer_timeout_cancels_and_releases_slot(self, mapper, images):
        # First dispatch stalls in the worker; the second request times
        # out while still queued and must be dropped before dispatch.
        plan = FaultPlan(SlowReplica(at_batch=0, delay_s=0.5))
        config = _config(fault_plan=plan, max_queue_depth=2)
        with ScInferenceService(mapper, config) as service:
            stalled = service.submit(images[:1])
            time.sleep(0.1)  # let the stalled batch reach the worker
            with pytest.raises(FuturesTimeoutError):
                service.infer(images[1:2], timeout=0.05)
            # The abandoned request released its admission slot: with
            # depth 2 and one request still stalled, a new submit fits.
            follow_up = service.submit(images[2:3])
            stalled.result(timeout=30)
            follow_up.result(timeout=30)
            snapshot = service.metrics.snapshot()
        assert snapshot["faults"]["cancelled_requests"] == 1
        # The cancelled request was never computed nor counted served.
        assert snapshot["requests"] == 2

    def test_cancel_on_resolved_future_returns_false(self, mapper, images):
        with ScInferenceService(mapper, _config()) as service:
            future = service.submit(images[:1])
            future.result(timeout=30)
            assert not service.cancel(future)
            snapshot = service.metrics.snapshot()
        assert snapshot["faults"]["cancelled_requests"] == 0


class TestParallelBackendRobustness:
    def test_double_close_and_use_after_close(self, mapper, images):
        backend = create_backend("bit-exact-packed-mp", mapper, workers=2)
        backend.forward(images)
        backend.close()
        backend.close()  # idempotent
        assert backend._executor is None
        with pytest.raises(ConfigurationError):
            backend.forward(images)
        with pytest.raises(ConfigurationError):
            backend.forward_partial(images, (64, 128))
        assert not backend.break_pool()  # nothing to break once closed

    def test_pool_break_falls_back_bit_identically(
        self, mapper, images, reference
    ):
        backend = create_backend(
            "bit-exact-packed-mp", mapper, workers=2, breaker_cooldown_s=30.0
        )
        try:
            assert backend.break_pool()
            out = backend.forward(images)
            np.testing.assert_array_equal(out, reference["full"])
            assert backend.pool_breaks == 1
            assert backend.breaker_open
            # While open, calls short-circuit to the inner replica (no
            # pool is rebuilt) and stay bit-identical.
            partial = backend.forward_partial(
                images, reference["checkpoints"]
            )
            np.testing.assert_array_equal(partial, reference["partial"])
            assert backend._executor is None
        finally:
            backend.close()

    def test_breaker_closes_after_cooldown_and_pool_rebuilds(
        self, mapper, images, reference
    ):
        backend = create_backend(
            "bit-exact-packed-mp", mapper, workers=2, breaker_cooldown_s=0.05
        )
        try:
            backend.break_pool()
            np.testing.assert_array_equal(
                backend.forward(images), reference["full"]
            )
            time.sleep(0.1)
            assert not backend.breaker_open
            # Sharded path again, through a fresh pool, still bit-exact.
            np.testing.assert_array_equal(
                backend.forward(images), reference["full"]
            )
            assert backend._executor is not None
        finally:
            backend.close()


class TestChaos:
    def test_500_requests_under_injected_faults(
        self, mapper, images, reference
    ):
        n_requests = 500
        # The crash targets worker 0 so the restart never replaces
        # worker 1's parallel replica (whose breaker absorbed the
        # injected pool break -- the evidence the test asserts on).
        plan = FaultPlan(
            ReplicaCrash(worker=0, at_batch=3),
            SlowReplica(at_batch=10, delay_s=0.05),
            PoolBreak(worker=1, at_batch=0),
            seed=0,
        )
        config = ServiceConfig(
            backend="bit-exact-packed-mp",
            max_batch_size=8,
            max_wait_ms=1.0,
            num_workers=2,
            cache_capacity=0,
            early_exit=False,
            fault_plan=plan,
            max_queue_depth=64,
            degrade_queue_depth=32,
            degraded_max_fraction=0.5,
            restart_backoff_ms=1.0,
        )
        answered, failed, shed = [], 0, 0
        # workers=2 forces the process-sharded path even on a single-CPU
        # host (the default sizes the pool to the CPU count, under which
        # small batches would always take the in-process path and the
        # injected pool break would have nothing to hit).
        with ScInferenceService(mapper, config, workers=2) as service:
            futures = []
            for i in range(n_requests):
                try:
                    futures.append((i, service.submit(images[i % 6])))
                except ServiceOverloadError:
                    shed += 1
                if i % 16 == 15:
                    # Pace the burst just enough that the queue drains
                    # between spikes: both admission (sheds) and the
                    # degradation controller get exercised.
                    time.sleep(0.001)
            for i, future in futures:
                try:
                    answered.append((i, future.result(timeout=120)))
                except InferenceError:
                    failed += 1
            snapshot = service.metrics.snapshot()
            # Drive the sabotaged replica once more, directly: whether or
            # not its breaker tripped during the burst, the broken pool
            # must be absorbed and the fallback stay bit-identical.
            mp_replica = service._replicas[1]
            np.testing.assert_array_equal(
                mp_replica.forward(images), reference["full"]
            )
            pool_breaks = mp_replica.pool_breaks
        # Every submitted future resolved: a result or a typed error.
        assert len(answered) + failed + shed == n_requests
        assert len(answered) > 0
        # Non-degraded answers are bit-identical to the fault-free run;
        # degraded answers are exact prefixes at their (earlier) exit.
        checkpoints = reference["checkpoints"]
        for i, response in answered:
            expected = reference["full"][i % 6]
            if response.degraded:
                point = int(response.exit_checkpoints[0])
                expected = reference["partial"][
                    checkpoints.index(point), i % 6
                ]
            np.testing.assert_array_equal(response.scores[0], expected)
        # The metrics account for everything the plan injected.
        counters = snapshot["faults"]
        assert plan.fired.get("replica_crash") == 1
        assert counters["restarts"] >= 1
        assert counters["retries"] >= 1
        assert plan.fired.get("pool_break") == 1
        assert pool_breaks >= 1  # breaker absorbed the injected break
        assert shed > 0 and counters["shed"]["queue_full"] == shed
        assert counters["degraded_requests"] > 0
        assert counters["degraded_requests"] == sum(
            1 for _, r in answered if r.degraded
        )
        assert snapshot["requests"] == len(answered)
