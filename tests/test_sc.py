"""Tests for repro.sc: encoding, bit streams, SNG, ops, APC, FSM, correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EncodingError, ShapeError
from repro.rng import AqfpTrueRng, Lfsr
from repro.sc import (
    Bitstream,
    BtanhFsm,
    StochasticNumberGenerator,
    and_multiply,
    approximate_parallel_counter,
    bipolar_decode,
    bipolar_encode_probability,
    exact_parallel_count,
    mux_add,
    mux_scaled_add,
    or_gate,
    stochastic_cross_correlation,
    unipolar_encode_probability,
    xnor_multiply,
)
from repro.sc.apc import apc_inner_product
from repro.sc.correlation import multiplication_error
from repro.sc.fsm import btanh_state_count
from repro.sc.sng import quantize_to_levels


class TestEncoding:
    def test_bipolar_roundtrip(self):
        values = np.linspace(-1, 1, 11)
        assert np.allclose(bipolar_decode(bipolar_encode_probability(values)), values)

    def test_bipolar_range_check(self):
        with pytest.raises(EncodingError):
            bipolar_encode_probability(1.5)

    def test_unipolar_range_check(self):
        with pytest.raises(EncodingError):
            unipolar_encode_probability(-0.2)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_bipolar_probability_in_unit_interval(self, value):
        p = bipolar_encode_probability(value)
        assert 0.0 <= float(p) <= 1.0


class TestBitstream:
    def test_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            Bitstream(np.array([0, 2, 1]))

    def test_rejects_scalar(self):
        with pytest.raises(ShapeError):
            Bitstream(np.array(1))

    def test_from_values_decodes_back(self, rng):
        values = np.array([-0.8, -0.2, 0.0, 0.4, 0.9])
        stream = Bitstream.from_values(values, 8192, rng)
        assert np.allclose(stream.to_values(), values, atol=0.05)

    def test_unipolar_decoding(self, rng):
        stream = Bitstream.from_values(np.array([0.25, 0.75]), 8192, rng, "unipolar")
        assert np.allclose(stream.to_values(), [0.25, 0.75], atol=0.05)

    def test_constant_zero_value_stream(self):
        stream = Bitstream.constant_zero_value(100)
        assert stream.to_values() == pytest.approx(0.0)
        assert stream.length == 100

    def test_probability_bounds_checked(self, rng):
        with pytest.raises(EncodingError):
            Bitstream.from_probabilities(np.array([1.2]), 16, rng)

    def test_stack_requires_matching_length(self, rng):
        a = Bitstream.from_values(0.0, 16, rng)
        b = Bitstream.from_values(0.0, 32, rng)
        with pytest.raises(ShapeError):
            a.stack([b])

    def test_stack_and_select(self, rng):
        a = Bitstream.from_values(0.5, 64, rng)
        b = Bitstream.from_values(-0.5, 64, rng)
        stacked = a.stack([b])
        assert stacked.value_shape == (2,)
        assert np.array_equal(stacked.select(1).bits, b.bits)

    def test_reshape_values(self, rng):
        stream = Bitstream.from_values(np.zeros(6), 8, rng)
        assert stream.reshape_values((2, 3)).bits.shape == (2, 3, 8)

    def test_absolute_error(self, rng):
        stream = Bitstream.from_values(np.array([0.5]), 4096, rng)
        assert stream.absolute_error(np.array([0.5]))[0] < 0.05


class TestSng:
    def test_generate_matches_values(self):
        sng = StochasticNumberGenerator(AqfpTrueRng(10, seed=1))
        values = np.array([-0.75, -0.25, 0.0, 0.5, 0.95])
        stream = sng.generate(values, 8192)
        assert np.allclose(stream.to_values(), values, atol=0.05)

    def test_lfsr_source_also_works(self):
        sng = StochasticNumberGenerator(Lfsr(10, seed=3))
        stream = sng.generate(np.array([0.5]), 1023)
        assert stream.to_values()[0] == pytest.approx(0.5, abs=0.05)

    def test_expected_value_is_quantized(self):
        sng = StochasticNumberGenerator(AqfpTrueRng(4, seed=1))
        expected = sng.expected_value(np.array([0.3]))
        # 4-bit quantisation cannot represent 0.3 exactly but must be close.
        assert expected[0] == pytest.approx(0.3, abs=2 / 16)

    def test_threshold_quantization_monotone(self):
        levels = quantize_to_levels(np.linspace(-1, 1, 21), 8, "bipolar")
        assert np.all(np.diff(levels) >= 0)

    def test_invalid_length(self):
        sng = StochasticNumberGenerator(AqfpTrueRng(8, seed=1))
        with pytest.raises(ShapeError):
            sng.generate(np.array([0.0]), 0)

    def test_shared_words_shape_check(self):
        sng = StochasticNumberGenerator(AqfpTrueRng(8, seed=1))
        with pytest.raises(ShapeError):
            sng.generate_from_shared_words(np.zeros(3), np.zeros((2, 16)))

    def test_generate_from_shared_words(self):
        sng = StochasticNumberGenerator(AqfpTrueRng(8, seed=2))
        words = AqfpTrueRng(8, seed=9).words((3, 4096))
        stream = sng.generate_from_shared_words(np.array([-0.5, 0.0, 0.5]), words)
        assert np.allclose(stream.to_values(), [-0.5, 0.0, 0.5], atol=0.06)


class TestOps:
    def test_xnor_is_bipolar_multiplication(self, rng):
        a_val, b_val = 0.6, -0.4
        a = Bitstream.from_values(a_val, 16384, rng)
        b = Bitstream.from_values(b_val, 16384, rng)
        product = xnor_multiply(a, b)
        assert product.to_values() == pytest.approx(a_val * b_val, abs=0.05)

    def test_and_is_unipolar_multiplication(self, rng):
        a = Bitstream.from_values(0.7, 16384, rng, "unipolar")
        b = Bitstream.from_values(0.5, 16384, rng, "unipolar")
        assert and_multiply(a, b).to_values() == pytest.approx(0.35, abs=0.05)

    def test_or_gate_is_elementwise_max(self):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert np.array_equal(or_gate(a, b), np.array([0, 1, 1, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            xnor_multiply(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8))

    def test_mux_add_computes_mean(self, rng):
        values = np.array([0.8, -0.8, 0.4, -0.4])
        streams = Bitstream.from_values(values, 16384, rng)
        result = mux_scaled_add(streams, rng)
        assert result.to_values() == pytest.approx(values.mean(), abs=0.05)

    def test_mux_add_select_validation(self, rng):
        streams = Bitstream.from_values(np.zeros(2), 16, rng)
        with pytest.raises(ShapeError):
            mux_add(streams, np.full(16, 5))

    def test_mux_add_requires_input_axis(self, rng):
        with pytest.raises(ShapeError):
            mux_scaled_add(np.zeros(8, dtype=np.uint8), rng)


class TestApc:
    def test_exact_count(self):
        bits = np.array([[1, 0], [1, 1], [0, 1]], dtype=np.uint8)
        assert np.array_equal(exact_parallel_count(bits), np.array([2, 2]))

    def test_approximate_close_to_exact(self, rng):
        bits = (rng.random((32, 2048)) < 0.5).astype(np.uint8)
        exact = exact_parallel_count(bits)
        approx = approximate_parallel_counter(bits)
        # The OR approximation can only under-count, by less than M/8 a cycle.
        assert np.all(approx <= exact)
        assert (exact - approx).mean() < 32 / 8

    def test_single_input_passthrough(self):
        bits = np.array([[1, 0, 1]], dtype=np.uint8)
        assert np.array_equal(approximate_parallel_counter(bits), bits[0])

    def test_inner_product_estimate(self, rng):
        values = rng.uniform(-1, 1, 16)
        p = (values + 1) / 2
        bits = (rng.random((16, 8192)) < p[:, None]).astype(np.uint8)
        estimate = apc_inner_product(bits)
        assert estimate == pytest.approx(values.sum(), abs=0.8)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            exact_parallel_count(np.zeros(4, dtype=np.uint8))


class TestBtanhFsm:
    def test_state_count_heuristic(self):
        assert btanh_state_count(16) % 2 == 0
        assert btanh_state_count(1) >= 4
        with pytest.raises(ConfigurationError):
            btanh_state_count(0)

    def test_invalid_state_count(self):
        with pytest.raises(ConfigurationError):
            BtanhFsm(5)

    def test_transfer_curve_is_monotone_and_odd(self, rng):
        fsm = BtanhFsm(16)
        values = np.linspace(-0.9, 0.9, 7)
        curve = fsm.transfer_curve(values, 8192, rng)
        assert np.all(np.diff(curve) > -0.05)
        assert curve[0] < -0.5 and curve[-1] > 0.5

    def test_saturates_for_constant_input(self):
        fsm = BtanhFsm(8)
        out = fsm.transform(np.ones((1, 256), dtype=np.uint8))
        assert out[:, 32:].mean() == pytest.approx(1.0)


class TestCorrelation:
    def test_independent_streams_have_low_scc(self, rng):
        a = (rng.random(16384) < 0.5).astype(np.uint8)
        b = (rng.random(16384) < 0.5).astype(np.uint8)
        assert abs(stochastic_cross_correlation(a, b)) < 0.05

    def test_identical_streams_have_scc_one(self, rng):
        a = (rng.random(4096) < 0.5).astype(np.uint8)
        assert stochastic_cross_correlation(a, a) == pytest.approx(1.0, abs=0.05)

    def test_complementary_streams_have_negative_scc(self, rng):
        a = (rng.random(4096) < 0.5).astype(np.uint8)
        assert stochastic_cross_correlation(a, 1 - a) == pytest.approx(-1.0, abs=0.05)

    def test_correlated_operands_increase_multiplication_error(self, rng):
        a = (rng.random(8192) < 0.75).astype(np.uint8)
        independent = (rng.random(8192) < 0.75).astype(np.uint8)
        assert multiplication_error(a, a) > multiplication_error(a, independent) + 0.1

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            stochastic_cross_correlation(np.zeros(4), np.zeros(5))


class TestGeneratePacked:
    """Word-direct SNG: comparator straight to packed words, bit-identical."""

    @pytest.mark.parametrize("length", [100, 1000, 64, 1024])
    @pytest.mark.parametrize("cycle_chunk", [64, 256, 8192])
    def test_bit_identical_to_generate(self, length, cycle_chunk):
        values = np.linspace(-1.0, 1.0, 9).reshape(3, 3)
        reference = StochasticNumberGenerator(Lfsr(10, seed=17))
        direct = StochasticNumberGenerator(Lfsr(10, seed=17))
        expected = reference.generate(values, length).packed()
        got = direct.generate_packed(values, length, cycle_chunk=cycle_chunk)
        assert got.length == length
        assert got.encoding == expected.encoding
        assert np.array_equal(got.words, expected.words)
        # Both consumed the same number of source words.
        assert direct.source.state == reference.source.state

    def test_unipolar_and_scalar_values(self):
        reference = StochasticNumberGenerator(Lfsr(8, seed=3), "unipolar")
        direct = StochasticNumberGenerator(Lfsr(8, seed=3), "unipolar")
        expected = reference.generate(0.3, 130).packed()
        got = direct.generate_packed(0.3, 130, cycle_chunk=64)
        assert np.array_equal(got.words, expected.words)

    def test_trng_source(self):
        reference = StochasticNumberGenerator(AqfpTrueRng(8, seed=11))
        direct = StochasticNumberGenerator(AqfpTrueRng(8, seed=11))
        expected = reference.generate(np.linspace(-1, 1, 5), 200).packed()
        got = direct.generate_packed(np.linspace(-1, 1, 5), 200, cycle_chunk=128)
        assert np.array_equal(got.words, expected.words)

    def test_rejects_bad_args(self):
        sng = StochasticNumberGenerator(Lfsr(10, seed=17))
        with pytest.raises(ShapeError):
            sng.generate_packed(0.5, 0)
        with pytest.raises(ShapeError):
            sng.generate_packed(0.5, 128, cycle_chunk=32)
