"""Tests for repro.nn: layers, gradients, quantization, training,
architectures, and the SC mapping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError, TrainingError
from repro.nn import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    Network,
    ScInferenceEngine,
    Trainer,
    TrainingConfig,
    build_dnn,
    build_snn,
    dnn_layer_specs,
    quantize_network,
    quantize_weights,
    snn_layer_specs,
    softmax_cross_entropy,
)
from repro.nn.layers import LogitScale, im2col
from repro.nn.sc_layers import ScNetworkMapper


def numerical_gradient_check(layer, inputs, epsilon=1e-5):
    """Compare analytic input gradients against finite differences."""
    output = layer.forward(inputs, training=True)
    grad_output = np.random.default_rng(0).normal(size=output.shape)
    analytic = layer.backward(grad_output)
    numeric = np.zeros_like(inputs)
    it = np.nditer(inputs, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = inputs[idx]
        inputs[idx] = original + epsilon
        plus = float((layer.forward(inputs, training=True) * grad_output).sum())
        inputs[idx] = original - epsilon
        minus = float((layer.forward(inputs, training=True) * grad_output).sum())
        inputs[idx] = original
        numeric[idx] = (plus - minus) / (2 * epsilon)
        it.iternext()
    return analytic, numeric


class TestIm2col:
    def test_valid_convolution_shape(self):
        images = np.arange(2 * 1 * 5 * 5, dtype=float).reshape(2, 1, 5, 5)
        patches, out_h, out_w = im2col(images, 3)
        assert patches.shape == (2, 9, 9)
        assert (out_h, out_w) == (3, 3)

    def test_padding_keeps_size(self):
        images = np.ones((1, 2, 6, 6))
        patches, out_h, out_w = im2col(images, 3, padding=1)
        assert (out_h, out_w) == (6, 6)
        assert patches.shape == (1, 36, 18)

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            im2col(np.ones((1, 1, 2, 2)), 5)

    def test_requires_4d(self):
        with pytest.raises(ShapeError):
            im2col(np.ones((3, 3)), 2)


class TestConv2D:
    def test_same_padding_output_shape(self):
        conv = Conv2D(1, 4, 3, rng=np.random.default_rng(0))
        out = conv.forward(np.random.default_rng(1).normal(size=(2, 1, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_matches_manual_convolution(self):
        conv = Conv2D(1, 1, 3, padding="valid", rng=np.random.default_rng(2))
        image = np.random.default_rng(3).normal(size=(1, 1, 4, 4))
        out = conv.forward(image)
        kernel = conv.weights.reshape(3, 3)
        expected = sum(
            kernel[i, j] * image[0, 0, i : i + 2, j : j + 2]
            for i in range(3)
            for j in range(3)
        ) + conv.bias[0]
        assert np.allclose(out[0, 0], expected)

    def test_input_gradient_matches_numeric(self):
        conv = Conv2D(2, 3, 3, rng=np.random.default_rng(4))
        inputs = np.random.default_rng(5).normal(size=(2, 2, 5, 5))
        analytic, numeric = numerical_gradient_check(conv, inputs)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_weight_gradient_matches_numeric(self):
        conv = Conv2D(1, 2, 3, rng=np.random.default_rng(6))
        inputs = np.random.default_rng(7).normal(size=(2, 1, 4, 4))
        out = conv.forward(inputs, training=True)
        grad_out = np.random.default_rng(8).normal(size=out.shape)
        conv.backward(grad_out)
        analytic = conv.grad_weights.copy()
        epsilon = 1e-5
        w_index = (1, 4)
        original = conv.weights[w_index]
        conv.weights[w_index] = original + epsilon
        plus = float((conv.forward(inputs) * grad_out).sum())
        conv.weights[w_index] = original - epsilon
        minus = float((conv.forward(inputs) * grad_out).sum())
        conv.weights[w_index] = original
        numeric = (plus - minus) / (2 * epsilon) / inputs.shape[0]
        assert analytic[w_index] == pytest.approx(numeric, abs=1e-4)

    def test_backward_requires_training_forward(self):
        conv = Conv2D(1, 1, 3)
        with pytest.raises(ShapeError):
            conv.backward(np.zeros((1, 1, 4, 4)))

    def test_invalid_padding(self):
        with pytest.raises(ConfigurationError):
            Conv2D(1, 1, 3, padding="reflect")

    def test_clip_parameters(self):
        conv = Conv2D(1, 1, 3)
        conv.weights[...] = 5.0
        conv.clip_parameters()
        assert conv.weights.max() <= 1.0


class TestOtherLayers:
    def test_avgpool_forward(self):
        pool = AvgPool2D(2)
        data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(data)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx(data[0, 0, :2, :2].mean())

    def test_avgpool_gradient(self):
        pool = AvgPool2D(2)
        inputs = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        analytic, numeric = numerical_gradient_check(pool, inputs)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_dense_gradient(self):
        dense = Dense(6, 4, rng=np.random.default_rng(1))
        inputs = np.random.default_rng(2).normal(size=(3, 6))
        analytic, numeric = numerical_gradient_check(dense, inputs)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_dense_shape_check(self):
        with pytest.raises(ShapeError):
            Dense(6, 4).forward(np.zeros((2, 5)))

    def test_flatten_roundtrip(self):
        flatten = Flatten()
        data = np.random.default_rng(3).normal(size=(2, 3, 4, 4))
        out = flatten.forward(data, training=True)
        assert out.shape == (2, 48)
        assert flatten.backward(out).shape == data.shape

    def test_clip_activation_gradient_masks_saturation(self):
        act = ClipActivation()
        inputs = np.array([[-2.0, -0.5, 0.5, 2.0]])
        act.forward(inputs, training=True)
        grad = act.backward(np.ones_like(inputs))
        assert np.array_equal(grad, [[0.0, 1.0, 1.0, 0.0]])

    def test_hardware_activation_monotone(self):
        act = HardwareActivation(9)
        z = np.linspace(-3, 3, 11)[None, :]
        out = act.forward(z)
        assert np.all(np.diff(out[0]) >= -1e-9)

    def test_hardware_activation_noise_only_in_training(self):
        act = HardwareActivation(9, stream_length=64, seed=3)
        z = np.zeros((1, 1000))
        inference = act.forward(z, training=False)
        training = act.forward(z, training=True)
        assert np.allclose(inference, inference[0, 0])
        assert training.std() > 0.01
        assert act.training_noise_std == pytest.approx(np.sqrt(9 / 64))

    def test_logit_scale(self):
        scale = LogitScale(4.0)
        data = np.array([[4.0, -8.0]])
        assert np.array_equal(scale.forward(data), [[1.0, -2.0]])
        assert np.array_equal(scale.backward(np.ones((1, 2))), [[0.25, 0.25]])
        with pytest.raises(ConfigurationError):
            LogitScale(0.0)

    def test_softmax_cross_entropy_gradient(self):
        logits = np.random.default_rng(4).normal(size=(5, 3))
        labels = np.array([0, 1, 2, 1, 0])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss > 0
        assert grad.shape == logits.shape
        # Gradient rows sum to zero (softmax property).
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-9)

    def test_softmax_shape_checks(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=int))


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        weights = np.random.default_rng(0).uniform(-1, 1, 1000)
        quantized = quantize_weights(weights, 8)
        assert np.abs(quantized - weights).max() <= 1.0 / 256 + 1e-9

    def test_clipping_out_of_range(self):
        assert quantize_weights(np.array([5.0]), 8)[0] == pytest.approx(1.0)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            quantize_weights(np.zeros(3), 0)

    def test_quantize_network_in_place(self):
        network = Network([Dense(4, 2, rng=np.random.default_rng(1))])
        network.layers[0].weights[...] = 0.123456789
        quantize_network(network, 4)
        assert network.layers[0].weights[0, 0] != pytest.approx(0.123456789)


class TestArchitectures:
    def test_snn_spec_layers(self):
        names = [spec.name for spec in snn_layer_specs()]
        assert names == ["Conv3_x", "AvgPool", "Conv3_x", "AvgPool", "FC500", "FC800", "OutLayer"]

    def test_dnn_spec_layers(self):
        names = [spec.name for spec in dnn_layer_specs()]
        assert names.count("Conv3_x") == 2
        assert names.count("Conv5_x") == 2
        assert names.count("Conv7_x") == 1

    def test_snn_forward_shape(self):
        network = build_snn(activation="clip", seed=0, training_stream_length=None)
        out = network.forward(np.zeros((2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_dnn_forward_shape(self):
        network = build_dnn(activation="clip", seed=0, training_stream_length=None)
        out = network.forward(np.zeros((1, 1, 28, 28)))
        assert out.shape == (1, 10)

    def test_invalid_activation(self):
        with pytest.raises(ConfigurationError):
            build_snn(activation="relu")


class TestTraining:
    def test_config_validation(self):
        with pytest.raises(TrainingError):
            TrainingConfig(epochs=0)
        with pytest.raises(TrainingError):
            TrainingConfig(optimizer="rmsprop")

    def test_trainer_learns_small_problem(self):
        rng = np.random.default_rng(0)
        # Two linearly separable blobs in 8 dimensions.
        x = np.concatenate([rng.normal(-1, 0.3, (40, 8)), rng.normal(1, 0.3, (40, 8))])
        y = np.array([0] * 40 + [1] * 40)
        network = Network([Dense(8, 2, rng=rng)])
        trainer = Trainer(network, TrainingConfig(epochs=20, batch_size=16, seed=1))
        history = trainer.fit(x, y, x, y)
        assert history.final_test_accuracy > 0.95
        assert history.losses[-1] < history.losses[0]

    def test_weight_clip_applied(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 4))
        y = rng.integers(0, 2, 20)
        network = Network([Dense(4, 2, rng=rng)])
        trainer = Trainer(
            network, TrainingConfig(epochs=2, learning_rate=5.0, optimizer="sgd")
        )
        trainer.fit(x, y)
        assert np.abs(network.parameters()[0]).max() <= 1.0

    def test_mismatched_labels(self):
        network = Network([Dense(4, 2)])
        trainer = Trainer(network)
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((10, 4)), np.zeros(5, dtype=int))

    def test_history_requires_test_set(self):
        from repro.nn.training import TrainingHistory

        with pytest.raises(TrainingError):
            TrainingHistory().final_test_accuracy


class TestScMapping:
    def test_inventories_cover_all_blocks(self):
        network = build_snn(activation="clip", training_stream_length=None)
        mapper = ScNetworkMapper(network)
        inventories = mapper.layer_inventories()
        kinds = {inv.block_kind for inv in inventories}
        assert kinds == {"feature_extraction", "pooling", "categorization"}
        # Last layer is the categorization block with 10 outputs.
        assert inventories[-1].block_kind == "categorization"
        assert inventories[-1].block_count == 10

    def test_fast_forward_shapes_and_agreement_without_noise(self):
        network = build_snn(activation="clip", seed=3, training_stream_length=None)
        mapper = ScNetworkMapper(network, stream_length=1024)
        images = np.random.default_rng(0).random((4, 1, 28, 28))
        scores = mapper.fast_forward(images, inject_noise=False)
        assert scores.shape == (4, 10)

    def test_fast_forward_noise_is_reproducible_with_seed(self):
        network = build_snn(activation="clip", seed=3, training_stream_length=None)
        mapper = ScNetworkMapper(network, stream_length=256, seed=9)
        images = np.random.default_rng(1).random((2, 1, 28, 28))
        a = mapper.fast_forward(images, rng=np.random.default_rng(5))
        b = mapper.fast_forward(images, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_engine_validation(self):
        network = Network([Dense(4, 2)])
        with pytest.raises(ConfigurationError):
            ScInferenceEngine(network, stream_length=0)

    def test_stream_length_validation(self):
        network = Network([Dense(4, 2)])
        with pytest.raises(ConfigurationError):
            ScNetworkMapper(network, stream_length=-1)
