"""Public API: model artifacts, sessions, options, and the CLI.

Pins down the train-once / deploy-forever contracts of :mod:`repro.api`:

* **artifact round-trip is bit-exact** -- ``ScModel.save``/``load``
  reconstructs a mapper whose ``bit-exact-packed`` scores are identical
  to the original, in-process *and* in a freshly spawned interpreter;
* **artifacts are versioned and tamper-evident** -- corrupted manifests,
  mismatched weights and foreign major versions all raise
  :class:`~repro.errors.ConfigurationError`;
* **options validate once, at construction** -- zero/negative deadlines,
  unsorted checkpoints and oversized stream lengths fail in the caller;
* **the Session facade** routes predict/evaluate/serve through the same
  backends with identical scores, and the ``python -m repro`` CLI is a
  thin shell over it (its predict output matches an in-process run bit
  for bit -- also asserted by the CI ``cli-smoke`` job).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import FORMAT_VERSION, PredictOptions, ScModel, Session
from repro.backends import create_backend
from repro.config import ServiceConfig
from repro.errors import ConfigurationError
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.layers import Layer

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _tiny_cnn(seed: int = 5):
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs,
        activation="hardware",
        seed=seed,
        name="tiny-test",
        training_stream_length=128,
    )


@pytest.fixture(scope="module")
def model():
    return ScModel(
        _tiny_cnn(),
        weight_bits=10,
        stream_length=128,
        seed=7,
        metadata={"dataset": {"n_train": 8, "n_test": 4, "seed": 1}},
    )


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((4, 1, 28, 28))


@pytest.fixture()
def artifact(model, tmp_path):
    return model.save(tmp_path / "model")


class TestArtifactRoundTrip:
    def test_save_load_scores_bit_identical(self, model, artifact, images):
        loaded = ScModel.load(artifact)
        original = create_backend("bit-exact-packed", model.mapper())
        restored = create_backend("bit-exact-packed", loaded.mapper())
        assert np.array_equal(
            restored.forward(images), original.forward(images)
        )

    def test_forward_partial_round_trips_too(self, model, artifact, images):
        loaded = ScModel.load(artifact)
        checkpoints = (16, 64, 128)
        original = create_backend("bit-exact-packed", model.mapper())
        restored = create_backend("bit-exact-packed", loaded.mapper())
        assert np.array_equal(
            restored.forward_partial(images, checkpoints),
            original.forward_partial(images, checkpoints),
        )

    def test_metadata_and_configuration_survive(self, model, artifact):
        loaded = ScModel.load(artifact)
        assert loaded.stream_length == model.stream_length
        assert loaded.weight_bits == model.weight_bits
        assert loaded.seed == model.seed
        assert loaded.metadata == model.metadata
        assert loaded.network.name == model.network.name

    def test_fresh_process_scores_bit_identical(
        self, model, artifact, images, tmp_path
    ):
        """The acceptance criterion: load in a separate interpreter."""
        expected = create_backend("bit-exact-packed", model.mapper()).forward(
            images
        )
        images_path = tmp_path / "images.npy"
        scores_path = tmp_path / "scores.npy"
        np.save(images_path, images)
        code = (
            "import sys, numpy as np\n"
            "from repro.api import Session\n"
            "session = Session.from_artifact(sys.argv[1])\n"
            "scores = session.predict(np.load(sys.argv[2])).scores\n"
            "np.save(sys.argv[3], scores)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [
                sys.executable,
                "-c",
                code,
                str(artifact),
                str(images_path),
                str(scores_path),
            ],
            check=True,
            env=env,
            timeout=300,
        )
        assert np.array_equal(np.load(scores_path), expected)


class TestArtifactValidation:
    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no model artifact"):
            ScModel.load(tmp_path / "nowhere")

    def test_corrupted_manifest_raises(self, artifact):
        (artifact / "manifest.json").write_text("{not json!")
        with pytest.raises(ConfigurationError, match="corrupted"):
            ScModel.load(artifact)

    def test_major_version_mismatch_raises(self, artifact):
        manifest = json.loads((artifact / "manifest.json").read_text())
        manifest["format_version"] = [FORMAT_VERSION[0] + 1, 0]
        (artifact / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="format version"):
            ScModel.load(artifact)

    def test_newer_minor_version_loads(self, artifact):
        manifest = json.loads((artifact / "manifest.json").read_text())
        manifest["format_version"] = [FORMAT_VERSION[0], FORMAT_VERSION[1] + 7]
        (artifact / "manifest.json").write_text(json.dumps(manifest))
        assert ScModel.load(artifact).stream_length == 128

    def test_foreign_format_tag_raises(self, artifact):
        manifest = json.loads((artifact / "manifest.json").read_text())
        manifest["format"] = "somebody-elses-model"
        (artifact / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="format"):
            ScModel.load(artifact)

    def test_tampered_weights_raise(self, artifact):
        weights = artifact / "weights.npz"
        payload = bytearray(weights.read_bytes())
        payload[-1] ^= 0xFF
        weights.write_bytes(bytes(payload))
        with pytest.raises(ConfigurationError, match="digest"):
            ScModel.load(artifact)

    def test_unknown_layer_kind_raises(self, artifact):
        manifest = json.loads((artifact / "manifest.json").read_text())
        manifest["network"]["layers"][0]["kind"] = "quantum-foam"
        (artifact / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="quantum-foam"):
            ScModel.load(artifact)

    def test_unserializable_layer_rejected_at_save(self, tmp_path):
        class Mystery(Layer):
            def forward(self, inputs, training=False):
                return inputs

            def backward(self, grad_output):
                return grad_output

        from repro.nn.layers import Network

        model = ScModel(Network([Mystery()]), stream_length=64)
        with pytest.raises(ConfigurationError, match="Mystery"):
            model.save(tmp_path / "bad")


class TestQuantizedArtifact:
    def test_quantized_codes_stored_natively(self, model, artifact):
        assert (artifact / "quantized.npz").is_file()
        manifest = json.loads((artifact / "manifest.json").read_text())
        assert "quantized_sha256" in manifest
        with np.load(artifact / "quantized.npz") as archive:
            assert len(archive.files) == len(model.network.parameters())
            assert all(archive[n].dtype == np.int64 for n in archive.files)

    def test_loaded_mapper_uses_stored_codes_bit_exactly(
        self, model, artifact, images
    ):
        loaded = ScModel.load(artifact)
        assert loaded.quantized_params is not None
        assert len(loaded.quantized_params) == len(model.network.parameters())
        original = create_backend("bit-exact-packed", model.mapper())
        restored = create_backend("bit-exact-packed", loaded.mapper())
        assert np.array_equal(
            restored.forward(images), original.forward(images)
        )

    def test_pre_quantized_artifact_still_loads(self, model, artifact, images):
        # Simulate a 1.0 artifact: no quantized file, no manifest field.
        manifest = json.loads((artifact / "manifest.json").read_text())
        del manifest["quantized_sha256"]
        manifest["format_version"] = [1, 0]
        (artifact / "manifest.json").write_text(json.dumps(manifest))
        (artifact / "quantized.npz").unlink()
        loaded = ScModel.load(artifact)
        assert loaded.quantized_params is None
        original = create_backend("bit-exact-packed", model.mapper())
        restored = create_backend("bit-exact-packed", loaded.mapper())
        assert np.array_equal(
            restored.forward(images), original.forward(images)
        )

    def test_tampered_quantized_codes_raise(self, artifact):
        quantized = artifact / "quantized.npz"
        payload = bytearray(quantized.read_bytes())
        payload[-1] ^= 0xFF
        quantized.write_bytes(bytes(payload))
        with pytest.raises(ConfigurationError, match="quantized digest"):
            ScModel.load(artifact)

    def test_missing_quantized_file_raises(self, artifact):
        (artifact / "quantized.npz").unlink()
        with pytest.raises(ConfigurationError, match="quantized"):
            ScModel.load(artifact)

    def test_codes_round_trip_equals_quantized_weights(self):
        from repro.nn.quantization import (
            dequantize_weights,
            quantization_codes,
            quantize_weights,
        )

        weights = np.random.default_rng(9).uniform(-1.3, 1.3, size=(37, 11))
        for bits in (1, 4, 10, 16):
            np.testing.assert_array_equal(
                dequantize_weights(quantization_codes(weights, bits), bits),
                quantize_weights(weights, bits),
            )


class TestPredictOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_ms": 0.0},
            {"deadline_ms": -5.0},
            {"stream_length": 0},
            {"stream_length": -1},
            {"checkpoints": ()},
            {"checkpoints": (64, 32)},
            {"checkpoints": (32, 32)},
            {"checkpoints": (0, 32)},
            {"workers": 0},
        ],
    )
    def test_invalid_options_raise_at_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            PredictOptions(**kwargs)

    def test_defaults_resolve_to_service_schedule(self):
        resolved = PredictOptions().resolve(1024)
        assert resolved.stream_length == 1024
        assert resolved.checkpoints == (128, 256, 512, 1024)
        assert resolved.early_exit is False
        assert resolved.explicit_schedule is False
        assert resolved.cacheable is True

    def test_stream_length_truncates_schedule(self):
        resolved = PredictOptions(stream_length=256).resolve(1024)
        assert resolved.stream_length == 256
        assert resolved.checkpoints[-1] == 256
        assert resolved.explicit_schedule is True

    def test_oversized_stream_length_rejected_at_resolve(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            PredictOptions(stream_length=2048).resolve(1024)

    def test_checkpoints_get_full_stream_fallback_appended(self):
        resolved = PredictOptions(checkpoints=(32, 64)).resolve(1024)
        assert resolved.checkpoints == (32, 64, 1024)

    def test_checkpoints_overrunning_stream_length_rejected(self):
        with pytest.raises(ConfigurationError, match="overrun"):
            PredictOptions(stream_length=64, checkpoints=(32, 128)).resolve(1024)

    def test_cache_token_distinguishes_schedules(self):
        base = PredictOptions().resolve(1024)
        shorter = PredictOptions(stream_length=512).resolve(1024)
        rescheduled = PredictOptions(checkpoints=(64,)).resolve(1024)
        exiting = PredictOptions(early_exit=True).resolve(1024)
        tokens = {
            base.cache_token,
            shorter.cache_token,
            rescheduled.cache_token,
            exiting.cache_token,
        }
        assert len(tokens) == 4

    def test_deadline_is_not_cacheable_and_not_in_token(self):
        hurried = PredictOptions(deadline_ms=5.0).resolve(1024)
        assert hurried.cacheable is False
        assert hurried.cache_token == PredictOptions().resolve(1024).cache_token


class TestSession:
    def test_predict_matches_backend_forward(self, artifact, images):
        with Session.from_artifact(artifact) as session:
            result = session.predict(images)
            direct = session.backend().forward(images)
            assert np.array_equal(result.scores, direct)
            assert result.backend == "bit-exact-packed"
            assert np.all(result.exit_checkpoints == 128)

    def test_predict_with_reduced_stream_length(self, artifact, images):
        with Session.from_artifact(artifact) as session:
            result = session.predict(images, PredictOptions(stream_length=64))
            prefix = session.backend().forward_partial(images, (64,))
            assert result.stream_length == 64
            assert np.array_equal(result.scores, prefix[-1])

    def test_predict_early_exit_matches_progressive(self, artifact, images):
        with Session.from_artifact(artifact) as session:
            result = session.predict(images, PredictOptions(early_exit=True))
            assert result.checkpoint_scores is not None
            assert np.array_equal(
                result.checkpoint_scores[-1],
                session.backend().forward(images),
            )

    def test_explicit_schedule_requires_progressive_backend(
        self, artifact, images
    ):
        with Session.from_artifact(artifact, backend="float") as session:
            with pytest.raises(ConfigurationError, match="progressive"):
                session.predict(images, PredictOptions(stream_length=64))

    def test_unknown_backend_fails_at_construction(self, model):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            Session(model, backend="typo")

    def test_evaluate_reports_backend_mode(self, artifact, images):
        with Session.from_artifact(artifact) as session:
            result = session.evaluate(images, [0, 1, 2, 3], backend="sc-fast")
            assert result.mode == "sc-fast"
            assert result.n_images == 4

    def test_backend_cache_reuses_instances(self, artifact):
        with Session.from_artifact(artifact) as session:
            assert session.backend() is session.backend()
            assert session.backend("sc-fast") is not session.backend()

    def test_unhashable_backend_options_bypass_the_cache(self, artifact):
        with Session.from_artifact(artifact) as session:
            # List-valued options cannot key the cache; the session must
            # fall back to uncached construction, so any error comes from
            # the backend constructor -- never from hashing the key.
            with pytest.raises(TypeError) as err:
                session.backend("bit-exact-packed", position_chunk=[1, 2])
            assert "unhashable" not in str(err.value)

    def test_closed_session_rejects_work(self, artifact):
        session = Session.from_artifact(artifact)
        session.close()
        with pytest.raises(ConfigurationError, match="closed"):
            session.backend()

    def test_parallel_backend_rehydrates_from_artifact(self, artifact, images):
        with Session.from_artifact(artifact) as session:
            expected = session.backend().forward(images)
            parallel = session.backend("bit-exact-packed-mp", workers=2)
            assert parallel.artifact_path == str(artifact)
            assert np.array_equal(parallel.forward(images), expected)

    def test_parallel_backend_rejects_mismatched_artifact(
        self, artifact, tmp_path
    ):
        other = ScModel(_tiny_cnn(), stream_length=256, seed=7).save(
            tmp_path / "other"
        )
        with Session.from_artifact(artifact) as session:
            with pytest.raises(ConfigurationError, match="stream_length"):
                session.backend(
                    "bit-exact-packed-mp",
                    workers=2,
                    artifact_path=str(other),
                )

    def test_serve_through_artifact_is_bit_identical(self, artifact, images):
        config = ServiceConfig(
            backend="bit-exact-packed",
            early_exit=False,
            cache_capacity=0,
            num_workers=1,
        )
        with Session.from_artifact(artifact) as session:
            expected = session.backend().forward(images)
            with session.serve(config) as service:
                response = service.infer(images, timeout=300)
            assert np.array_equal(response.scores, expected)

    def test_engine_delegates_to_session(self, images):
        from repro.nn import ScInferenceEngine

        network = _tiny_cnn()
        engine = ScInferenceEngine(network, stream_length=128, seed=7)
        result = engine.evaluate(images, [0, 1, 2, 3], backend="bit-exact-packed")
        direct = engine.session.evaluate(
            images, [0, 1, 2, 3], backend="bit-exact-packed"
        )
        assert result.accuracy == direct.accuracy
        assert engine.session.mapper is engine.mapper

    def test_engine_save_exports_loadable_artifact(self, images, tmp_path):
        from repro.nn import ScInferenceEngine

        engine = ScInferenceEngine(_tiny_cnn(), stream_length=128, seed=7)
        path = engine.save(tmp_path / "engine_model")
        expected = engine.backend("bit-exact-packed").forward(images)
        with Session.from_artifact(path) as session:
            assert np.array_equal(session.predict(images).scores, expected)


class TestCli:
    """`python -m repro` round trip on a deliberately tiny budget."""

    def _run(self, *argv: str) -> None:
        from repro.cli import main

        assert main(list(argv)) == 0

    def test_train_predict_serve_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "cli_model"
        self._run(
            "train",
            "--quick",
            "--quiet",
            "--arch",
            "tiny",
            "--epochs",
            "1",
            "--train-images",
            "64",
            "--test-images",
            "16",
            "--stream-length",
            "128",
            "--output",
            str(artifact),
        )
        assert (artifact / "manifest.json").is_file()
        json_path = tmp_path / "pred.json"
        self._run(
            "predict",
            "--model",
            str(artifact),
            "--images",
            "4",
            "--json",
            str(json_path),
        )
        payload = json.loads(json_path.read_text())
        assert payload["backend"] == "bit-exact-packed"
        # The CLI is a thin shell over the Session facade: its scores are
        # bit-identical to an in-process run over the same images.
        from repro.cli import _test_images

        with Session.from_artifact(artifact) as session:
            images, _ = _test_images(session, 4)
            expected = session.predict(images).scores
        assert np.array_equal(np.asarray(payload["scores"]), expected)
        self._run(
            "evaluate", "--model", str(artifact), "--max-images", "4"
        )
        self._run(
            "serve",
            "--model",
            str(artifact),
            "--requests",
            "4",
            "--backend",
            "bit-exact-packed",
        )
        out = capsys.readouterr().out
        assert "accuracy over served requests" in out

    def test_backends_lists_registry(self, capsys):
        self._run("backends")
        out = capsys.readouterr().out
        assert "bit-exact-packed" in out and "sc-fast" in out
