"""Execution-backend layer: registry, equivalence, and the packed data plane.

Covers the three contracts of :mod:`repro.backends`:

* **registry round-trip** -- every registered name constructs a backend
  that runs, and unknown names fail with an actionable
  :class:`~repro.errors.ConfigurationError`;
* **cross-backend equivalence** -- the three ``bit-exact-*`` backends
  produce *identical* scores (the packed data plane is a faster
  representation of the same hardware, not an approximation), and the
  fast statistical backend matches the historical fast path exactly;
* **word-blocked stepper** -- both execution strategies of
  :func:`repro.blocks.batched.feature_extraction_recurrence_words` are
  bit-identical to the scalar sorted-vector block model.
"""

import numpy as np
import pytest

from repro.backends import (
    Backend,
    BitExactPackedBackend,
    backend_class,
    backend_names,
    create_backend,
    register_backend,
)
from repro.blocks.batched import (
    feature_extraction_recurrence,
    feature_extraction_recurrence_words,
)
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock
from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.nn import ScInferenceEngine
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.sc_layers import ScNetworkMapper
from repro.sc.packed import pack_bits, packed_column_counts, unpack_bits


def _tiny_cnn():
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs, activation="hardware", seed=5, training_stream_length=128
    )


@pytest.fixture(scope="module")
def mapper():
    return ScNetworkMapper(_tiny_cnn(), stream_length=128, seed=7)


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((3, 1, 28, 28))


class TestRegistry:
    def test_expected_backends_registered(self):
        names = backend_names()
        for expected in (
            "float",
            "sc-fast",
            "bit-exact-legacy",
            "bit-exact-batched",
            "bit-exact-packed",
        ):
            assert expected in names

    def test_round_trip_every_name_constructs_and_runs(self, mapper, images):
        """Every registered backend constructs and produces class scores."""
        for name in backend_names():
            backend = create_backend(name, mapper)
            assert backend.name == name
            assert backend_class(name) is type(backend)
            scores = backend.forward(images)
            assert scores.shape == (3, 10)
            assert np.all(np.isfinite(scores))

    def test_unknown_backend_is_a_configuration_error(self, mapper):
        with pytest.raises(ConfigurationError, match="bit-exact-packed"):
            backend_class("no-such-backend")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            create_backend("no-such-backend", mapper)

    def test_registering_nameless_class_fails(self):
        with pytest.raises(ConfigurationError, match="non-empty 'name'"):

            @register_backend
            class Nameless(Backend):  # pragma: no cover - never constructed
                def forward(self, images):
                    return images

    def test_duplicate_name_fails(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_backend
            class Impostor(Backend):  # pragma: no cover - never constructed
                name = "bit-exact-packed"

                def forward(self, images):
                    return images

    def test_capability_flags(self):
        assert backend_class("float").stochastic is False
        assert backend_class("bit-exact-packed").bit_exact is True
        assert backend_class("bit-exact-packed").packed_data_plane is True
        assert backend_class("bit-exact-batched").packed_data_plane is False


class TestCrossBackendEquivalence:
    def test_bit_exact_backends_are_bit_identical(self, mapper, images):
        """Legacy, batched and packed backends produce identical scores."""
        legacy = create_backend("bit-exact-legacy", mapper).forward(images)
        batched = create_backend("bit-exact-batched", mapper).forward(images)
        packed = create_backend("bit-exact-packed", mapper).forward(images)
        assert np.array_equal(legacy, batched)
        assert np.array_equal(legacy, packed)

    def test_packed_matches_batched_on_thirty_two_images(self, mapper):
        """Packed scores are bit-identical on a full 32-image batch.

        Together with the 32-image legacy-vs-batched equivalence of
        ``test_integration.py`` this pins the packed backend to the
        legacy oracle on >= 32 images.
        """
        batch = np.random.default_rng(29).random((32, 1, 28, 28))
        batched = create_backend("bit-exact-batched", mapper).forward(batch)
        packed = create_backend("bit-exact-packed", mapper).forward(batch)
        assert batched.shape == (32, 10)
        assert np.array_equal(batched, packed)

    def test_packed_matches_legacy_on_odd_stream_length(self, images):
        """Tail-word masking: equivalence holds when N % 64 != 0."""
        odd_mapper = ScNetworkMapper(_tiny_cnn(), stream_length=100, seed=3)
        legacy = create_backend("bit-exact-legacy", odd_mapper).forward(images)
        packed = create_backend("bit-exact-packed", odd_mapper).forward(images)
        assert np.array_equal(legacy, packed)

    def test_packed_position_chunk_does_not_change_scores(self, mapper, images):
        auto = create_backend("bit-exact-packed", mapper).forward(images)
        chunked = create_backend(
            "bit-exact-packed", mapper, position_chunk=5
        ).forward(images)
        assert np.array_equal(auto, chunked)

    def test_fast_backend_matches_historical_fast_path(self, mapper, images):
        """Same batching and RNG seeding as the mapper's fast_accuracy loop."""
        backend = create_backend("sc-fast", mapper)
        scores = backend.forward(images)
        expected = mapper.fast_forward(images, inject_noise=True)
        assert np.array_equal(scores, expected)

    def test_float_backend_matches_network_reference(self, mapper, images):
        backend = create_backend("float", mapper)
        expected = mapper.network.forward(images * 2.0 - 1.0, training=False)
        assert np.array_equal(backend.forward(images), expected)

    def test_packed_backend_single_image_shape(self, mapper, images):
        scores = BitExactPackedBackend(mapper).forward(images[0])
        assert scores.shape == (1, 10)


class TestEngineFacade:
    def test_evaluate_selects_backend_by_name(self, images):
        engine = ScInferenceEngine(_tiny_cnn(), stream_length=128, seed=7)
        labels = np.zeros(3, dtype=int)
        for name in ("float", "sc-fast", "bit-exact-packed"):
            result = engine.evaluate(images, labels, backend=name)
            assert result.mode == name
            assert result.n_images == 3
            assert 0.0 <= result.accuracy <= 1.0

    def test_evaluate_unknown_backend_raises(self, images):
        engine = ScInferenceEngine(_tiny_cnn(), stream_length=128, seed=7)
        with pytest.raises(ConfigurationError, match="unknown backend"):
            engine.evaluate(images, np.zeros(3, dtype=int), backend="typo")

    def test_engine_rejects_unknown_default_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ScInferenceEngine(_tiny_cnn(), stream_length=128, default_backend="nope")

    def test_default_backend_comes_from_config(self):
        engine = ScInferenceEngine(_tiny_cnn(), stream_length=128)
        assert engine.default_backend == ExperimentConfig().default_backend

    def test_config_backend_knob(self):
        config = ExperimentConfig().with_backend("bit-exact-packed")
        assert config.default_backend == "bit-exact-packed"
        with pytest.raises(ConfigurationError, match="default_backend"):
            ExperimentConfig(default_backend="")

    def test_legacy_bit_exact_wrapper_keeps_mode_label(self, images):
        engine = ScInferenceEngine(_tiny_cnn(), stream_length=128, seed=7)
        labels = np.zeros(3, dtype=int)
        result = engine.evaluate_sc_bit_exact(
            images, labels, max_images=2, backend="bit-exact-packed"
        )
        assert result.mode == "sc-bit-exact"
        assert result.n_images == 2


class TestWordBlockedStepper:
    @pytest.mark.parametrize("strategy", ["all-states", "per-cycle"])
    @pytest.mark.parametrize("length", [64, 100, 256])
    def test_stepper_matches_sorted_vector_block(self, rng, strategy, length):
        """Both strategies are bit-identical to the hardware data-path model."""
        m = 9
        block = SorterFeatureExtractionBlock(m)
        products = rng.integers(0, 2, (m, length), dtype=np.uint8)
        expected = block.forward_products_sorted_vector(products)
        half = block.threshold
        counts = products.sum(axis=0)
        words = feature_extraction_recurrence_words(
            counts, half, -half, half + 1, strategy=strategy
        )
        assert np.array_equal(unpack_bits(words, length), expected)

    def test_strategies_agree_on_batches(self, rng):
        counts = rng.integers(0, 12, (4, 7, 200))
        kwargs = dict(half=5, low=-5, high=6)
        states = feature_extraction_recurrence_words(
            counts, strategy="all-states", **kwargs
        )
        cycle = feature_extraction_recurrence_words(
            counts, strategy="per-cycle", **kwargs
        )
        assert np.array_equal(states, cycle)
        bits = feature_extraction_recurrence(counts, **kwargs)
        assert np.array_equal(bits, unpack_bits(states, 200))

    def test_stepper_rejects_bad_strategy(self, rng):
        with pytest.raises(ConfigurationError, match="strategy"):
            feature_extraction_recurrence_words(
                rng.integers(0, 3, 64), 1, -1, 2, strategy="magic"
            )

    def test_packed_column_counts_match_unpacked_sum(self, rng):
        bits = rng.integers(0, 2, (5, 9, 130), dtype=np.uint8)
        counts = packed_column_counts(pack_bits(bits), 130)
        assert np.array_equal(counts, bits.sum(axis=-2))


class TestParallelBackend:
    """Process-sharded execution is bit-identical to the inner backend."""

    def test_registered_with_capabilities(self):
        cls = backend_class("bit-exact-packed-mp")
        assert cls.bit_exact
        assert cls.progressive
        assert cls.batch_invariant
        assert backend_class("bit-exact-packed").batch_invariant
        assert not backend_class("sc-fast").batch_invariant

    def test_forward_matches_packed(self, mapper, images):
        packed = create_backend("bit-exact-packed", mapper)
        expected = packed.forward(images)
        with create_backend(
            "bit-exact-packed-mp", mapper, workers=2
        ) as parallel:
            got = parallel.forward(images)
            assert np.array_equal(got, expected)
            # Repeat on the warm pool (worker replicas + arenas reused).
            assert np.array_equal(parallel.forward(images), expected)

    def test_forward_partial_matches_packed_odd_length(self):
        odd_mapper = ScNetworkMapper(_tiny_cnn(), stream_length=100, seed=3)
        images = np.random.default_rng(5).random((4, 1, 28, 28))
        packed = create_backend("bit-exact-packed", odd_mapper)
        checkpoints = (13, 50, 100)
        expected = packed.forward_partial(images, checkpoints)
        with create_backend(
            "bit-exact-packed-mp", odd_mapper, workers=2
        ) as parallel:
            got = parallel.forward_partial(images, checkpoints)
            assert np.array_equal(got, expected)
            assert np.array_equal(got[-1], packed.forward(images))

    def test_single_image_uses_inner_replica(self, mapper, images):
        packed = create_backend("bit-exact-packed", mapper)
        with create_backend(
            "bit-exact-packed-mp", mapper, workers=2
        ) as parallel:
            got = parallel.forward(images[:1])
            assert np.array_equal(got, packed.forward(images[:1]))
            # One image cannot shard: the in-process replica served it
            # without ever starting the pool.
            assert parallel._executor is None

    def test_rejects_non_batch_invariant_inner(self, mapper):
        with pytest.raises(ConfigurationError):
            create_backend(
                "bit-exact-packed-mp", mapper, inner_backend="sc-fast"
            )

    def test_rejects_bad_workers(self, mapper):
        with pytest.raises(ConfigurationError):
            create_backend("bit-exact-packed-mp", mapper, workers=0)

    def test_close_is_idempotent(self, mapper, images):
        parallel = create_backend("bit-exact-packed-mp", mapper, workers=2)
        parallel.forward(images)
        parallel.close()
        parallel.close()
        assert parallel._executor is None


class TestWorkspaceReuseAcrossForwards:
    def test_packed_backend_steady_state_reuses_arena(self, mapper, images):
        backend = create_backend("bit-exact-packed", mapper)
        first = backend.forward(images)
        retained = backend.workspace.nbytes
        assert retained > 0
        second = backend.forward(images)
        # Identical scores and no arena growth at steady state.
        assert np.array_equal(first, second)
        assert backend.workspace.nbytes == retained


class TestDeepNetworkEquivalence:
    """Multi-conv / wide-FC geometry (the Table 8 SNN) stays bit-exact.

    Regression guard: the tiny test CNN never exercises fan-ins wide
    enough to reach uint16 column counts with bit planes at exponent
    >= 9, which is exactly where a narrow-shift bug once made FC-500
    layers diverge while every small-net test stayed green.
    """

    def test_snn_packed_equals_batched(self):
        from repro.nn import build_snn

        network = build_snn(seed=1, training_stream_length=64)
        snn_mapper = ScNetworkMapper(network, stream_length=100, seed=3)
        image = np.random.default_rng(0).random((1, 1, 28, 28))
        packed = create_backend("bit-exact-packed", snn_mapper).forward(image)
        batched = create_backend("bit-exact-batched", snn_mapper).forward(image)
        assert np.array_equal(packed, batched)


class TestResolveParallelBackend:
    """The shared --workers CLI mapping policy."""

    def test_no_workers_is_identity(self):
        from repro.backends import resolve_parallel_backend

        assert resolve_parallel_backend("sc-fast", None) == ("sc-fast", {})
        assert resolve_parallel_backend("bit-exact-packed", 1) == (
            "bit-exact-packed",
            {},
        )

    def test_shardable_backend_rides_along_as_inner(self):
        from repro.backends import resolve_parallel_backend

        name, options = resolve_parallel_backend("bit-exact-batched", 4)
        assert name == "bit-exact-packed-mp"
        assert options == {"workers": 4, "inner_backend": "bit-exact-batched"}

    def test_non_invariant_and_wrapper_fall_back_to_packed(self):
        from repro.backends import resolve_parallel_backend

        for chosen in ("sc-fast", "bit-exact-packed-mp"):
            name, options = resolve_parallel_backend(chosen, 2)
            assert name == "bit-exact-packed-mp"
            assert options["inner_backend"] == "bit-exact-packed"


class TestParallelCapabilitiesFollowInner:
    def test_non_progressive_inner_clears_progressive_flag(self, mapper):
        # "float" is the only batch-invariant, non-progressive backend
        # left now that every bit-exact backend reads stream prefixes.
        parallel = create_backend(
            "bit-exact-packed-mp",
            mapper,
            workers=2,
            inner_backend="float",
        )
        try:
            # The serving layer's early-exit gate reads this attribute;
            # advertising progressive support the inner lacks would
            # route merged batches into forward_partial calls the
            # replicas cannot answer.
            assert parallel.progressive is False
            assert parallel.bit_exact is False
        finally:
            parallel.close()
