"""Fleet serving: RPC, error fidelity, supervision, failover, chaos.

Process-granularity robustness of :mod:`repro.serve.fleet`, mirroring
the in-process coverage of ``tests/test_faults.py``:

* **RPC framing** -- length-prefixed frames round-trip, clean EOF reads
  as ``None``, truncation and corrupt headers are loud
  (:class:`~repro.serve.rpc.RpcConnectionError`);
* **error fidelity** -- typed errors cross the boundary as themselves
  with ``reason`` and cause chain preserved
  (:class:`~repro.errors.RemoteWorkerError` stand-ins), and survive
  pickling;
* **restart bit-exactness** -- a worker killed mid-batch is respawned
  from the artifact and the retried request's scores are bit-identical
  to the fault-free single-process run (the PR 5 rehydration mechanism
  under fire);
* **hang detection, hedging, admission, drain, rolling restart**;
* **chaos** -- >= 500 requests under injected ``WorkerKill`` +
  ``WorkerHang`` + ``SlowWorker``: every future resolves, non-degraded
  scores stay bit-identical, and the router metrics match the plan's
  ``fired`` accounting.

The whole module is skipped when the host cannot spawn subprocesses.
"""

import io
import os
import pickle
import threading
import time

import numpy as np
import pytest

from repro.api import ScModel, Session
from repro.backends import create_backend
from repro.config import FleetConfig, PredictOptions, ServiceConfig
from repro.errors import (
    ConfigurationError,
    FleetError,
    InferenceError,
    RemoteWorkerError,
    ServiceOverloadError,
    ShapeError,
)
from repro.nn.architectures import LayerSpec, build_network
from repro.serve import FaultPlan, FleetRouter, SlowWorker, WorkerHang, WorkerKill
from repro.serve.rpc import (
    FrameStream,
    MAX_FRAME_BYTES,
    RpcConnectionError,
    decode_error,
    encode_error,
)


def _tiny_cnn():
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=2),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC16", units=16),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    return build_network(
        specs, activation="hardware", seed=5, training_stream_length=128
    )


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A saved ScModel every fleet worker process rehydrates from."""
    model = ScModel(_tiny_cnn(), weight_bits=10, stream_length=128, seed=7)
    return str(model.save(tmp_path_factory.mktemp("fleet") / "artifact"))


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(11).random((6, 1, 28, 28))


@pytest.fixture(scope="module")
def reference(artifact, images):
    """Fault-free bit-exact scores from a single in-process backend."""
    backend = create_backend("bit-exact-packed", ScModel.load(artifact).mapper())
    return backend.forward(images)


def _service_config(**overrides):
    base = dict(
        backend="bit-exact-packed",
        max_batch_size=8,
        max_wait_ms=1.0,
        num_workers=1,
        cache_capacity=0,
        early_exit=False,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _fleet_config(**overrides):
    # Heartbeat tolerance is deliberately loose (1.5 s): a busy worker's
    # reader thread can be GIL-starved for a few hundred ms while the
    # service computes, and that must not read as a hang.  Real hangs
    # (hang_s=60) are still detected in ~1.5 s.
    base = dict(
        num_workers=2,
        service=_service_config(),
        heartbeat_interval_ms=100.0,
        heartbeat_misses=15,
        restart_backoff_ms=10.0,
        worker_start_timeout_s=120.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


# ---------------------------------------------------------------------------
# RPC framing
# ---------------------------------------------------------------------------


class TestFrameStream:
    def _pair(self):
        """Two FrameStreams connected through an in-memory pipe."""
        r_fd, w_fd = os.pipe()
        reader = os.fdopen(r_fd, "rb", buffering=0)
        writer = os.fdopen(w_fd, "wb", buffering=0)
        return FrameStream(reader, None), FrameStream(None, writer)

    def test_roundtrip_preserves_payload(self):
        recv, send = self._pair()
        payload = {
            "kind": "request",
            "id": 7,
            "images": np.arange(12.0).reshape(3, 4),
        }
        send.send(payload)
        got = recv.recv()
        assert got["kind"] == "request" and got["id"] == 7
        np.testing.assert_array_equal(got["images"], payload["images"])
        send.close()
        recv.close()

    def test_many_frames_in_order(self):
        recv, send = self._pair()
        for i in range(50):
            send.send({"id": i})
        assert [recv.recv()["id"] for _ in range(50)] == list(range(50))
        send.close()
        recv.close()

    def test_clean_eof_reads_none(self):
        recv, send = self._pair()
        send.send({"kind": "ping"})
        send.close()
        assert recv.recv() == {"kind": "ping"}
        assert recv.recv() is None  # EOF on a frame boundary
        recv.close()

    def test_truncated_frame_is_loud(self):
        r_fd, w_fd = os.pipe()
        reader = os.fdopen(r_fd, "rb", buffering=0)
        writer = os.fdopen(w_fd, "wb", buffering=0)
        # A header promising 100 bytes followed by only 3.
        import struct

        writer.write(struct.pack("!I", 100) + b"abc")
        writer.close()
        with pytest.raises(RpcConnectionError, match="truncated"):
            FrameStream(reader, None).recv()
        reader.close()

    def test_corrupt_length_header_is_loud(self):
        import struct

        blob = struct.pack("!I", MAX_FRAME_BYTES + 1)
        stream = FrameStream(io.BytesIO(blob + b"x" * 8), None)
        with pytest.raises(RpcConnectionError, match="corrupt"):
            stream.recv()

    def test_non_dict_payload_rejected(self):
        import struct

        body = pickle.dumps([1, 2, 3])
        stream = FrameStream(
            io.BytesIO(struct.pack("!I", len(body)) + body), None
        )
        with pytest.raises(RpcConnectionError, match="dict"):
            stream.recv()

    def test_send_to_dead_reader_raises_connection_error(self):
        recv, send = self._pair()
        recv.close()
        with pytest.raises(RpcConnectionError):
            for _ in range(10_000):  # fill the pipe buffer until EPIPE
                send.send({"pad": b"x" * 4096})
        send.close()


# ---------------------------------------------------------------------------
# Error fidelity across the boundary (satellite: reason/cause preservation)
# ---------------------------------------------------------------------------


class TestErrorFidelity:
    def test_overload_reason_survives_encode_decode(self):
        err = ServiceOverloadError("queue is full", reason="deadline")
        back = decode_error(encode_error(err))
        assert isinstance(back, ServiceOverloadError)
        assert back.reason == "deadline"
        assert "queue is full" in str(back)

    def test_overload_reason_survives_pickling(self):
        err = ServiceOverloadError("shed", reason="deadline")
        back = pickle.loads(pickle.dumps(err))
        assert back.reason == "deadline"

    def test_fleet_error_reason_survives_pickling(self):
        err = FleetError("gone", reason="no_workers")
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, FleetError) and back.reason == "no_workers"

    def test_cause_chain_rebuilt_as_remote_worker_errors(self):
        try:
            try:
                raise ValueError("root cause")
            except ValueError as root:
                raise InferenceError("batch failed") from root
        except InferenceError as err:
            payload = encode_error(err)
        back = decode_error(payload)
        assert isinstance(back, InferenceError)
        assert isinstance(back.__cause__, RemoteWorkerError)
        assert back.__cause__.remote_type == "ValueError"
        assert "root cause" in str(back.__cause__)

    def test_unknown_type_decodes_to_fallback(self):
        payload = encode_error(KeyError("weird"))
        back = decode_error(payload)
        assert isinstance(back, InferenceError)
        assert "KeyError" in str(back)

    def test_validation_errors_keep_their_types(self):
        back = decode_error(encode_error(ShapeError("bad image")))
        assert isinstance(back, ShapeError)
        back = decode_error(encode_error(ConfigurationError("bad option")))
        assert isinstance(back, ConfigurationError)

    def test_remote_worker_error_renders_remote_type(self):
        err = RemoteWorkerError("boom", remote_type="RuntimeError")
        assert str(err) == "[RuntimeError] boom"
        back = pickle.loads(pickle.dumps(err))
        assert back.remote_type == "RuntimeError"

    def test_encode_error_bounds_cycle(self):
        a = InferenceError("a")
        b = InferenceError("b")
        a.__cause__ = b
        b.__cause__ = a
        payload = encode_error(a)
        assert len(payload["chain"]) == 1  # cycle cut, not recursed


# ---------------------------------------------------------------------------
# FleetConfig validation
# ---------------------------------------------------------------------------


class TestFleetConfig:
    def test_rejects_in_process_fault_plan_on_service(self):
        plan = FaultPlan(WorkerKill(at_batch=0))
        with pytest.raises(ConfigurationError, match="process boundary"):
            FleetConfig(service=ServiceConfig(fault_plan=plan))

    def test_rejects_plan_without_before_dispatch(self):
        with pytest.raises(ConfigurationError, match="before_dispatch"):
            FleetConfig(fault_plan=object())

    def test_default_worker_service(self):
        config = FleetConfig()
        assert config.worker_service.backend == "bit-exact-packed"

    def test_worker_window_derivation(self):
        # None derives 2x the worker service's max_batch_size.
        derived = FleetConfig(service=ServiceConfig(max_batch_size=16))
        assert derived.worker_window == 32
        assert FleetConfig(max_worker_inflight=7).worker_window == 7
        with pytest.raises(ConfigurationError):
            FleetConfig(max_worker_inflight=0)

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(num_workers=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(heartbeat_misses=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(hedge_after_ms=0.0)
        with pytest.raises(ConfigurationError):
            FleetConfig(max_inflight=0)


# ---------------------------------------------------------------------------
# Live fleets
# ---------------------------------------------------------------------------


class TestFleetServing:
    def test_bit_exact_across_workers(self, artifact, images, reference):
        with FleetRouter(artifact, _fleet_config()) as router:
            futures = [router.submit(images[i % 6]) for i in range(12)]
            responses = [f.result(timeout=120) for f in futures]
        for i, response in enumerate(responses):
            np.testing.assert_array_equal(
                response.scores[0], reference[i % 6]
            )
        snap = router.metrics.snapshot()
        assert snap["completed"] == 12
        assert snap["worker_deaths"] == 0

    def test_session_serve_fleet(self, artifact, images, reference):
        with Session.from_artifact(artifact) as session:
            with session.serve_fleet(_fleet_config()) as router:
                response = router.infer(images[0], timeout=120)
        np.testing.assert_array_equal(response.scores[0], reference[0])

    def test_session_serve_fleet_requires_artifact(self):
        with Session.from_network(_tiny_cnn(), stream_length=128, seed=7) as s:
            with pytest.raises(ConfigurationError, match="artifact"):
                s.serve_fleet()

    def test_options_cross_the_boundary(self, artifact, images, reference):
        with FleetRouter(artifact, _fleet_config()) as router:
            response = router.infer(
                images[0],
                PredictOptions(checkpoints=(32, 128), early_exit=False),
                timeout=120,
            )
        # Full-stream evaluation at the final checkpoint: bit-identical.
        np.testing.assert_array_equal(response.scores[0], reference[0])

    def test_worker_side_validation_error_is_typed(self, artifact):
        # 2-D input fails the worker service's fail-fast validation; the
        # ShapeError crosses the pipe as itself, not a generic wrapper.
        with FleetRouter(artifact, _fleet_config()) as router:
            future = router.submit(np.zeros((5, 5)))
            with pytest.raises(ShapeError):
                future.result(timeout=120)

    def test_snapshot_and_fleet_exposition(self, artifact, images):
        from repro.obs import fleet_prometheus_text, validate_exposition

        with FleetRouter(artifact, _fleet_config()) as router:
            [router.infer(images[i % 6], timeout=120) for i in range(4)]
            snap = router.snapshot()
        assert set(snap) == {"fleet", "workers"}
        assert snap["fleet"]["workers_ready"] == 2
        assert set(snap["workers"]) == {0, 1}
        assert all(w is not None for w in snap["workers"].values())
        text = fleet_prometheus_text(snap)
        families = validate_exposition(text)
        assert "repro_fleet_restarts_total" in families
        assert 'worker="0"' in text and 'worker="1"' in text

    def test_router_admission_sheds_typed(self, artifact, images):
        config = _fleet_config(max_inflight=2)
        with FleetRouter(artifact, config) as router:
            futures, shed = [], 0
            for i in range(10):
                try:
                    futures.append(router.submit(images[i % 6]))
                except ServiceOverloadError as exc:
                    assert exc.reason == "queue_full"
                    shed += 1
            for future in futures:
                future.result(timeout=120)
        assert shed > 0
        assert router.metrics.snapshot()["shed"] == shed

    def test_submit_after_close_raises_draining(self, artifact, images):
        router = FleetRouter(artifact, _fleet_config())
        router.close()
        with pytest.raises(FleetError) as info:
            router.submit(images[0])
        assert info.value.reason == "draining"

    def test_close_drains_in_flight(self, artifact, images, reference):
        router = FleetRouter(artifact, _fleet_config())
        futures = [router.submit(images[i % 6]) for i in range(8)]
        router.close()  # graceful drain: every future must already be done
        for i, future in enumerate(futures):
            response = future.result(timeout=1)
            np.testing.assert_array_equal(response.scores[0], reference[i % 6])


class TestSupervision:
    def test_killed_worker_restarts_and_retries_bit_exact(
        self, artifact, images, reference
    ):
        """Satellite: restart bit-exactness at process granularity.

        The worker is SIGKILLed as request #2 is dispatched to it -- a
        mid-batch death.  The router restarts the slot from the artifact
        and re-dispatches; the retried answer must be bit-identical to
        the fault-free single-process run.
        """
        plan = FaultPlan(WorkerKill(at_batch=2, times=1), seed=0)
        config = _fleet_config(fault_plan=plan, max_worker_restarts=2)
        with FleetRouter(artifact, config) as router:
            responses = [
                router.infer(images[i % 6], timeout=120) for i in range(6)
            ]
        for i, response in enumerate(responses):
            np.testing.assert_array_equal(
                response.scores[0], reference[i % 6]
            )
        snap = router.metrics.snapshot()
        assert plan.fired.get("worker_kill") == 1
        assert snap["worker_deaths"] == 1
        assert snap["restarts"] == 1
        assert snap["retries"] >= 1
        assert snap["completed"] == 6

    def test_hung_worker_is_shot_and_restarted(
        self, artifact, images, reference
    ):
        plan = FaultPlan(WorkerHang(at_batch=1, times=1, hang_s=60.0), seed=0)
        config = _fleet_config(fault_plan=plan, max_worker_restarts=2)
        with FleetRouter(artifact, config) as router:
            responses = [
                router.infer(images[i % 6], timeout=120) for i in range(4)
            ]
        for i, response in enumerate(responses):
            np.testing.assert_array_equal(
                response.scores[0], reference[i % 6]
            )
        snap = router.metrics.snapshot()
        assert plan.fired.get("worker_hang") == 1
        assert snap["worker_deaths"] == 1
        assert snap["restarts"] == 1

    def test_retry_budget_exhaustion_fails_typed(self, artifact, images):
        # Every dispatch kills its worker; with retries smaller than the
        # kill count the request must fail with a typed FleetError, not
        # hang forever.
        plan = FaultPlan(WorkerKill(rate=1.0, times=None), seed=0)
        config = _fleet_config(
            fault_plan=plan,
            max_request_retries=1,
            max_worker_restarts=50,
        )
        with FleetRouter(artifact, config) as router:
            future = router.submit(images[0])
            with pytest.raises(FleetError) as info:
                future.result(timeout=120)
        assert info.value.reason == "worker_lost"

    def test_no_workers_left_fails_fast(self, artifact, images):
        plan = FaultPlan(WorkerKill(rate=1.0, times=None), seed=0)
        config = _fleet_config(
            num_workers=1,
            fault_plan=plan,
            max_worker_restarts=0,
            max_request_retries=5,
        )
        with FleetRouter(artifact, config) as router:
            future = router.submit(images[0])
            with pytest.raises(FleetError):
                future.result(timeout=120)
            # The fleet is now permanently dead: submits fail fast.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    router.submit(images[0])
                except FleetError as exc:
                    assert exc.reason == "no_workers"
                    break
                time.sleep(0.05)
            else:  # pragma: no cover
                pytest.fail("router kept admitting with no workers left")

    def test_hedging_duplicates_slow_requests(
        self, artifact, images, reference
    ):
        # Worker slot 0 is made a straggler (every request +1.5 s); with
        # a 150 ms hedge threshold its requests re-dispatch onto the
        # healthy twin, which answers first -- bit-identically.
        plan = FaultPlan(SlowWorker(worker=0, at_batch=0, delay_s=1.5), seed=0)
        config = _fleet_config(
            fault_plan=plan,
            hedge_after_ms=150.0,
        )
        with FleetRouter(artifact, config) as router:
            responses = [
                router.infer(images[i % 6], timeout=120) for i in range(6)
            ]
        for i, response in enumerate(responses):
            np.testing.assert_array_equal(
                response.scores[0], reference[i % 6]
            )
        snap = router.metrics.snapshot()
        assert plan.fired.get("slow_worker") == 1
        assert snap["hedges"] >= 1
        assert snap["hedge_wins"] >= 1
        assert snap["worker_deaths"] == 0  # slow, not hung: no restart

    def test_rolling_restart_drops_nothing(self, artifact, images, reference):
        config = _fleet_config()
        with FleetRouter(artifact, config) as router:
            stop = threading.Event()
            futures = []

            def pump():
                i = 0
                while not stop.is_set():
                    futures.append((i, router.submit(images[i % 6])))
                    i += 1
                    time.sleep(0.01)

            thread = threading.Thread(target=pump)
            thread.start()
            try:
                time.sleep(0.2)
                router.rolling_restart()
                time.sleep(0.2)
            finally:
                stop.set()
                thread.join()
            responses = [(i, f.result(timeout=120)) for i, f in futures]
        for i, response in responses:
            np.testing.assert_array_equal(
                response.scores[0], reference[i % 6]
            )
        snap = router.metrics.snapshot()
        assert snap["replacements"] == 2
        assert snap["worker_deaths"] == 0  # replacements are not deaths
        assert snap["restarts"] == 0  # ... and are not charged to budgets


# ---------------------------------------------------------------------------
# Chaos (acceptance criterion)
# ---------------------------------------------------------------------------


class TestFleetChaos:
    def test_500_requests_under_process_faults(
        self, artifact, images, reference
    ):
        n_requests = 500
        # Deterministic, slot-pinned injections (matched against each
        # slot's own dispatch counter), spaced so no two faults can land
        # on the same sick process: every fired kill/hang then costs
        # exactly one worker death and one budgeted restart, and the
        # router counters must match `fired` *exactly*.  (A global-counter
        # injection could hit a worker that is already hung -- the
        # dispatcher keeps feeding a hung-but-undetected worker -- and
        # two firings would collapse into one death.)
        plan = FaultPlan(
            WorkerKill(worker=0, at_batch=10, times=1),
            WorkerKill(worker=1, at_batch=30, times=1),
            WorkerHang(worker=0, at_batch=120, times=1, hang_s=60.0),
            SlowWorker(worker=1, at_batch=200, times=1, delay_s=0.2),
            seed=0,
        )
        config = _fleet_config(
            service=_service_config(max_batch_size=16, max_wait_ms=2.0),
            fault_plan=plan,
            max_worker_restarts=4,
            max_request_retries=4,
            drain_timeout_s=120.0,
        )
        answered, failed, shed = [], 0, 0
        with FleetRouter(artifact, config) as router:
            futures = []
            for i in range(n_requests):
                try:
                    futures.append((i, router.submit(images[i % 6])))
                except (ServiceOverloadError, FleetError):
                    shed += 1
                if i % 16 == 15:
                    time.sleep(0.001)  # pace the burst a little
            for i, future in futures:
                try:
                    answered.append((i, future.result(timeout=300)))
                except (InferenceError, FleetError, ServiceOverloadError):
                    failed += 1
            # The last future can resolve while a replacement worker is
            # still mid-spawn; give the fleet a moment to finish healing.
            deadline = time.monotonic() + 60
            snapshot = router.snapshot()
            while (
                snapshot["fleet"]["workers_ready"] < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.1)
                snapshot = router.snapshot()
        # Every submitted future resolved: a result or a typed error.
        assert len(answered) + failed + shed == n_requests
        assert len(answered) > 0
        # Non-degraded scores are bit-identical to the fault-free
        # single-process run (no degradation is configured, so that is
        # *every* answer) -- batch-invariance across processes, restarts
        # and retries.
        for i, response in answered:
            assert not response.degraded
            np.testing.assert_array_equal(
                response.scores[0], reference[i % 6]
            )
        # Router metrics match the plan's fired accounting exactly.
        fleet = snapshot["fleet"]
        kills = plan.fired.get("worker_kill", 0)
        hangs = plan.fired.get("worker_hang", 0)
        assert kills == 2 and hangs == 1
        assert plan.fired.get("slow_worker", 0) == 1
        assert fleet["worker_deaths"] == kills + hangs
        assert fleet["restarts"] == kills + hangs
        # Each death strands at least the request whose dispatch fired
        # the injector; every stranded-and-retried request is counted.
        assert fleet["retries"] >= kills
        assert fleet["completed"] == len(answered)
        assert fleet["shed"] == shed
        # Hedging is disabled in this plan: exactly zero, not "about zero".
        assert fleet["hedges"] == 0 and fleet["hedge_wins"] == 0
        # Every request lands in exactly one outcome bucket.
        assert (
            fleet["completed"]
            + fleet["failed"]
            + fleet["router_errors"]
            + fleet["shed"]
            == n_requests
        )
        assert fleet["submitted"] == n_requests - shed
        # The fleet healed: both workers are back up at the end.
        assert fleet["workers_ready"] == 2
