"""Shared pytest fixtures."""

import numpy as np
import pytest


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic random generator for stream sampling in tests."""
    return np.random.default_rng(20190622)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small synthetic digit dataset shared by the slower tests."""
    from repro.datasets import generate_digit_dataset

    return generate_digit_dataset(n_train=300, n_test=100, seed=11)
