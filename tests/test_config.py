"""Tests for package-level configuration and the exception hierarchy."""

import pytest

import repro
from repro import ConfigurationError, ExperimentConfig, ReproError, default_config
from repro.errors import (
    DatasetError,
    EncodingError,
    NetlistError,
    ShapeError,
    SimulationError,
    TrainingError,
)


class TestConfig:
    def test_defaults(self):
        config = default_config()
        assert config.stream_length == 1024
        assert config.weight_bits == 10

    def test_with_stream_length(self):
        config = default_config().with_stream_length(256)
        assert config.stream_length == 256
        assert config.weight_bits == default_config().weight_bits

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(stream_length=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(weight_bits=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(aqfp_clock_hz=-1)

    def test_version_exposed(self):
        assert repro.__version__


class TestErrors:
    @pytest.mark.parametrize(
        "error",
        [
            ConfigurationError,
            EncodingError,
            ShapeError,
            NetlistError,
            SimulationError,
            TrainingError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")
