"""Tests for package-level configuration and the exception hierarchy."""

import pytest

import repro
from repro import ConfigurationError, ExperimentConfig, ReproError, default_config
from repro.config import ServiceConfig
from repro.errors import (
    DatasetError,
    EncodingError,
    NetlistError,
    ShapeError,
    SimulationError,
    TrainingError,
)


class TestConfig:
    def test_defaults(self):
        config = default_config()
        assert config.stream_length == 1024
        assert config.weight_bits == 10

    def test_with_stream_length(self):
        config = default_config().with_stream_length(256)
        assert config.stream_length == 256
        assert config.weight_bits == default_config().weight_bits

    def test_with_stream_length_round_trip(self):
        """Copy-mutate-copy returns to an equal (frozen) config."""
        base = default_config()
        changed = base.with_stream_length(256)
        assert changed is not base
        assert base.stream_length == 1024  # the original is untouched
        assert changed.with_stream_length(base.stream_length) == base

    def test_with_backend_round_trip(self):
        base = default_config()
        changed = base.with_backend("bit-exact-packed")
        assert changed.default_backend == "bit-exact-packed"
        assert base.default_backend == "sc-fast"  # the original is untouched
        assert changed.stream_length == base.stream_length
        assert changed.with_backend(base.default_backend) == base

    def test_empty_default_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="default_backend"):
            ExperimentConfig(default_backend="")
        with pytest.raises(ConfigurationError, match="default_backend"):
            ExperimentConfig(default_backend=None)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(stream_length=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(weight_bits=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(aqfp_clock_hz=-1)

    def test_service_config_defaults_valid(self):
        config = ServiceConfig()
        assert config.backend_names == (ExperimentConfig().default_backend,)
        assert config.checkpoint_fractions[-1] == 1.0

    def test_version_exposed(self):
        assert repro.__version__


class TestErrors:
    @pytest.mark.parametrize(
        "error",
        [
            ConfigurationError,
            EncodingError,
            ShapeError,
            NetlistError,
            SimulationError,
            TrainingError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")
