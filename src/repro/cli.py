"""``python -m repro``: train, predict, evaluate and serve SC models.

The command-line face of the public API (:mod:`repro.api`) -- every
subcommand is a thin wrapper over :class:`~repro.api.ScModel` and
:class:`~repro.api.Session`, so anything the CLI does is reproducible
in-process with three lines of Python:

* ``train``     -- SC-aware training on the synthetic digit dataset,
  exported as a versioned model artifact.
* ``predict``   -- load an artifact and score test images (optionally as
  JSON, for the CI bit-exactness cross-check).
* ``evaluate``  -- accuracy of an artifact under any registered backend.
* ``serve``     -- stand up the micro-batching service on an artifact and
  push a demo burst through it; with ``--http-port`` it instead runs the
  asyncio HTTP front end (unary + streaming prediction, ``/metrics``,
  hot-reloadable multi-model ``--registry`` mode) until SIGINT/SIGTERM
  drains it.
* ``models``    -- list a registry directory's (or explicit artifacts')
  catalog metadata: name, format version, weight bits, stream length,
  manifest sha256.
* ``metrics``   -- serve a burst and export the service snapshot in
  Prometheus text exposition format (kernel-tier counters included).
* ``trace``     -- serve a burst at trace sample rate 1.0 and print every
  request's span tree and queue/service breakdown.
* ``backends``  -- list the execution-backend registry.

This module also hosts the **shared backend argparse wiring**
(:func:`add_backend_arguments` / :func:`backend_selection` /
:func:`backend_epilog`), used by every example script and the CLI alike
so the ``--backend`` / ``--workers`` / ``--stream-length`` flags cannot
drift between entry points.  Heavy imports happen inside the subcommand
handlers to keep ``python -m repro backends --help`` instant.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = [
    "add_backend_arguments",
    "backend_selection",
    "backend_epilog",
    "tiny_serving_specs",
    "QUICK_DATASET",
    "main",
]


# -- shared backend argparse wiring (examples + CLI) ---------------------------


def add_backend_arguments(
    parser: argparse.ArgumentParser,
    default: str | None = "bit-exact-packed",
    capability: str | None = None,
    include_workers: bool = True,
    include_stream_length: bool = False,
    stream_length_default: int = 1024,
    backend_help: str | None = None,
) -> None:
    """Add the standard ``--backend`` / ``--workers`` / ``--stream-length``
    flags to a parser.

    One helper instead of the near-identical wiring formerly copied
    across every example: choices come from the live registry (optionally
    filtered by a capability flag such as ``"bit_exact"`` or
    ``"progressive"``) and the ``--workers`` semantics are the shared
    :func:`repro.backends.resolve_parallel_backend` policy, resolved by
    :func:`backend_selection`.

    Args:
        parser: the parser (or subparser) to extend.
        default: default backend name (``None`` makes the flag optional
            with no default).
        capability: only offer backends whose class sets this capability
            flag (e.g. ``"bit_exact"``, ``"progressive"``).
        include_workers: add ``--workers`` (process sharding).
        include_stream_length: add ``--stream-length``.
        stream_length_default: default for ``--stream-length``.
        backend_help: override the ``--backend`` help text.
    """
    from repro.backends import backend_class, backend_names

    names = [
        n
        for n in backend_names()
        if capability is None or getattr(backend_class(n), capability, False)
    ]
    parser.add_argument(
        "--backend",
        choices=names,
        default=default,
        help=backend_help
        or "execution backend from the registry (see the epilog)",
    )
    if include_stream_length:
        parser.add_argument(
            "--stream-length",
            type=int,
            default=stream_length_default,
            help="stochastic stream length N",
        )
    if include_workers:
        parser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="shard batches across this many workers (selects a sharded "
            "'-mp' wrapper backend; scores stay bit-identical)",
        )
        parser.add_argument(
            "--executor",
            choices=("process", "thread"),
            default=None,
            help="how --workers shards run: 'process' (process pool + "
            "shared memory) or 'thread' (thread pool; effective when the "
            "compiled native kernels release the GIL).  Default: threads "
            "for the native tier, processes otherwise",
        )


def backend_selection(args: argparse.Namespace) -> tuple[str, dict]:
    """Resolve parsed ``--backend`` / ``--workers`` / ``--executor`` flags.

    Returns:
        ``(backend_name, backend_options)`` ready for
        :func:`repro.backends.create_backend`,
        :meth:`repro.api.Session.backend`, or any ``backend=`` /
        ``**options`` forwarding call site.
    """
    from repro.backends import resolve_parallel_backend

    return resolve_parallel_backend(
        args.backend,
        getattr(args, "workers", None),
        getattr(args, "executor", None),
    )


def backend_epilog() -> str:
    """Standard ``--help`` epilog listing every registered backend."""
    from repro.backends import describe_backends

    return "available backends:\n" + describe_backends()


# -- dataset / architecture plumbing shared by the subcommands -----------------

#: Default synthetic-dataset parameters recorded into trained artifacts
#: (predict/evaluate/serve regenerate the *same* held-out split from the
#: artifact's metadata, so every entry point scores identical images).
_DEFAULT_DATASET = {"n_train": 3000, "n_test": 600, "seed": 2019}

#: The reduced dataset of ``--quick`` training runs -- shared with
#: ``examples/serve_demo.py`` so the CLI- and demo-trained artifacts
#: score the same held-out split.
QUICK_DATASET = {"n_train": 800, "n_test": 128, "seed": 2019}


def tiny_serving_specs():
    """The small serving CNN used by the CLI, demos and benchmarks.

    One definition instead of per-script copies: the ``train --arch
    tiny`` subcommand, ``examples/serve_demo.py`` and
    ``benchmarks/bench_serve.py`` all build this exact architecture, so
    their artifacts stay interchangeable.
    """
    from repro.nn.architectures import LayerSpec

    return [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=8),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC64", units=64),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]


def _build_architecture(arch: str, seed: int, training_stream_length: int):
    from repro.nn.architectures import build_dnn, build_network, build_snn

    if arch == "tiny":
        return build_network(
            tiny_serving_specs(),
            activation="hardware",
            seed=seed,
            name="tiny",
            training_stream_length=training_stream_length,
        )
    if arch == "snn":
        return build_snn(seed=seed, training_stream_length=training_stream_length)
    if arch == "dnn":
        return build_dnn(seed=seed, training_stream_length=training_stream_length)
    raise ValueError(arch)  # pragma: no cover - argparse choices guard this


def _dataset_from_metadata(metadata: dict):
    """Regenerate the dataset an artifact was trained against."""
    from repro.datasets import generate_digit_dataset

    params = dict(_DEFAULT_DATASET)
    params.update(metadata.get("dataset") or {})
    return generate_digit_dataset(
        params["n_train"], params["n_test"], seed=params["seed"]
    )


def _test_images(session, count: int | None):
    """Held-out test images/labels for a session's model."""
    dataset = _dataset_from_metadata(session.model.metadata)
    images = dataset.test_images[:count, None]
    labels = dataset.test_labels[: images.shape[0]]
    return images, labels


# -- subcommands ---------------------------------------------------------------


def _cmd_train(args: argparse.Namespace) -> int:
    import time

    from repro.api import ScModel
    from repro.datasets import generate_digit_dataset
    from repro.nn import Trainer, TrainingConfig

    dataset_params = dict(QUICK_DATASET if args.quick else _DEFAULT_DATASET)
    if args.train_images is not None:
        dataset_params["n_train"] = args.train_images
    if args.test_images is not None:
        dataset_params["n_test"] = args.test_images
    dataset_params["seed"] = args.data_seed
    epochs = args.epochs or (2 if args.quick else 6)

    print(
        f"training {args.arch} on {dataset_params['n_train']} synthetic "
        f"digits ({epochs} epochs, SC-aware)..."
    )
    dataset = generate_digit_dataset(**dataset_params)
    network = _build_architecture(args.arch, args.seed, args.stream_length)
    trainer = Trainer(network, TrainingConfig(epochs=epochs, seed=args.seed))
    started = time.perf_counter()
    history = trainer.fit(
        dataset.train_images[:, None] * 2 - 1,
        dataset.train_labels,
        dataset.test_images[:, None] * 2 - 1,
        dataset.test_labels,
        verbose=not args.quiet,
    )
    elapsed = time.perf_counter() - started

    model = ScModel(
        network,
        weight_bits=args.weight_bits,
        stream_length=args.stream_length,
        seed=args.seed,
        metadata={
            "arch": args.arch,
            "dataset": dataset_params,
            "training": {
                "epochs": epochs,
                "seconds": round(elapsed, 2),
                "final_test_accuracy": history.final_test_accuracy,
            },
        },
    )
    path = model.save(args.output)
    print(
        f"trained to {history.final_test_accuracy:.4f} held-out accuracy "
        f"in {elapsed:.1f} s"
    )
    print(f"saved model artifact to {path}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.api import PredictOptions, Session

    backend, backend_options = backend_selection(args)
    options = PredictOptions(
        stream_length=args.stream_length,
        checkpoints=tuple(args.checkpoints) if args.checkpoints else None,
        early_exit=True if args.early_exit else None,
    )
    with Session.from_artifact(
        args.model, backend=backend, **backend_options
    ) as session:
        images, labels = _test_images(session, args.images)
        result = session.predict(images, options)
    correct = int((result.predictions == labels).sum())
    for i, (prediction, label) in enumerate(zip(result.predictions, labels)):
        mark = "ok " if prediction == label else "MISS"
        print(
            f"image {i:3d}: predicted {int(prediction)} (label {int(label)}) "
            f"{mark} exit {int(result.exit_checkpoints[i])}/"
            f"{session.stream_length}"
        )
    print(
        f"{correct}/{images.shape[0]} correct under {result.backend} "
        f"(N = {result.stream_length})"
    )
    if args.json:
        payload = {
            "backend": result.backend,
            "stream_length": result.stream_length,
            "checkpoints": list(result.checkpoints),
            "scores": np.asarray(result.scores).tolist(),
            "predictions": np.asarray(result.predictions).tolist(),
            "exit_checkpoints": np.asarray(result.exit_checkpoints).tolist(),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.api import Session

    backend, backend_options = backend_selection(args)
    with Session.from_artifact(
        args.model, backend=backend, **backend_options
    ) as session:
        images, labels = _test_images(session, args.max_images)
        result = session.evaluate(images, labels)
    print(
        f"accuracy {result.accuracy:.4f} over {result.n_images} images "
        f"under {result.mode} (N = {result.stream_length})"
    )
    return 0


class _GracefulExit(Exception):
    """SIGINT/SIGTERM arrived: drain and flush instead of dying mid-write."""


def _install_drain_handlers():
    """Route SIGINT/SIGTERM into :class:`_GracefulExit` (main thread).

    Returns the previous handlers for :func:`_restore_handlers`; a
    second signal during the drain is ignored rather than re-raised, so
    the flush-and-exit path cannot be interrupted by an impatient ^C^C.
    """
    import signal

    def handler(signum, frame):
        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, signal.SIG_IGN)
        raise _GracefulExit(signal.Signals(signum).name)

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, handler)
    return previous


def _restore_handlers(previous) -> None:
    import signal

    for sig, old in previous.items():
        signal.signal(sig, old)


def _cmd_serve_http(args: argparse.Namespace, backend: str, config) -> int:
    """``serve --http-port``: run the network front end until a signal.

    Serves one ``--model`` artifact (optionally renamed with
    ``--model-name``) or a whole ``--registry`` directory of artifacts,
    over an in-process service per model or -- with ``--fleet-workers``
    -- a supervised multi-process fleet per model.  SIGINT/SIGTERM
    drains open HTTP connections and replica pools, then exits 0.
    """
    import asyncio
    import signal

    from repro.config import FleetConfig, HttpConfig
    from repro.serve import ModelRegistry, ScHttpServer

    fleet_config = None
    if args.fleet_workers:
        fleet_config = FleetConfig(
            num_workers=args.fleet_workers,
            service=config,
            max_inflight=args.max_queue_depth,
            hedge_after_ms=args.hedge_after_ms,
        )
    if args.registry:
        registry = ModelRegistry(
            root=args.registry, service=config, fleet=fleet_config
        )
    else:
        name = args.model_name or Path(args.model).name
        registry = ModelRegistry(
            models={name: args.model}, service=config, fleet=fleet_config
        )
    http_config = HttpConfig(
        host=args.http_host,
        port=args.http_port,
        reload_interval_s=args.reload_interval,
    )

    async def run() -> None:
        server = await ScHttpServer(registry, http_config).start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        mode = (
            f"{args.fleet_workers}-process fleets"
            if args.fleet_workers
            else "in-process services"
        )
        print(
            f"serving {len(registry)} model(s) on "
            f"http://{server.host}:{server.port} ({mode}, backend "
            f"{backend}); SIGINT/SIGTERM drains",
            flush=True,
        )
        await stop.wait()
        print(
            "\ndraining open connections and replica pools...", flush=True
        )
        await server.drain()

    try:
        asyncio.run(run())
    finally:
        registry.close()
    print("drained cleanly")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import PredictOptions, Session
    from repro.config import FleetConfig, ServiceConfig
    from repro.errors import FleetError, ServiceOverloadError

    if args.registry and args.model:
        print("serve: use --model or --registry, not both", file=sys.stderr)
        return 2
    if args.registry and args.http_port is None:
        print(
            "serve: --registry mode needs --http-port (the demo burst "
            "serves a single --model)",
            file=sys.stderr,
        )
        return 2
    if not args.registry and not args.model:
        print("serve: --model (or --registry) is required", file=sys.stderr)
        return 2

    backend, backend_options = backend_selection(args)
    config = ServiceConfig(
        backend=backend,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        num_workers=1 if backend_options else args.service_workers,
        cache_capacity=args.cache_capacity,
        max_queue_depth=args.max_queue_depth,
        shed_unmeetable_deadlines=args.shed_unmeetable_deadlines,
        degrade_queue_depth=args.degrade_queue_depth,
        degraded_max_fraction=args.degraded_max_fraction,
        trace_sample_rate=args.trace_sample_rate,
        event_log_path=args.trace_file,
    )
    if args.http_port is not None or args.registry:
        return _cmd_serve_http(args, backend, config)
    # `is not None` (not truthiness): a zero deadline must reach the
    # PredictOptions validator and raise, not silently mean "no deadline".
    options = (
        PredictOptions(deadline_ms=args.deadline_ms)
        if args.deadline_ms is not None
        else None
    )
    fleet = args.fleet_workers
    interrupted = None
    responses: dict = {}
    futures: dict = {}
    snapshot = None
    previous_handlers = _install_drain_handlers()
    try:
        with Session.from_artifact(
            args.model, backend=backend, **backend_options
        ) as session:
            images, labels = _test_images(session, args.requests)
            n = images.shape[0]
            if fleet:
                server = session.serve_fleet(
                    FleetConfig(
                        num_workers=fleet,
                        service=config,
                        max_inflight=args.max_queue_depth,
                        hedge_after_ms=args.hedge_after_ms,
                    )
                )
                print(
                    f"serving {n} single-image requests across "
                    f"{fleet} worker processes ({backend}, "
                    f"N = {session.stream_length})..."
                )
            else:
                server = session.serve(config)
                print(
                    f"serving {n} single-image requests through {backend} "
                    f"(N = {session.stream_length})..."
                )
            try:
                # With bounded admission configured, the burst of submits
                # may be shed; a shed request is simply not answered (the
                # point of fast rejection is that callers decide retry).
                for i in range(n):
                    try:
                        futures[i] = server.submit(images[i], options)
                    except (ServiceOverloadError, FleetError):
                        pass
                for i, future in futures.items():
                    responses[i] = future.result(timeout=600)
                snapshot = server.snapshot()
            except _GracefulExit as exc:
                interrupted = str(exc)
                print(
                    f"\nreceived {interrupted}: draining in-flight "
                    "requests and flushing outputs..."
                )
            finally:
                # close() is the graceful drain: stop admitting, finish
                # the in-flight work, then shut down.  On the signal path
                # the snapshot is taken afterwards so drained requests
                # are counted in the flushed metrics.
                server.close()
                for i, future in futures.items():
                    if i not in responses and future.done():
                        try:
                            responses[i] = future.result()
                        except Exception:
                            pass
                if snapshot is None:
                    try:
                        snapshot = server.snapshot()
                    except Exception:
                        snapshot = None
            stream_length = session.stream_length
    finally:
        _restore_handlers(previous_handlers)
    answered = len(responses)
    correct = sum(
        int(r.predictions[0]) == int(labels[i])
        for i, r in responses.items()
    )
    if answered:
        print(
            f"accuracy over served requests: {correct / answered:.3f} "
            f"({answered}/{n} answered)"
        )
    if fleet:
        _print_fleet_summary(snapshot)
    else:
        _print_service_summary(snapshot, stream_length)
    if args.metrics_file and snapshot is not None:
        if fleet:
            from repro.obs import fleet_prometheus_text

            Path(args.metrics_file).write_text(
                fleet_prometheus_text(snapshot)
            )
        else:
            from repro.obs import prometheus_text

            Path(args.metrics_file).write_text(prometheus_text(snapshot))
        print(f"wrote Prometheus metrics to {args.metrics_file}")
    if args.trace_file:
        print(f"wrote trace/fault event log to {args.trace_file}")
    if interrupted is not None:
        import signal

        print(f"drained cleanly after {interrupted}")
        return 128 + int(getattr(signal.Signals, interrupted))
    return 0


def _print_service_summary(snapshot, stream_length: int) -> None:
    if snapshot is None:
        return
    faults = snapshot["faults"]
    if faults["shed"]["total"] or faults["degraded_requests"]:
        print(
            f"overload behaviour:            "
            f"{faults['shed']['total']} shed, "
            f"{faults['degraded_requests']} degraded"
        )
    print(f"mean micro-batch size:         {snapshot['mean_batch_size']:.1f}")
    if snapshot["mean_exit_checkpoint"] is not None:
        print(
            f"mean exit checkpoint:          "
            f"{snapshot['mean_exit_checkpoint']:.0f} / "
            f"{stream_length} "
            f"({snapshot['cycle_reduction']:.2f}x stream-cycle reduction)"
        )
    print(
        f"latency p50 / p95 / p99:       "
        f"{snapshot['latency_ms']['p50']:.1f} / "
        f"{snapshot['latency_ms']['p95']:.1f} / "
        f"{snapshot['latency_ms']['p99']:.1f} ms"
    )
    if snapshot.get("queue_time_ms") and snapshot.get("service_time_ms"):
        print(
            f"queue / service p50:           "
            f"{snapshot['queue_time_ms']['p50']:.1f} / "
            f"{snapshot['service_time_ms']['p50']:.1f} ms"
        )


def _print_fleet_summary(snapshot) -> None:
    if snapshot is None:
        return
    fleet = snapshot.get("fleet", {})
    print(
        f"fleet:                         "
        f"{fleet.get('workers_ready', 0)} workers ready, "
        f"{fleet.get('completed', 0)} completed, "
        f"{fleet.get('shed', 0)} shed"
    )
    if fleet.get("worker_deaths") or fleet.get("restarts"):
        print(
            f"supervision:                   "
            f"{fleet.get('worker_deaths', 0)} deaths, "
            f"{fleet.get('restarts', 0)} restarts, "
            f"{fleet.get('retries', 0)} request retries"
        )
    if fleet.get("hedges"):
        print(
            f"hedging:                       "
            f"{fleet.get('hedges', 0)} hedges, "
            f"{fleet.get('hedge_wins', 0)} won by the duplicate"
        )
    for slot, worker in sorted(
        (snapshot.get("workers") or {}).items(), key=lambda kv: str(kv[0])
    ):
        if not worker:
            print(f"worker {slot}:                      (not answering)")
            continue
        latency = worker.get("latency_ms") or {}
        p99 = latency.get("p99")
        p99_text = f"{p99:.1f} ms p99" if p99 is not None else "no latency"
        print(
            f"worker {slot}:                      "
            f"{worker.get('requests', 0)} requests, "
            f"{worker.get('batches', 0)} batches, {p99_text}"
        )


def _run_service_burst(session, config, count: int):
    """Push a burst of single-image requests through a service.

    Shared by the ``metrics`` and ``trace`` subcommands: returns the
    responses (by request index), the service snapshot, and the traces
    retained in the tracer's ring buffer.
    """
    images, _labels = _test_images(session, count)
    with session.serve(config) as service:
        futures = [
            service.submit(images[i]) for i in range(images.shape[0])
        ]
        responses = [f.result(timeout=600) for f in futures]
        snapshot = service.snapshot()
        traces = service.tracer.recent()
    return responses, snapshot, traces


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.config import ServiceConfig
    from repro.obs import prometheus_text

    backend, backend_options = backend_selection(args)
    config = ServiceConfig(
        backend=backend,
        num_workers=1 if backend_options else args.service_workers,
        cache_capacity=args.cache_capacity,
        trace_sample_rate=args.trace_sample_rate,
    )
    with Session.from_artifact(
        args.model, backend=backend, **backend_options
    ) as session:
        _responses, snapshot, _traces = _run_service_burst(
            session, config, args.requests
        )
    text = prometheus_text(snapshot)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote Prometheus metrics to {args.output}")
    else:
        print(text, end="")
    return 0


def _format_trace(trace: dict) -> str:
    """Render one completed trace dict as an indented span tree."""
    spans = trace["spans"]
    children: dict = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)
    lines = [f"trace {trace['trace_id']}"]

    def walk(span: dict, depth: int) -> None:
        duration = span["duration_ms"]
        timing = f"{duration:9.3f} ms" if duration is not None else "     open"
        notes = " ".join(
            f"{k}={v}" for k, v in (span.get("annotations") or {}).items()
        )
        lines.append(
            f"  {'  ' * depth}{span['name']:<16} {timing}"
            + (f"  {notes}" if notes else "")
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.config import ServiceConfig

    backend, backend_options = backend_selection(args)
    config = ServiceConfig(
        backend=backend,
        num_workers=1 if backend_options else args.service_workers,
        cache_capacity=args.cache_capacity,
        trace_sample_rate=1.0,
        trace_capacity=max(256, args.requests),
    )
    with Session.from_artifact(
        args.model, backend=backend, **backend_options
    ) as session:
        responses, snapshot, traces = _run_service_burst(
            session, config, args.requests
        )
    for response in responses:
        summary = response.trace
        if summary is None:
            continue
        print(
            f"{summary.trace_id}: queue {summary.queue_ms:7.2f} ms + "
            f"service {summary.service_ms:7.2f} ms = "
            f"{summary.latency_ms:7.2f} ms  "
            f"replica={summary.replica} batch={summary.batch_seq} "
            f"retries={summary.retries}"
            + (" degraded" if summary.degraded else "")
        )
    shown = traces[-args.show :] if args.show else traces
    for trace in shown:
        print()
        print(_format_trace(trace))
    if args.json:
        with Path(args.json).open("w", encoding="utf-8") as stream:
            for trace in traces:
                stream.write(json.dumps(trace) + "\n")
        print(f"\nwrote {len(traces)} traces to {args.json}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.backends import describe_backends

    print(describe_backends())
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    """List registry/artifact catalog metadata (manifests only).

    Reads nothing but ``manifest.json`` files -- no weights load, no
    replica pools spawn -- so it is safe to point at a production
    registry directory.
    """
    from repro.errors import ConfigurationError
    from repro.serve.registry import describe_artifact

    entries = []
    problems = []
    if args.registry:
        root = Path(args.registry)
        if not root.is_dir():
            print(f"models: no directory at {root}", file=sys.stderr)
            return 2
        for child in sorted(root.iterdir()):
            if not (child / "manifest.json").is_file():
                continue
            try:
                entries.append(describe_artifact(child))
            except ConfigurationError as exc:
                problems.append((child.name, str(exc)))
    for path in args.model or []:
        try:
            entries.append(describe_artifact(path))
        except ConfigurationError as exc:
            problems.append((str(path), str(exc)))
    if args.json:
        print(json.dumps([e.listing() for e in entries], indent=2))
    else:
        if entries:
            width = max(len(e.name) for e in entries)
            width = max(width, len("name"))
            print(
                f"{'name':<{width}}  version  bits  stream  "
                f"sha256        params"
            )
            for e in entries:
                print(
                    f"{e.name:<{width}}  {e.format_version:<7}  "
                    f"{e.weight_bits:<4}  {e.stream_length:<6}  "
                    f"{e.sha256[:12]}  {e.n_parameters}"
                )
        for name, problem in problems:
            print(f"unreadable artifact {name}: {problem}", file=sys.stderr)
    if not entries and not problems:
        print("no model artifacts found", file=sys.stderr)
        return 1
    return 0 if not problems else 1


# -- parser --------------------------------------------------------------------


def _csv_ints(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser(
        "train",
        help="train on the synthetic digit dataset and save a model artifact",
    )
    train.add_argument(
        "--output",
        default="artifacts/model",
        help="artifact directory to write (default: artifacts/model)",
    )
    train.add_argument(
        "--arch",
        choices=("tiny", "snn", "dnn"),
        default="tiny",
        help="architecture: the small serving CNN or the paper's Table 8 nets",
    )
    train.add_argument(
        "--quick", action="store_true", help="small dataset and epoch budget"
    )
    train.add_argument("--epochs", type=int, default=None)
    train.add_argument("--train-images", type=int, default=None)
    train.add_argument("--test-images", type=int, default=None)
    train.add_argument("--stream-length", type=int, default=1024)
    train.add_argument("--weight-bits", type=int, default=10)
    train.add_argument("--seed", type=int, default=2019)
    train.add_argument("--data-seed", type=int, default=2019)
    train.add_argument(
        "--quiet", action="store_true", help="suppress per-epoch output"
    )
    train.set_defaults(func=_cmd_train)

    predict = commands.add_parser(
        "predict",
        help="score held-out images with a saved model artifact",
        epilog=None,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    predict.add_argument("--model", required=True, help="artifact directory")
    predict.add_argument(
        "--images", type=int, default=8, help="test images to score"
    )
    add_backend_arguments(predict)
    predict.add_argument(
        "--stream-length",
        type=int,
        default=None,
        help="per-request reduced stream length (prefix evaluation)",
    )
    predict.add_argument(
        "--checkpoints",
        type=_csv_ints,
        default=None,
        help="comma-separated checkpoint schedule (e.g. 128,256,512)",
    )
    predict.add_argument(
        "--early-exit",
        action="store_true",
        help="apply the stability+margin early-exit policy",
    )
    predict.add_argument(
        "--json", default=None, help="also write scores/predictions as JSON"
    )
    predict.set_defaults(func=_cmd_predict)

    evaluate = commands.add_parser(
        "evaluate", help="accuracy of a saved model artifact"
    )
    evaluate.add_argument("--model", required=True, help="artifact directory")
    evaluate.add_argument(
        "--max-images", type=int, default=None, help="cap on evaluated images"
    )
    add_backend_arguments(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    serve = commands.add_parser(
        "serve",
        help="run a demo burst through the micro-batching service, or "
        "(with --http-port) the asyncio HTTP front end",
    )
    serve.add_argument(
        "--model",
        default=None,
        help="artifact directory (required unless --registry is given)",
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="serve over HTTP on this port instead of the demo burst "
        "(0 = ephemeral; runs until SIGINT/SIGTERM drains)",
    )
    serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="interface the HTTP listener binds (default: loopback)",
    )
    serve.add_argument(
        "--registry",
        default=None,
        help="HTTP mode: serve every artifact subdirectory of this "
        "directory as a named model (hot-reloaded on manifest change "
        "when --reload-interval is set)",
    )
    serve.add_argument(
        "--model-name",
        default=None,
        help="HTTP mode: name the single --model artifact is served "
        "under (default: its directory name)",
    )
    serve.add_argument(
        "--reload-interval",
        type=float,
        default=None,
        help="HTTP mode: rescan the registry for changed/added/removed "
        "artifacts every this many seconds (hot reload)",
    )
    serve.add_argument(
        "--requests", type=int, default=32, help="single-image requests"
    )
    add_backend_arguments(serve, capability="progressive")
    serve.add_argument("--max-batch-size", type=int, default=16)
    serve.add_argument("--max-wait-ms", type=float, default=5.0)
    serve.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="service worker threads (forced to 1 when --workers shards "
        "across processes instead)",
    )
    serve.add_argument("--cache-capacity", type=int, default=256)
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request latency budget (deadline-aware exits)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="bounded admission: shed submits past this many in-flight "
        "requests (default: unbounded)",
    )
    serve.add_argument(
        "--shed-unmeetable-deadlines",
        action="store_true",
        help="reject requests whose --deadline-ms cannot buy the first "
        "checkpoint at the observed streaming rate",
    )
    serve.add_argument(
        "--degrade-queue-depth",
        type=int,
        default=None,
        help="overload degradation: past this queue depth, answer from "
        "a truncated checkpoint schedule",
    )
    serve.add_argument(
        "--degraded-max-fraction",
        type=float,
        default=0.5,
        help="largest checkpoint fraction of N served while degraded",
    )
    serve.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="fraction of requests that record a full span trace "
        "(0 disables tracing, 1 traces everything)",
    )
    serve.add_argument(
        "--metrics-file",
        default=None,
        help="write the final service snapshot in Prometheus text "
        "exposition format to this file",
    )
    serve.add_argument(
        "--trace-file",
        default=None,
        help="stream sampled traces and fault events to this JSONL file",
    )
    serve.add_argument(
        "--fleet-workers",
        type=int,
        default=None,
        help="serve through a supervised multi-process worker fleet of "
        "this many processes (heartbeats, crash restart, failover) "
        "instead of one in-process service",
    )
    serve.add_argument(
        "--hedge-after-ms",
        type=float,
        default=None,
        help="fleet mode: speculatively re-dispatch a request to a "
        "second worker after this long (tail-latency hedging)",
    )
    serve.set_defaults(func=_cmd_serve)

    metrics = commands.add_parser(
        "metrics",
        help="serve a burst and export Prometheus text-exposition metrics",
    )
    metrics.add_argument("--model", required=True, help="artifact directory")
    metrics.add_argument(
        "--requests", type=int, default=32, help="single-image requests"
    )
    add_backend_arguments(metrics, capability="progressive")
    metrics.add_argument("--service-workers", type=int, default=2)
    metrics.add_argument("--cache-capacity", type=int, default=256)
    metrics.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="trace sampling during the burst (reflected in the "
        "repro_traces_* gauges)",
    )
    metrics.add_argument(
        "--output",
        default=None,
        help="file for the exposition text (default: stdout)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    trace = commands.add_parser(
        "trace",
        help="serve a burst at sample rate 1.0 and print every span tree",
    )
    trace.add_argument("--model", required=True, help="artifact directory")
    trace.add_argument(
        "--requests", type=int, default=8, help="single-image requests"
    )
    add_backend_arguments(trace, capability="progressive")
    trace.add_argument("--service-workers", type=int, default=2)
    trace.add_argument("--cache-capacity", type=int, default=256)
    trace.add_argument(
        "--show",
        type=int,
        default=3,
        help="span trees printed in full (most recent; 0 = all)",
    )
    trace.add_argument(
        "--json", default=None, help="also write every trace as JSONL"
    )
    trace.set_defaults(func=_cmd_trace)

    backends = commands.add_parser(
        "backends", help="list the execution-backend registry"
    )
    backends.set_defaults(func=_cmd_backends)

    models = commands.add_parser(
        "models",
        help="list model-artifact catalog metadata (manifests only)",
    )
    models.add_argument(
        "--registry",
        default=None,
        help="directory whose artifact subdirectories are listed",
    )
    models.add_argument(
        "--model",
        action="append",
        default=None,
        help="explicit artifact directory to list (repeatable)",
    )
    models.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )
    models.set_defaults(func=_cmd_models)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also invoked by ``python -m repro``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module CLI convenience
    sys.exit(main())
