"""Versioned on-disk model artifacts (`ScModel`).

The paper's pipeline is train-once / deploy-forever: the SC-AQFP network
is trained in software, then executed as a fixed superconducting datapath.
:class:`ScModel` makes the trained network that portable artifact -- a
directory holding

* ``manifest.json`` -- format name + ``(major, minor)`` format version,
  the architecture spec (one entry per layer, reconstructible without the
  training code), the SC quantisation/stream configuration
  (``weight_bits``, ``stream_length``, ``seed``), free-form training
  metadata, and a SHA-256 digest of each payload file;
* ``weights.npz`` -- every trainable parameter array, in layer order;
* ``quantized.npz`` (format >= 1.1) -- the integer SNG comparator codes
  of every parameter, i.e. the values the proposed hardware actually
  stores on chip.  ``dequantize_weights(codes)`` reproduces
  ``quantize_weights(weights)`` bit-exactly, so a loaded model hands the
  mapper ready-made quantised parameters instead of re-deriving them
  per entry point; 1.0 artifacts without the file still load (the
  mapper falls back to quantising on the fly).

``save`` / ``load`` round-trip **bit-exactly**: the reconstructed
:class:`~repro.nn.sc_layers.ScNetworkMapper` consumes its RNG identically
to the original (streams depend only on the quantised weights, the stream
configuration and the seed, all of which the artifact pins), so scores
under any bit-exact backend are identical across save/load and across
processes -- asserted by ``tests/test_api.py`` and the CI ``cli-smoke``
job.

Version policy: loading rejects a different *major* version (the layout
changed incompatibly) with a :class:`~repro.errors.ConfigurationError`;
newer *minor* versions load (additive fields are ignored by older
readers).
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    Layer,
    LogitScale,
    Network,
)
from repro.nn.quantization import dequantize_weights, quantization_codes
from repro.nn.sc_layers import ScNetworkMapper

__all__ = ["ScModel", "FORMAT_NAME", "FORMAT_VERSION"]

#: Artifact format identifier stored in every manifest.
FORMAT_NAME = "repro.sc-model"

#: ``(major, minor)`` of the artifact layout this build reads and writes.
#: 1.1 added ``quantized.npz`` (native integer comparator codes); 1.0
#: artifacts still load, and 1.0 readers ignore the additive file.
FORMAT_VERSION = (1, 1)

_MANIFEST = "manifest.json"
_WEIGHTS = "weights.npz"
_QUANTIZED = "quantized.npz"


def _layer_to_spec(layer: Layer) -> dict[str, Any]:
    """Serializable description of one layer (weights stored separately)."""
    if isinstance(layer, Conv2D):
        return {
            "kind": "conv2d",
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "kernel_size": layer.kernel_size,
            "stride": layer.stride,
            "padding": layer.padding,
        }
    if isinstance(layer, AvgPool2D):
        return {"kind": "avgpool2d", "pool_size": layer.pool_size}
    if isinstance(layer, Flatten):
        return {"kind": "flatten"}
    if isinstance(layer, Dense):
        return {
            "kind": "dense",
            "in_features": layer.in_features,
            "out_features": layer.out_features,
        }
    if isinstance(layer, HardwareActivation):
        return {
            "kind": "hardware_activation",
            "fan_in": layer.fan_in,
            "stream_length": layer.stream_length,
        }
    if isinstance(layer, ClipActivation):
        return {"kind": "clip_activation"}
    if isinstance(layer, LogitScale):
        return {"kind": "logit_scale", "scale": layer.scale}
    raise ConfigurationError(
        f"cannot serialize layer {type(layer).__name__} into a model artifact"
    )


def _layer_from_spec(spec: dict[str, Any]) -> Layer:
    """Rebuild one layer from its manifest entry (weights loaded later)."""
    try:
        kind = spec["kind"]
        if kind == "conv2d":
            return Conv2D(
                int(spec["in_channels"]),
                int(spec["out_channels"]),
                int(spec["kernel_size"]),
                int(spec["stride"]),
                str(spec["padding"]),
            )
        if kind == "avgpool2d":
            return AvgPool2D(int(spec["pool_size"]))
        if kind == "flatten":
            return Flatten()
        if kind == "dense":
            return Dense(int(spec["in_features"]), int(spec["out_features"]))
        if kind == "hardware_activation":
            stream_length = spec.get("stream_length")
            return HardwareActivation(
                int(spec["fan_in"]),
                stream_length=(
                    None if stream_length is None else int(stream_length)
                ),
            )
        if kind == "clip_activation":
            return ClipActivation()
        if kind == "logit_scale":
            return LogitScale(float(spec["scale"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"corrupted layer spec in model manifest: {spec!r}"
        ) from exc
    raise ConfigurationError(f"unknown layer kind {kind!r} in model manifest")


def _corrupt(path: Path, reason: str) -> ConfigurationError:
    return ConfigurationError(f"corrupted model artifact at {path}: {reason}")


class ScModel:
    """A trained SC network plus everything needed to re-execute it.

    The in-memory counterpart of the on-disk artifact: the float network,
    the SC quantisation / stream configuration, and free-form training
    metadata.  ``ScModel`` is what the :class:`~repro.api.Session` facade,
    the ``python -m repro`` CLI and the serving benchmarks pass around
    instead of retraining networks per entry point.

    Args:
        network: the trained float network (weights inside ``[-1, 1]``).
        weight_bits: stored binary precision used for quantisation.
        stream_length: stochastic stream length ``N``.
        seed: seed for stream generation / noise injection.
        metadata: free-form JSON-serialisable training metadata (dataset
            parameters, epochs, reference accuracies, ...).
        quantized_params: optional pre-quantised parameter arrays (one
            per network parameter, in layer order) as loaded from a
            1.1 artifact's ``quantized.npz``; handed to the mapper so it
            skips per-call quantisation.  ``None`` (the default, and
            what 1.0 artifacts yield) makes the mapper quantise on the
            fly -- bit-identical either way.
    """

    def __init__(
        self,
        network: Network,
        weight_bits: int = 10,
        stream_length: int = 1024,
        seed: int = 2019,
        metadata: dict[str, Any] | None = None,
        quantized_params: list[np.ndarray] | None = None,
    ) -> None:
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        if weight_bits <= 0 or weight_bits > 32:
            raise ConfigurationError(
                f"weight_bits must be in [1, 32], got {weight_bits}"
            )
        self.network = network
        self.weight_bits = int(weight_bits)
        self.stream_length = int(stream_length)
        self.seed = int(seed)
        self.metadata: dict[str, Any] = dict(metadata or {})
        self.quantized_params = quantized_params
        self._mapper: ScNetworkMapper | None = None

    @classmethod
    def from_mapper(
        cls, mapper: ScNetworkMapper, metadata: dict[str, Any] | None = None
    ) -> "ScModel":
        """Wrap an existing mapper's network and stream configuration."""
        return cls(
            mapper.network,
            weight_bits=mapper.weight_bits,
            stream_length=mapper.stream_length,
            seed=mapper.seed,
            metadata=metadata,
        )

    def mapper(self) -> ScNetworkMapper:
        """The SC network mapper executing this model (built once).

        Reconstruction is bit-exact: the mapper's stream randomness
        depends only on the quantised weights, ``stream_length``,
        ``weight_bits`` and ``seed``, all of which the artifact pins, so
        a loaded model scores identically to the original under every
        bit-exact backend.
        """
        if self._mapper is None:
            self._mapper = ScNetworkMapper(
                self.network,
                weight_bits=self.weight_bits,
                stream_length=self.stream_length,
                seed=self.seed,
                quantized_params=self.quantized_params,
            )
        return self._mapper

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the artifact directory.

        ``manifest.json`` + ``weights.npz`` + ``quantized.npz``: the
        float parameters are kept (older readers, float-backend
        fidelity) and the integer comparator codes are stored natively
        alongside them -- what the SNG hardware holds on chip, and what
        the mapper consumes without re-quantising.

        Args:
            path: artifact directory; created (parents included) if
                missing, overwritten in place if it already holds an
                artifact.

        Returns:
            The artifact directory path.
        """
        path = Path(path)
        if path.exists() and not path.is_dir():
            raise ConfigurationError(
                f"artifact path {path} exists and is not a directory"
            )
        path.mkdir(parents=True, exist_ok=True)
        params = self.network.parameters()
        arrays = {
            f"param_{i:04d}": np.asarray(p, dtype=np.float64)
            for i, p in enumerate(params)
        }
        with open(path / _WEIGHTS, "wb") as fh:
            np.savez(fh, **arrays)
        weights_sha256 = hashlib.sha256(
            (path / _WEIGHTS).read_bytes()
        ).hexdigest()
        codes = {
            f"qparam_{i:04d}": quantization_codes(p, self.weight_bits)
            for i, p in enumerate(params)
        }
        with open(path / _QUANTIZED, "wb") as fh:
            np.savez(fh, **codes)
        quantized_sha256 = hashlib.sha256(
            (path / _QUANTIZED).read_bytes()
        ).hexdigest()
        manifest = {
            "format": FORMAT_NAME,
            "format_version": list(FORMAT_VERSION),
            "network": {
                "name": self.network.name,
                "layers": [_layer_to_spec(l) for l in self.network.layers],
                "n_parameters": len(params),
            },
            "weight_bits": self.weight_bits,
            "stream_length": self.stream_length,
            "seed": self.seed,
            "metadata": self.metadata,
            "weights_sha256": weights_sha256,
            "quantized_sha256": quantized_sha256,
        }
        (path / _MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
        return path

    @classmethod
    def read_manifest(cls, path: str | Path) -> dict[str, Any]:
        """Parse and version-check an artifact's manifest (weights untouched).

        Cheap enough for config cross-checks (e.g.
        :class:`~repro.backends.parallel.ParallelBackend` validating that
        a shared artifact matches the mapper it was constructed with)
        without loading the weight arrays.
        """
        path = Path(path)
        manifest_path = path / _MANIFEST
        if not manifest_path.is_file():
            raise ConfigurationError(
                f"no model artifact at {path} (missing {_MANIFEST})"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _corrupt(path, f"manifest is not valid JSON ({exc})") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
            raise _corrupt(
                path,
                f"manifest format is {manifest.get('format')!r}, "
                f"expected {FORMAT_NAME!r}",
            )
        version = manifest.get("format_version")
        if (
            not isinstance(version, list)
            or len(version) != 2
            or not all(isinstance(v, int) for v in version)
        ):
            raise _corrupt(path, f"malformed format_version {version!r}")
        if version[0] != FORMAT_VERSION[0]:
            raise ConfigurationError(
                f"model artifact at {path} has format version "
                f"{version[0]}.{version[1]}; this build reads major version "
                f"{FORMAT_VERSION[0]} (re-export the model with a matching "
                f"release)"
            )
        return manifest

    @classmethod
    def load(cls, path: str | Path) -> "ScModel":
        """Load an artifact directory back into a bit-exact ``ScModel``.

        Raises:
            ConfigurationError: when the artifact is missing, its manifest
                is corrupted or of an incompatible major version, or the
                weights file does not match the manifest (digest, count or
                shape mismatch).
        """
        path = Path(path)
        manifest = cls.read_manifest(path)
        weights_path = path / _WEIGHTS
        if not weights_path.is_file():
            raise _corrupt(path, f"missing {_WEIGHTS}")
        # One read serves both the digest check and the array load (every
        # ParallelBackend worker rehydrating from a shared artifact pays
        # this path).
        payload = weights_path.read_bytes()
        recorded = manifest.get("weights_sha256")
        if recorded is not None:
            actual = hashlib.sha256(payload).hexdigest()
            if actual != recorded:
                raise _corrupt(
                    path,
                    f"weights digest mismatch (manifest {recorded[:12]}..., "
                    f"file {actual[:12]}...)",
                )
        try:
            network_spec = manifest["network"]
            layers = [_layer_from_spec(s) for s in network_spec["layers"]]
            network = Network(layers, name=str(network_spec.get("name", "network")))
        except (KeyError, TypeError) as exc:
            raise _corrupt(path, f"malformed network spec ({exc})") from exc
        params = network.parameters()
        try:
            with np.load(io.BytesIO(payload)) as archive:
                stored = {name: archive[name] for name in archive.files}
        except (OSError, ValueError) as exc:
            raise _corrupt(path, f"unreadable weights ({exc})") from exc
        if len(stored) != len(params):
            raise _corrupt(
                path,
                f"{len(stored)} stored parameter arrays for "
                f"{len(params)} network parameters",
            )
        for i, param in enumerate(params):
            key = f"param_{i:04d}"
            if key not in stored:
                raise _corrupt(path, f"missing parameter array {key}")
            value = stored[key]
            if value.shape != param.shape:
                raise _corrupt(
                    path,
                    f"parameter {key} has shape {value.shape}, "
                    f"expected {param.shape}",
                )
            param[...] = value.astype(np.float64, copy=False)
        try:
            weight_bits = int(manifest["weight_bits"])
        except (KeyError, TypeError, ValueError) as exc:
            raise _corrupt(path, f"malformed stream configuration ({exc})") from exc
        quantized_params = cls._load_quantized(path, manifest, params, weight_bits)
        try:
            return cls(
                network,
                weight_bits=weight_bits,
                stream_length=int(manifest["stream_length"]),
                seed=int(manifest["seed"]),
                metadata=manifest.get("metadata") or {},
                quantized_params=quantized_params,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise _corrupt(path, f"malformed stream configuration ({exc})") from exc

    @classmethod
    def _load_quantized(
        cls,
        path: Path,
        manifest: dict[str, Any],
        params: list[np.ndarray],
        weight_bits: int,
    ) -> list[np.ndarray] | None:
        """Load ``quantized.npz`` when the manifest records it (>= 1.1).

        Pre-1.1 artifacts have no ``quantized_sha256`` field and yield
        ``None`` (the mapper quantises on the fly -- bit-identical); a
        manifest that records the file makes it mandatory, digest-checked
        and shape-validated like the float weights.
        """
        recorded = manifest.get("quantized_sha256")
        if recorded is None:
            return None
        quantized_path = path / _QUANTIZED
        if not quantized_path.is_file():
            raise _corrupt(
                path,
                f"manifest records quantized codes but {_QUANTIZED} is missing",
            )
        payload = quantized_path.read_bytes()
        actual = hashlib.sha256(payload).hexdigest()
        if actual != recorded:
            raise _corrupt(
                path,
                f"quantized digest mismatch (manifest {recorded[:12]}..., "
                f"file {actual[:12]}...)",
            )
        try:
            with np.load(io.BytesIO(payload)) as archive:
                stored = {name: archive[name] for name in archive.files}
        except (OSError, ValueError) as exc:
            raise _corrupt(path, f"unreadable quantized codes ({exc})") from exc
        if len(stored) != len(params):
            raise _corrupt(
                path,
                f"{len(stored)} quantized parameter arrays for "
                f"{len(params)} network parameters",
            )
        quantized_params = []
        for i, param in enumerate(params):
            key = f"qparam_{i:04d}"
            if key not in stored:
                raise _corrupt(path, f"missing quantized array {key}")
            codes = stored[key]
            if codes.shape != param.shape:
                raise _corrupt(
                    path,
                    f"quantized array {key} has shape {codes.shape}, "
                    f"expected {param.shape}",
                )
            quantized_params.append(dequantize_weights(codes, weight_bits))
        return quantized_params

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScModel(network={self.network.name!r}, "
            f"weight_bits={self.weight_bits}, "
            f"stream_length={self.stream_length}, seed={self.seed})"
        )
