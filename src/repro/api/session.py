"""`Session`: the unified load-and-serve facade of the public API.

One object, three verbs::

    session = Session.from_artifact("artifacts/snn", backend="bit-exact-packed")
    result  = session.predict(images, PredictOptions(early_exit=True))
    report  = session.evaluate(images, labels)
    with session.serve() as service:
        future = service.submit(image, PredictOptions(deadline_ms=5.0))

A session wraps one :class:`~repro.api.artifact.ScModel` (loaded from an
artifact or built from a freshly trained network), owns the
:class:`~repro.nn.sc_layers.ScNetworkMapper` and a cache of constructed
execution backends, resolves per-request
:class:`~repro.config.PredictOptions` against the model's stream length,
and hands the micro-batching service everything it needs -- including the
artifact path, so process-sharded replicas rehydrate from the shared file
instead of pickling mappers per worker.

`ScInferenceEngine`, ``repro.serve``, the evaluation reports, the examples
and the ``python -m repro`` CLI are all rewired through this facade; new
entry points should not talk to mapper internals directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.api.artifact import ScModel
from repro.backends import backend_class, create_backend, resolve_parallel_backend
from repro.backends.parallel import ParallelBackend
from repro.config import FleetConfig, PredictOptions, ServiceConfig
from repro.errors import ConfigurationError
from repro.serve import FleetRouter, ScInferenceService, progressive_forward

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.backends.base import Backend
    from repro.nn.layers import Network
    from repro.nn.sc_layers import ScNetworkMapper

__all__ = ["PredictResult", "Session"]


@dataclass(frozen=True)
class PredictResult:
    """Outcome of one :meth:`Session.predict` call.

    Attributes:
        scores: ``(batch, n_classes)`` class scores at each image's exit
            checkpoint (the full effective stream when no early exit
            fired).
        predictions: ``(batch,)`` predicted class indices.
        exit_checkpoints: ``(batch,)`` stream cycles each image consumed.
        stream_length: effective stream length the request ran at.
        checkpoints: the evaluated checkpoint schedule (``(N,)`` for a
            plain full-stream forward pass).
        checkpoint_scores: ``(n_checkpoints, batch, n_classes)`` scores at
            every checkpoint when a progressive schedule was evaluated,
            else ``None``.
        backend: registry name of the backend that produced the scores.
    """

    scores: np.ndarray
    predictions: np.ndarray
    exit_checkpoints: np.ndarray
    stream_length: int
    checkpoints: tuple[int, ...]
    checkpoint_scores: np.ndarray | None
    backend: str


class Session:
    """Load-and-serve facade over one trained SC model.

    Args:
        model: the model to execute.
        backend: default registry backend name (validated eagerly so a
            typo fails at construction, not at first predict).
        artifact_path: artifact directory this session was loaded from
            (``None`` for in-memory models); forwarded to process-sharded
            backends so worker replicas rehydrate from the shared file.
        **backend_options: default constructor options for every backend
            this session builds (e.g. ``position_chunk``).
    """

    def __init__(
        self,
        model: ScModel,
        backend: str = "bit-exact-packed",
        artifact_path: str | Path | None = None,
        **backend_options: object,
    ) -> None:
        backend_class(backend)  # fail fast on unknown names
        self.model = model
        self.backend_name = backend
        self.artifact_path = Path(artifact_path) if artifact_path else None
        self.backend_options = dict(backend_options)
        self._backends: dict[tuple, "Backend"] = {}
        self._closed = False

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        backend: str = "bit-exact-packed",
        **backend_options: object,
    ) -> "Session":
        """Open a session on a saved model artifact.

        Args:
            path: artifact directory written by
                :meth:`~repro.api.artifact.ScModel.save`.
            backend: default execution backend for this session.
            **backend_options: default backend constructor options.
        """
        model = ScModel.load(path)
        return cls(model, backend=backend, artifact_path=path, **backend_options)

    @classmethod
    def from_network(
        cls,
        network: "Network",
        weight_bits: int = 10,
        stream_length: int = 1024,
        seed: int = 2019,
        backend: str = "bit-exact-packed",
        metadata: dict | None = None,
        **backend_options: object,
    ) -> "Session":
        """Open a session on a freshly trained in-memory network."""
        model = ScModel(
            network,
            weight_bits=weight_bits,
            stream_length=stream_length,
            seed=seed,
            metadata=metadata,
        )
        return cls(model, backend=backend, **backend_options)

    # -- model plumbing --------------------------------------------------------

    @property
    def mapper(self) -> "ScNetworkMapper":
        """The SC network mapper executing this session's model."""
        return self.model.mapper()

    @property
    def stream_length(self) -> int:
        """Full stochastic stream length ``N`` of the model."""
        return self.model.stream_length

    def save(self, path: str | Path) -> Path:
        """Export the session's model as an artifact (see :class:`ScModel`)."""
        saved = self.model.save(path)
        if self.artifact_path is None:
            self.artifact_path = saved
        return saved

    def backend(self, name: str | None = None, **options: object) -> "Backend":
        """A backend executing this session's model (cached per options).

        Args:
            name: registry name; ``None`` uses the session default.
            **options: backend constructor options, merged over the
                session-level defaults.  Process-sharded backends of a
                session loaded from an artifact automatically receive the
                artifact path so their worker replicas rehydrate from the
                shared file.
        """
        if self._closed:
            raise ConfigurationError("session is closed")
        name = name or self.backend_name
        merged = {**self.backend_options, **options}
        if (
            self.artifact_path is not None
            and issubclass(backend_class(name), ParallelBackend)
        ):
            merged.setdefault("artifact_path", str(self.artifact_path))
        try:
            key = (name, tuple(sorted(merged.items())))
            cached = self._backends.get(key)
        except TypeError:
            # Unhashable option values (the lookup hashes the key):
            # construct without caching.
            return create_backend(name, self.mapper, **merged)
        if cached is None:
            cached = self._backends[key] = create_backend(
                name, self.mapper, **merged
            )
        return cached

    # -- inference -------------------------------------------------------------

    def predict(
        self,
        images: np.ndarray,
        options: PredictOptions | None = None,
        backend: str | None = None,
    ) -> PredictResult:
        """Class scores and predictions under per-request options.

        Resolution: ``options.workers`` (with ``options.executor``)
        selects a sharded
        wrapper via the shared :func:`resolve_parallel_backend` policy; an
        explicit per-request ``stream_length`` / ``checkpoints`` schedule
        is read from stream prefixes (requires a progressive backend);
        ``early_exit`` applies the serving layer's stability + margin
        policy.  ``deadline_ms`` only has meaning under the queueing
        service and is ignored here.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (one ``(channels, height, width)`` image is
                promoted to a batch of one).
            options: per-request options; ``None`` is a plain full-stream
                forward pass.
            backend: registry name overriding the session default.
        """
        resolved = (options or PredictOptions()).resolve(self.stream_length)
        name, parallel_options = resolve_parallel_backend(
            backend or self.backend_name, resolved.workers, resolved.executor
        )
        executor = self.backend(name, **parallel_options)
        if resolved.explicit_schedule and not executor.progressive:
            raise ConfigurationError(
                f"backend {executor.name!r} is not progressive: per-request "
                "stream lengths / checkpoint schedules need stream-prefix "
                "evaluation (pick a backend whose 'progressive' flag is set)"
            )
        if resolved.early_exit:
            result = progressive_forward(
                executor, images, checkpoints=resolved.checkpoints
            )
            return PredictResult(
                scores=result.scores,
                predictions=result.predictions,
                exit_checkpoints=result.exit_checkpoints,
                stream_length=resolved.stream_length,
                checkpoints=result.checkpoints,
                checkpoint_scores=result.checkpoint_scores,
                backend=executor.name,
            )
        if resolved.explicit_schedule:
            checkpoint_scores = np.asarray(
                executor.forward_partial(images, resolved.checkpoints)
            )
            scores = checkpoint_scores[-1]
            exits = np.full(scores.shape[0], resolved.checkpoints[-1])
            return PredictResult(
                scores=scores,
                predictions=np.argmax(scores, axis=-1),
                exit_checkpoints=exits,
                stream_length=resolved.stream_length,
                checkpoints=resolved.checkpoints,
                checkpoint_scores=checkpoint_scores,
                backend=executor.name,
            )
        scores = np.asarray(executor.forward(images))
        return PredictResult(
            scores=scores,
            predictions=np.argmax(scores, axis=-1),
            exit_checkpoints=np.full(scores.shape[0], resolved.stream_length),
            stream_length=resolved.stream_length,
            checkpoints=(resolved.stream_length,),
            checkpoint_scores=None,
            backend=executor.name,
        )

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        backend: str | None = None,
        max_images: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        **options: object,
    ):
        """Accuracy of the model under the named execution backend.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]``.
            labels: integer class labels.
            backend: registry name; ``None`` uses the session default.
            max_images: optional cap on the number of images evaluated
                (bounds the memory of the bit-exact backends).
            workers: shard the evaluation across this many workers
                (shared :func:`resolve_parallel_backend` policy).
            executor: ``"process"`` / ``"thread"`` shard executor;
                ``None`` picks by inner backend (threads for the
                compiled native tier).
            **options: forwarded to the backend constructor.

        Returns:
            An :class:`~repro.nn.inference.InferenceResult` whose ``mode``
            is the executing backend's name.
        """
        # Imported lazily: repro.nn.inference imports this module's
        # Session (also lazily), so a module-level import would be
        # circular at first load.
        from repro.nn.inference import InferenceResult

        if max_images is not None and max_images < 1:
            raise ConfigurationError("max_images must be >= 1")
        images = np.asarray(images)[:max_images]
        labels = np.asarray(labels)[:max_images]
        name, parallel_options = resolve_parallel_backend(
            backend or self.backend_name, workers, executor
        )
        # Explicit caller options win over the resolved sharding defaults
        # (e.g. a caller-provided inner_backend).
        executor = self.backend(name, **{**parallel_options, **options})
        accuracy = executor.accuracy(images, labels)
        return InferenceResult(
            accuracy, len(labels), self.stream_length, executor.name
        )

    def serve(
        self,
        config: ServiceConfig | None = None,
        **backend_options: object,
    ) -> ScInferenceService:
        """Stand up the micro-batching inference service on this model.

        Args:
            config: service knobs; ``None`` serves the session's default
                backend with the :class:`~repro.config.ServiceConfig`
                defaults.
            **backend_options: forwarded to every worker replica's
                constructor.

        Returns:
            A running :class:`~repro.serve.ScInferenceService` (use as a
            context manager or call ``close()``).
        """
        if self._closed:
            raise ConfigurationError("session is closed")
        config = config or ServiceConfig(backend=self.backend_name)
        return ScInferenceService(
            self.mapper,
            config,
            artifact_path=self.artifact_path,
            **{**self.backend_options, **backend_options},
        )

    def serve_fleet(self, config: FleetConfig | None = None) -> FleetRouter:
        """Stand up a supervised multi-process worker fleet on this model.

        Every worker process rehydrates its own bit-exact service from
        this session's artifact, so the session must be artifact-backed:
        open it with :meth:`from_artifact`, or :meth:`save` an in-memory
        model first.

        Args:
            config: fleet knobs (:class:`~repro.config.FleetConfig`);
                ``None`` spawns two workers running the session's default
                backend.

        Returns:
            A running :class:`~repro.serve.FleetRouter` (use as a context
            manager or call ``close()`` for a graceful drain).
        """
        if self._closed:
            raise ConfigurationError("session is closed")
        if self.artifact_path is None:
            raise ConfigurationError(
                "fleet serving needs a shared artifact for workers to "
                "rehydrate from: save() this session's model first (or "
                "open it with Session.from_artifact)"
            )
        if config is None:
            config = FleetConfig(
                service=ServiceConfig(backend=self.backend_name)
            )
        return FleetRouter(self.artifact_path, config)

    # -- observability ---------------------------------------------------------

    def obs_snapshot(self) -> dict:
        """Kernel-tier counters and arena stats of this session's backends.

        The session-level analogue of
        ``ScInferenceService.snapshot()["kernels"]`` for direct
        ``predict`` / ``evaluate`` use: per-kernel, per-tier invocation
        counters merged across every backend the session has built, plus
        each backend's workspace-arena statistics.
        """
        from repro.obs import merge_kernel_snapshots

        backends = list(self._backends.values())
        workspaces = []
        for executor in backends:
            stats = executor.workspace_stats()
            if stats is not None:
                workspaces.append({"backend": executor.name, **stats})
        return {
            "kernels": merge_kernel_snapshots(
                executor.kernel_snapshot() for executor in backends
            ),
            "workspaces": workspaces,
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release every cached backend (process pools, arenas)."""
        if self._closed:
            return
        self._closed = True
        for executor in self._backends.values():
            executor.close()
        self._backends.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        source = (
            f"artifact={str(self.artifact_path)!r}"
            if self.artifact_path
            else "in-memory"
        )
        return (
            f"Session(network={self.model.network.name!r}, "
            f"backend={self.backend_name!r}, "
            f"stream_length={self.stream_length}, {source})"
        )
