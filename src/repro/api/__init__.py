"""Public API: versioned model artifacts, sessions, per-request options.

The single entry point for loading and serving trained SC-AQFP models --
the train-once / deploy-forever surface the rest of the repo (engine,
serving layer, evaluation reports, examples, the ``python -m repro`` CLI)
is built on:

* :class:`ScModel` -- a versioned on-disk artifact (``weights.npz`` +
  ``manifest.json``) whose ``save``/``load`` round-trip reconstructs a
  bit-identical :class:`~repro.nn.sc_layers.ScNetworkMapper` (same RNG
  consumption, identical scores across processes).
* :class:`Session` -- the facade:
  ``Session.from_artifact(path, backend="bit-exact-packed")`` then
  ``.predict()`` / ``.evaluate()`` / ``.serve()``.
* :class:`~repro.config.PredictOptions` -- typed per-request inference
  options (stream length, checkpoint schedule, early exit, deadline,
  workers), validated once and threaded through
  :meth:`~repro.backends.base.Backend.forward_partial` and the serving
  layer (re-exported here from :mod:`repro.config`).

Quickstart::

    from repro.api import Session, PredictOptions

    session = Session.from_artifact("artifacts/snn")
    print(session.predict(images).predictions)
    with session.serve() as service:
        response = service.infer(image, PredictOptions(deadline_ms=5.0))
"""

from repro.api.artifact import FORMAT_NAME, FORMAT_VERSION, ScModel
from repro.api.session import PredictResult, Session
from repro.config import PredictOptions, ResolvedPredictOptions

__all__ = [
    "ScModel",
    "Session",
    "PredictResult",
    "PredictOptions",
    "ResolvedPredictOptions",
    "FORMAT_NAME",
    "FORMAT_VERSION",
]
