"""Pluggable execution backends for SC network inference.

The backend layer separates the *description* of a mapped network
(:class:`~repro.nn.sc_layers.ScNetworkMapper`) from the *simulation
strategy* that evaluates it.  Every strategy implements the
:class:`~repro.backends.base.Backend` protocol and registers itself under
a string key, so engines, reports, examples and benchmarks select an
execution path by name:

=================== ========= ========== ======= =================================
name                bit-exact stochastic packed  what it runs
=================== ========= ========== ======= =================================
``float``           no        no         --      trained float network (reference)
``sc-fast``         no        yes        --      fast statistical SC model
``bit-exact-legacy``  yes     yes        no      per-image byte-per-bit oracle
``bit-exact-batched`` yes     yes        no      whole-layer batched uint8 path
``bit-exact-packed``  yes     yes        yes     word-packed end-to-end data plane
=================== ========= ========== ======= =================================

All three ``bit-exact-*`` backends produce *identical* scores; they only
differ in speed.  To add a backend, subclass
:class:`~repro.backends.base.Backend`, set ``name`` plus the capability
flags, implement ``forward``, and decorate the class with
:func:`~repro.backends.registry.register_backend`.
"""

from repro.backends.base import Backend
from repro.backends.packed import BitExactPackedBackend
from repro.backends.registry import (
    backend_class,
    backend_names,
    create_backend,
    register_backend,
)
from repro.backends.standard import (
    BitExactBatchedBackend,
    BitExactLegacyBackend,
    FastStatisticalBackend,
    FloatBackend,
)

__all__ = [
    "Backend",
    "register_backend",
    "backend_class",
    "backend_names",
    "create_backend",
    "FloatBackend",
    "FastStatisticalBackend",
    "BitExactLegacyBackend",
    "BitExactBatchedBackend",
    "BitExactPackedBackend",
]
