"""Pluggable execution backends for SC network inference.

The backend layer separates the *description* of a mapped network
(:class:`~repro.nn.sc_layers.ScNetworkMapper`) from the *simulation
strategy* that evaluates it.  Every strategy implements the
:class:`~repro.backends.base.Backend` protocol and registers itself under
a string key, so engines, reports, examples and benchmarks select an
execution path by name:

========================= ========= ========== ======= =========== =====================
name                      bit-exact stochastic packed  progressive what it runs
========================= ========= ========== ======= =========== =====================
``float``                 no        no         --      no          trained float network
``sc-fast``               no        yes        --      yes         fast statistical model
``bit-exact-legacy``        yes     yes        no      yes         per-image oracle
``bit-exact-batched``       yes     yes        no      yes         batched uint8 path
``bit-exact-packed``        yes     yes        yes     yes         packed data plane
``bit-exact-native``        yes     yes        yes     yes         packed plane, compiled kernels
``bit-exact-packed-mp``     yes     yes        yes     yes         packed plane, process-sharded
``bit-exact-native-mp``     yes     yes        yes     yes         native plane, thread-sharded
========================= ========= ========== ======= =========== =====================

All ``bit-exact-*`` backends produce *identical* scores; they only
differ in speed.  ``batch_invariant`` backends guarantee per-image scores
independent of batch composition, which is what lets
:class:`~repro.backends.parallel.ParallelBackend` shard batches across a
process pool bit-exactly.  ``progressive`` backends additionally implement
:meth:`~repro.backends.base.Backend.forward_partial` (class scores at
intermediate stream-length checkpoints), the primitive the serving layer
(:mod:`repro.serve`) uses for micro-batched inference with
progressive-precision early exit.  To add a backend, subclass
:class:`~repro.backends.base.Backend`, set ``name`` plus the capability
flags, implement ``forward``, and decorate the class with
:func:`~repro.backends.registry.register_backend`.
"""

from repro.backends.base import Backend
from repro.backends.native import BitExactNativeBackend
from repro.backends.packed import BitExactPackedBackend
from repro.backends.parallel import (
    NativeParallelBackend,
    ParallelBackend,
    resolve_parallel_backend,
)
from repro.backends.registry import (
    backend_class,
    backend_names,
    create_backend,
    describe_backends,
    register_backend,
)
from repro.backends.standard import (
    BitExactBatchedBackend,
    BitExactLegacyBackend,
    FastStatisticalBackend,
    FloatBackend,
)

__all__ = [
    "Backend",
    "register_backend",
    "backend_class",
    "backend_names",
    "describe_backends",
    "create_backend",
    "FloatBackend",
    "FastStatisticalBackend",
    "BitExactLegacyBackend",
    "BitExactBatchedBackend",
    "BitExactPackedBackend",
    "BitExactNativeBackend",
    "ParallelBackend",
    "NativeParallelBackend",
    "resolve_parallel_backend",
]
