"""The migrated execution backends: float, fast-statistical, bit-exact.

Each class wraps one of the evaluation modes that used to live as ad-hoc
methods on the inference engine / network mapper, preserving their exact
numerical behaviour (batching, RNG seeding order, chunking defaults) so
that scores are unchanged mode for mode:

* :class:`FloatBackend` -- the trained float network itself (software
  reference accuracy).
* :class:`FastStatisticalBackend` -- the fast statistical SC model
  (quantised weights, hardware transfer curves, optional stream noise).
* :class:`BitExactLegacyBackend` -- the per-image, small-chunk bit-exact
  block simulation (the equivalence oracle and perf baseline).
* :class:`BitExactBatchedBackend` -- the whole-layer batched bit-exact
  path introduced in PR 1.

The fully packed data plane lives in
:class:`repro.backends.packed.BitExactPackedBackend`.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.backends.registry import register_backend
from repro.blocks.categorization import prefix_chain_scores
from repro.errors import ConfigurationError
from repro.nn.sc_layers import ScNetworkMapper
from repro.sc.packed import pack_bits

__all__ = [
    "FloatBackend",
    "FastStatisticalBackend",
    "BitExactLegacyBackend",
    "BitExactBatchedBackend",
]

#: Image batch size used by the float and fast statistical backends; the
#: historical value of ``Network.predict`` / ``fast_accuracy``, kept so
#: noise draws land on the same batch boundaries as before.
_SCORE_BATCH = 256


@register_backend
class FloatBackend(Backend):
    """Software reference: the trained float network, no SC at all."""

    name = "float"
    description = "trained float network (software reference)"
    bit_exact = False
    stochastic = False
    batch_invariant = True

    def forward(self, images: np.ndarray) -> np.ndarray:
        bipolar = self._check_images(images) * 2.0 - 1.0
        network = self.mapper.network
        scores = [
            network.forward(bipolar[start : start + _SCORE_BATCH], training=False)
            for start in range(0, bipolar.shape[0], _SCORE_BATCH)
        ]
        return np.concatenate(scores, axis=0)


@register_backend
class FastStatisticalBackend(Backend):
    """Fast statistical SC model (the full-test-set accuracy model).

    Args:
        mapper: the SC network mapper.
        inject_noise: add the stochastic decoding noise of finite streams
            after every block (the paper's evaluation setting).
    """

    name = "sc-fast"
    description = "fast statistical SC model (quantised weights, transfer curves)"
    bit_exact = False
    stochastic = True
    progressive = True

    def __init__(self, mapper: ScNetworkMapper, inject_noise: bool = True) -> None:
        super().__init__(mapper)
        self.inject_noise = bool(inject_noise)

    def _batched_fast_forward(
        self, images: np.ndarray, mapper: ScNetworkMapper
    ) -> np.ndarray:
        """Score a batch through ``mapper`` with the historical batching.

        One freshly seeded generator per ``_SCORE_BATCH`` slice, exactly as
        the historical ``fast_accuracy`` loop drew its noise -- shared by
        :meth:`forward` and every checkpoint of :meth:`forward_partial` so
        the final checkpoint reproduces the full-stream scores exactly.
        """
        scores = [
            mapper.fast_forward(
                images[start : start + _SCORE_BATCH], self.inject_noise
            )
            for start in range(0, images.shape[0], _SCORE_BATCH)
        ]
        return np.concatenate(scores, axis=0)

    def forward(self, images: np.ndarray) -> np.ndarray:
        return self._batched_fast_forward(self._check_images(images), self.mapper)

    def forward_partial(self, images: np.ndarray, checkpoints) -> np.ndarray:
        """Per-checkpoint statistical evaluation of the scores.

        Each checkpoint ``P`` is scored by the fast statistical model at
        stream length ``P`` (decoding noise shrinking as ``1 / sqrt(P)``),
        the statistical analogue of reading the bit-exact stream prefix.
        The final checkpoint reuses this backend's own mapper, so its
        scores equal :meth:`forward` exactly.
        """
        images = self._check_images(images)
        points = self._check_checkpoints(checkpoints)
        scores = []
        for p in points:
            if p == self.stream_length:
                mapper = self.mapper
            else:
                mapper = ScNetworkMapper(
                    self.mapper.network,
                    weight_bits=self.mapper.weight_bits,
                    stream_length=p,
                    seed=self.mapper.seed,
                )
            scores.append(self._batched_fast_forward(images, mapper))
        return np.stack(scores)


@register_backend
class BitExactLegacyBackend(Backend):
    """Per-image, small-chunk bit-exact simulation (equivalence oracle).

    Args:
        mapper: the SC network mapper.
        position_chunk: output positions / neurons simulated per product
            tensor; ``None`` selects the historical default of 32 (so the
            engine facade can pass ``position_chunk=None`` to any
            bit-exact backend uniformly).
    """

    name = "bit-exact-legacy"
    description = "per-image byte-per-bit block simulation (reference oracle)"
    bit_exact = True
    stochastic = True
    progressive = True
    batch_invariant = True

    #: Historical positions-per-product-tensor default of the legacy path.
    _DEFAULT_POSITION_CHUNK = 32

    def __init__(
        self, mapper: ScNetworkMapper, position_chunk: int | None = None
    ) -> None:
        super().__init__(mapper)
        if position_chunk is None:
            position_chunk = self._DEFAULT_POSITION_CHUNK
        if position_chunk < 1:
            raise ConfigurationError("position_chunk must be >= 1")
        self.position_chunk = int(position_chunk)

    def forward(self, images: np.ndarray) -> np.ndarray:
        images = self._check_images(images)
        return np.stack(
            [
                self.mapper.bit_exact_forward_legacy(
                    image, position_chunk=self.position_chunk
                )
                for image in images
            ]
        )

    def forward_partial(self, images: np.ndarray, checkpoints) -> np.ndarray:
        """Checkpoint scores via prefix popcounts of the output streams.

        Same causality argument as the packed backend: the ``P``-bit
        prefix of the categorization-output stream is exactly what the
        hardware would have produced had it stopped after ``P`` cycles.
        """
        points = self._check_checkpoints(checkpoints)
        images = self._check_images(images)
        streams = np.stack(
            [
                self.mapper.bit_exact_forward_legacy(
                    image,
                    position_chunk=self.position_chunk,
                    return_streams=True,
                )
                for image in images
            ]
        )
        return prefix_chain_scores(
            pack_bits(streams), points, self.stream_length
        )


@register_backend
class BitExactBatchedBackend(Backend):
    """Whole-layer batched bit-exact simulation (the PR 1 fast path).

    Args:
        mapper: the SC network mapper.
        position_chunk: optional cap on positions / neurons per product
            tensor; ``None`` picks automatically from the memory budget.
    """

    name = "bit-exact-batched"
    description = "batched byte-per-bit block simulation (whole layers per call)"
    bit_exact = True
    stochastic = True
    progressive = True
    batch_invariant = True

    def __init__(
        self, mapper: ScNetworkMapper, position_chunk: int | None = None
    ) -> None:
        super().__init__(mapper)
        if position_chunk is not None and position_chunk < 1:
            raise ConfigurationError("position_chunk must be >= 1")
        self.position_chunk = position_chunk

    def forward(self, images: np.ndarray) -> np.ndarray:
        return self.mapper.bit_exact_forward_batch(
            self._check_images(images), position_chunk=self.position_chunk
        )

    def forward_partial(self, images: np.ndarray, checkpoints) -> np.ndarray:
        """Checkpoint scores via prefix popcounts of the output streams.

        One batched simulation produces the raw categorization-output
        streams; every checkpoint is then a prefix popcount over their
        packed words -- the same path the packed backend takes, so the
        checkpoint scores are bit-identical across all bit-exact backends
        and the final checkpoint (when it equals ``N``) reproduces
        :meth:`forward` exactly.
        """
        points = self._check_checkpoints(checkpoints)
        streams = self.mapper.bit_exact_forward_batch(
            self._check_images(images),
            position_chunk=self.position_chunk,
            return_streams=True,
        )
        return prefix_chain_scores(
            pack_bits(streams), points, self.stream_length
        )
