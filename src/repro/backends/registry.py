"""String-keyed registry of execution backends.

Backends self-register at import time via the :func:`register_backend`
class decorator; consumers look them up by name with
:func:`backend_class` / :func:`create_backend` and enumerate them with
:func:`backend_names`.  Unknown names raise a
:class:`~repro.errors.ConfigurationError` that lists every registered
backend, so a typo in a config file or CLI flag fails with an actionable
message instead of an ``AttributeError`` deep inside the mapper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, TypeVar

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.backends.base import Backend
    from repro.nn.sc_layers import ScNetworkMapper

__all__ = [
    "register_backend",
    "backend_class",
    "backend_names",
    "describe_backends",
    "create_backend",
]

_REGISTRY: dict[str, type["Backend"]] = {}

_BackendT = TypeVar("_BackendT", bound="type[Backend]")


def register_backend(cls: _BackendT) -> _BackendT:
    """Class decorator adding a :class:`Backend` subclass to the registry.

    The class attribute ``name`` is the registry key; registering two
    different classes under the same name is a configuration error (it
    would silently shadow an execution strategy).
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"backend class {cls.__name__} must define a non-empty 'name'"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"backend name {name!r} is already registered "
            f"by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def describe_backends() -> str:
    """One line per registered backend: ``name -- description``, sorted.

    Intended for CLI ``--backend`` help text (examples and benchmarks
    build their epilogs from it) so that the flag documentation can never
    drift from the registry contents.
    """
    lines = []
    for name in backend_names():
        cls = _REGISTRY[name]
        description = cls.description or cls.__name__
        note = getattr(cls, "availability_note", None)
        if callable(note):
            # Backends with host-dependent tiers (e.g. the compiled native
            # kernels) report their availability inline, appended to the
            # description so the "name -- description" line format holds.
            try:
                text = note()
            except Exception:  # pragma: no cover - defensive
                text = None
            if text:
                description = f"{description} [{text}]"
        lines.append(f"{name} -- {description}")
    return "\n".join(lines)


def backend_class(name: str) -> type["Backend"]:
    """Look up a backend class by registry name.

    Raises:
        ConfigurationError: when ``name`` is not registered; the message
            lists every known backend.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(repr(n) for n in backend_names()) or "<none>"
        raise ConfigurationError(
            f"unknown backend {name!r}; registered backends are: {known}"
        ) from None


def create_backend(
    name: str, mapper: "ScNetworkMapper", **options: object
) -> "Backend":
    """Construct a backend by name for the given mapper.

    Args:
        name: registry key (see :func:`backend_names`).
        mapper: the SC network mapper the backend will execute.
        **options: backend-specific constructor options (e.g.
            ``inject_noise`` for the fast statistical backend,
            ``position_chunk`` for the bit-exact ones).
    """
    return backend_class(name)(mapper, **options)
