"""Execution-backend protocol for SC network inference.

A :class:`Backend` turns a mapped network (a
:class:`~repro.nn.sc_layers.ScNetworkMapper`) into class scores for a batch
of images.  What used to be ad-hoc methods on the inference engine --
float evaluation, the fast statistical SC model, the bit-exact block
simulations -- are now interchangeable backends behind one interface, so
reports, examples and benchmarks pick an execution strategy by name
through the registry (:mod:`repro.backends.registry`) instead of calling
mapper internals.

Capability flags describe what a backend guarantees:

* ``bit_exact`` -- the scores come from simulating actual bit streams
  through the block implementations (all ``bit-exact-*`` backends produce
  *identical* scores, they only differ in speed).
* ``stochastic`` -- the scores depend on sampled randomness (stream
  generation or injected decoding noise); deterministic given the seed.
* ``packed_data_plane`` -- inter-layer feature maps stay word-packed
  (``uint64``) end to end.
* ``progressive`` -- the backend can evaluate class scores at
  intermediate stream-length checkpoints (:meth:`Backend.forward_partial`),
  which is what the progressive-precision early exit of the serving layer
  (:mod:`repro.serve`) is built on.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.errors import ConfigurationError, EncodingError, ShapeError
from repro.nn.sc_layers import ScNetworkMapper

__all__ = ["Backend"]


class Backend(abc.ABC):
    """One execution strategy for running a mapped network.

    Subclasses are registered by name (see
    :func:`repro.backends.registry.register_backend`) and constructed with
    the mapper they execute; backend-specific options are keyword
    arguments of the concrete ``__init__``.

    Args:
        mapper: the SC network mapper holding the trained network, stream
            length, weight precision and seed.
    """

    #: Registry key of the backend (e.g. ``"bit-exact-packed"``).
    name: ClassVar[str]

    #: One-line description shown in registry listings.
    description: ClassVar[str] = ""

    #: True when scores come from simulating actual bit streams.
    bit_exact: ClassVar[bool] = False

    #: True when scores depend on sampled randomness (given the seed).
    stochastic: ClassVar[bool] = True

    #: True when inter-layer feature maps stay word-packed end to end.
    packed_data_plane: ClassVar[bool] = False

    #: True when the backend implements :meth:`forward_partial` (scores at
    #: intermediate stream-length checkpoints for progressive early exit).
    progressive: ClassVar[bool] = False

    #: True when each image's scores are independent of which other images
    #: share its batch (``forward(images)[i] == forward(images[i:i+1])[0]``
    #: for every ``i``).  This is what makes a backend safe to shard
    #: across processes (:mod:`repro.backends.parallel`) and to
    #: micro-batch transparently (:mod:`repro.serve`).  All bit-exact
    #: backends hold it by construction (stream draws are shared across
    #: the batch); ``sc-fast`` does not (its injected decoding noise is
    #: drawn over the whole batch tensor at once).
    batch_invariant: ClassVar[bool] = False

    def __init__(self, mapper: ScNetworkMapper) -> None:
        self.mapper = mapper

    @property
    def stream_length(self) -> int:
        """Stochastic stream length ``N`` of the underlying mapper."""
        return self.mapper.stream_length

    @staticmethod
    def _check_images(images: np.ndarray) -> np.ndarray:
        """Validate an image batch once, before any kernel touches it.

        Every backend used to fail on malformed input deep inside its
        kernels (a broadcast error in the SNG, a reshape in ``im2col``);
        this shared helper turns those into one clear, early error.

        Args:
            images: ``(batch, channels, height, width)`` array in
                ``[0, 1]``; a single ``(channels, height, width)`` image
                is also accepted and promoted to a batch of one.

        Returns:
            ``float64`` array of shape ``(batch, channels, height,
            width)``.

        Raises:
            ShapeError: when the array is not 3- or 4-dimensional.
            EncodingError: when the dtype is not numeric or values fall
                outside the unipolar SNG input domain ``[0, 1]``.
        """
        arr = np.asarray(images)
        if arr.dtype.kind not in "fiub":
            raise EncodingError(
                f"images must be a numeric array, got dtype {arr.dtype}"
            )
        arr = arr.astype(np.float64, copy=False)
        if arr.ndim == 3:
            arr = arr[None]
        if arr.ndim != 4:
            raise ShapeError(
                "expected (batch, channels, height, width) images "
                f"(or one (channels, height, width) image), got shape "
                f"{np.shape(images)}"
            )
        if arr.size:
            low, high = float(arr.min()), float(arr.max())
            # Negated comparison so NaN (for which both `low < 0` and
            # `high > 1` are false) also fails the check.
            if not (low >= 0.0 and high <= 1.0):
                raise EncodingError(
                    f"image values must lie in [0, 1] (the SNG input "
                    f"domain), got range [{low:.4g}, {high:.4g}]"
                )
        return arr

    def _check_checkpoints(self, checkpoints) -> tuple[int, ...]:
        """Validate a stream-length checkpoint schedule.

        Checkpoints must be strictly increasing and lie inside ``[1, N]``.
        The schedule may stop *short* of the full stream length -- that is
        how per-request reduced stream lengths
        (:class:`repro.config.PredictOptions`) are evaluated -- but the
        exact-equality guarantee ``forward_partial(...)[-1] == forward()``
        only holds when the final checkpoint equals ``N`` (which the
        serving-layer schedules always arrange for full-length requests).
        """
        points = tuple(int(p) for p in checkpoints)
        n = self.stream_length
        if not points:
            raise ConfigurationError("at least one checkpoint is required")
        if any(p < 1 or p > n for p in points):
            raise ConfigurationError(
                f"checkpoints must lie in [1, {n}], got {points}"
            )
        if any(b <= a for a, b in zip(points, points[1:])):
            raise ConfigurationError(
                f"checkpoints must be strictly increasing, got {points}"
            )
        return points

    @abc.abstractmethod
    def forward(self, images: np.ndarray) -> np.ndarray:
        """Class scores for a batch of images.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]``.

        Returns:
            ``(batch, n_classes)`` class scores.
        """

    def forward_partial(
        self, images: np.ndarray, checkpoints
    ) -> np.ndarray:
        """Class scores at intermediate stream-length checkpoints.

        Progressive backends (``progressive = True``) override this to
        evaluate the scores a request would have seen had the streams
        stopped after ``P`` cycles, for each checkpoint ``P`` -- the
        primitive behind the early-exit serving path
        (:func:`repro.serve.progressive_forward`).  The contract:
        checkpoints are validated by :meth:`_check_checkpoints` (strictly
        increasing, inside ``[1, N]``), and whenever the final checkpoint
        is the full stream length ``N`` its scores equal :meth:`forward`
        exactly.  Schedules stopping short of ``N`` evaluate a request at
        a reduced effective stream length
        (:class:`repro.config.PredictOptions`).

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]``.
            checkpoints: increasing stream-length checkpoints (e.g.
                ``(N // 8, N // 4, N // 2, N)``).

        Returns:
            ``(n_checkpoints, batch, n_classes)`` class scores.

        Raises:
            ConfigurationError: when the backend is not progressive.
        """
        raise ConfigurationError(
            f"backend {self.name!r} does not support partial-stream "
            "(progressive) evaluation; pick a backend whose 'progressive' "
            "capability flag is set"
        )

    def close(self) -> None:
        """Release backend-held resources (process pools, arenas).

        The contract every backend must honour:

        * **Idempotent** -- calling ``close()`` any number of times is
          safe and cheap; a second close is a no-op.
        * **Use-after-close** -- backends that own operating-system
          resources (e.g. the process pool of
          :class:`~repro.backends.parallel.ParallelBackend`) must reject
          ``forward`` / ``forward_partial`` after ``close()`` with a
          :class:`~repro.errors.ConfigurationError` rather than silently
          resurrecting the resource.  Pure in-process backends (whose
          default ``close()`` is this no-op) remain usable.
        * **Never raises** on resources that are already gone -- close
          is called from ``__exit__`` paths, GC finalizers and the
          serving layer's shutdown, where a secondary failure would mask
          the primary one.

        The serving layer closes every worker replica on shutdown, and
        its replica supervision closes a failed replica before building
        its replacement.
        """

    def kernel_snapshot(self) -> dict:
        """Per-kernel, per-tier invocation counters of this backend.

        Backends with an instrumented kernel seam (the packed data
        plane, see :mod:`repro.obs.counters`) expose a ``counters``
        attribute; everything else reports empty.  Sharded wrappers
        override this to aggregate across their replicas.

        Returns:
            ``{kernel: {tier: {"calls", "seconds", "bytes"}}}``.
        """
        counters = getattr(self, "counters", None)
        if counters is None:
            return {}
        return counters.snapshot()

    def workspace_stats(self) -> dict | None:
        """Buffer-arena statistics (:meth:`repro.workspace.Workspace.stats`).

        ``None`` for backends without a workspace arena.
        """
        workspace = getattr(self, "workspace", None)
        if workspace is None:
            return None
        return workspace.stats()

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch of images."""
        return np.argmax(self.forward(images), axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correctly classified images."""
        predictions = self.predict(images)
        return float((predictions == np.asarray(labels)).mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"stream_length={self.stream_length})"
        )
