"""Execution-backend protocol for SC network inference.

A :class:`Backend` turns a mapped network (a
:class:`~repro.nn.sc_layers.ScNetworkMapper`) into class scores for a batch
of images.  What used to be ad-hoc methods on the inference engine --
float evaluation, the fast statistical SC model, the bit-exact block
simulations -- are now interchangeable backends behind one interface, so
reports, examples and benchmarks pick an execution strategy by name
through the registry (:mod:`repro.backends.registry`) instead of calling
mapper internals.

Capability flags describe what a backend guarantees:

* ``bit_exact`` -- the scores come from simulating actual bit streams
  through the block implementations (all ``bit-exact-*`` backends produce
  *identical* scores, they only differ in speed).
* ``stochastic`` -- the scores depend on sampled randomness (stream
  generation or injected decoding noise); deterministic given the seed.
* ``packed_data_plane`` -- inter-layer feature maps stay word-packed
  (``uint64``) end to end.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.nn.sc_layers import ScNetworkMapper

__all__ = ["Backend"]


class Backend(abc.ABC):
    """One execution strategy for running a mapped network.

    Subclasses are registered by name (see
    :func:`repro.backends.registry.register_backend`) and constructed with
    the mapper they execute; backend-specific options are keyword
    arguments of the concrete ``__init__``.

    Args:
        mapper: the SC network mapper holding the trained network, stream
            length, weight precision and seed.
    """

    #: Registry key of the backend (e.g. ``"bit-exact-packed"``).
    name: ClassVar[str]

    #: One-line description shown in registry listings.
    description: ClassVar[str] = ""

    #: True when scores come from simulating actual bit streams.
    bit_exact: ClassVar[bool] = False

    #: True when scores depend on sampled randomness (given the seed).
    stochastic: ClassVar[bool] = True

    #: True when inter-layer feature maps stay word-packed end to end.
    packed_data_plane: ClassVar[bool] = False

    def __init__(self, mapper: ScNetworkMapper) -> None:
        self.mapper = mapper

    @property
    def stream_length(self) -> int:
        """Stochastic stream length ``N`` of the underlying mapper."""
        return self.mapper.stream_length

    @abc.abstractmethod
    def forward(self, images: np.ndarray) -> np.ndarray:
        """Class scores for a batch of images.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]``.

        Returns:
            ``(batch, n_classes)`` class scores.
        """

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch of images."""
        return np.argmax(self.forward(images), axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correctly classified images."""
        predictions = self.predict(images)
        return float((predictions == np.asarray(labels)).mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"stream_length={self.stream_length})"
        )
