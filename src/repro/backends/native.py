"""Bit-exact packed inference through the compiled kernel tier.

:class:`BitExactNativeBackend` is :class:`~repro.backends.packed.BitExactPackedBackend`
with its three hottest loops -- the fused XNOR->CSA column counts, the
word-blocked feature-extraction stepper, and the word-direct SNG
comparator -- routed through the compiled kernels of
:mod:`repro.sc.native` (hardware popcount, GIL-free).  Everything else --
layer drivers, chunking policy, workspace arena, RNG-consumption order --
is inherited unchanged, so the backend is a pure drop-in: the scores are
**bit-identical** to every other ``bit-exact-*`` backend.

Graceful degradation is part of the contract: when the compiled tier is
unavailable (no C compiler, no cffi, ``REPRO_NATIVE=0``), the backend
still constructs and simply runs the NumPy kernels -- it never errors.
Per-call, any operand shape outside the native fast path also falls back
to NumPy, so correctness never depends on the native tier's coverage.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.packed import BitExactPackedBackend
from repro.backends.registry import register_backend
from repro.blocks.batched import feature_extraction_recurrence_words
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock
from repro.nn.sc_layers import ScNetworkMapper
from repro.sc import native

__all__ = ["BitExactNativeBackend"]


@register_backend
class BitExactNativeBackend(BitExactPackedBackend):
    """Word-packed bit-exact simulation with compiled GIL-free kernels.

    Args:
        mapper: the SC network mapper.
        position_chunk: see :class:`~repro.backends.packed.BitExactPackedBackend`.
        use_native: force-disable the compiled tier (``False``) regardless
            of availability; ``None`` (default) uses it when available.
            There is no force-*enable*: an unavailable tier always falls
            back rather than erroring.
    """

    name = "bit-exact-native"
    description = (
        "packed data plane with compiled GIL-free popcount kernels "
        "(falls back to bit-exact-packed kernels when unavailable)"
    )

    def __init__(
        self,
        mapper: ScNetworkMapper,
        position_chunk: int | None = None,
        use_native: bool | None = None,
    ) -> None:
        super().__init__(mapper, position_chunk)
        wanted = True if use_native is None else bool(use_native)
        #: Whether the compiled tier is actually executing this instance's
        #: kernels (False means every call runs the inherited NumPy path).
        self.native_active = wanted and native.available()
        if self.native_active:
            self._stream_packer = self._native_packer

    @classmethod
    def availability_note(cls) -> str:
        """Registry availability note (shown by ``describe_backends()``).

        The compiled tier's status, plus the process-wide kernel-tier
        counter summary once kernels have run.
        """
        note = super().availability_note()
        if note:
            return f"{native.describe()}; {note}"
        return native.describe()

    # -- kernel seam overrides -------------------------------------------------

    def _native_packer(self, draws, thresholds, out):
        return native.pack_comparator_floats(
            draws, thresholds, out, workspace=self.workspace
        )

    def _fused_counts(self, a, b, extra, out, key) -> None:
        # Tier attribution happens per call, not per instance: a shape
        # outside the native fast path records as "numpy" through the
        # inherited seam even while ``native_active`` is True, so the
        # counters report where the work actually ran.
        if self.native_active:
            started = time.perf_counter()
            if (
                native.fused_xnor_column_counts(
                    a,
                    b,
                    self.mapper.stream_length,
                    extra=extra,
                    out=out,
                    workspace=self.workspace,
                    key=(key, "native"),
                )
                is not None
            ):
                self._record_kernel(
                    "fused_counts", "native", started, out.nbytes
                )
                return
        super()._fused_counts(a, b, extra, out, key)

    def _fused_chain(self, a, b, out, key) -> None:
        if self.native_active:
            started = time.perf_counter()
            if (
                native.fused_xnor_majority_chain(
                    a,
                    b,
                    self.mapper.stream_length,
                    out=out,
                    workspace=self.workspace,
                    key=(key, "native"),
                )
                is not None
            ):
                self._record_kernel(
                    "fused_chain", "native", started, out.nbytes
                )
                return
        super()._fused_chain(a, b, out, key)

    def _recurrence_words(
        self, counts: np.ndarray, m: int, neutral: np.ndarray | None
    ) -> np.ndarray:
        if not self.native_active:
            return super()._recurrence_words(counts, m, neutral)
        started = time.perf_counter()
        if neutral is not None:
            np.add(counts, neutral, out=counts, casting="unsafe")
        half = SorterFeatureExtractionBlock(m).threshold
        words = native.feature_extraction_recurrence_words(
            counts, half, -half, half + 1, workspace=self.workspace
        )
        tier = "native"
        if words is None:
            # Neutral is already folded in; run the NumPy stepper directly
            # (calling super() would add it twice).
            tier = "numpy"
            words = feature_extraction_recurrence_words(
                counts, half, -half, half + 1, workspace=self.workspace
            )
        self._record_kernel("recurrence_words", tier, started, words.nbytes)
        return words
