"""Multi-core sharded execution: one batch, many processes, shared memory.

The SC pipeline is embarrassingly parallel across images: every bit-exact
backend draws its stream randomness from tensors *shared across the
batch*, so image ``i``'s scores never depend on which other images it was
batched with (the ``batch_invariant`` capability flag).
:class:`ParallelBackend` exploits exactly that invariance: it splits an
image batch into contiguous shards, runs each shard through a replica of
an inner backend in a worker *process* (side-stepping the GIL, which
thread pools cannot for NumPy-dispatch-bound kernels), and assembles the
scores -- bit-identical to running the inner backend on the whole batch
in one process, asserted by the unit tests and by ``bench_perf.py``.

With ``executor="thread"`` the same sharding runs on a
:class:`~concurrent.futures.ThreadPoolExecutor` over a pool of
in-process inner replicas instead: no pickling, no shared-memory
copies, no process start-up -- worthwhile when the inner backend's hot
loops release the GIL, which is exactly what the compiled kernel tier
of ``bit-exact-native`` does.  :class:`NativeParallelBackend`
(``bit-exact-native-mp``) packages that pairing as a registry entry.

Images and scores travel through :mod:`multiprocessing.shared_memory`
buffers rather than pickled task payloads, so the per-call IPC cost is
two small control messages per shard regardless of batch or stream
length; worker processes build their backend replica once (from the
pickled mapper) and reuse it -- including its workspace arena -- across
calls.

The backend registers as ``bit-exact-packed-mp`` and implements both
``forward`` and ``forward_partial``, so the serving layer
(:mod:`repro.serve`) and the progressive early-exit engine can use it
unchanged wherever ``bit-exact-packed`` fits (a typical serving
configuration runs **one** service worker thread whose replica is a
parallel backend, instead of many single-core replicas).

**Fault tolerance.**  A worker process dying mid-call (OOM kill, signal,
crash in a native library) breaks the whole pool -- every in-flight and
future submit raises ``BrokenProcessPool``.  Instead of surfacing that to
the caller, the backend runs a **circuit breaker**: the broken pool is
torn down, the call is answered by the in-process inner replica
(bit-identical by construction -- the shards were only a placement
decision), and the breaker stays *open* for an exponentially growing
cooldown during which every call short-circuits to the inner replica.
Once the cooldown expires, the next sharded call rebuilds the pool from
the pickled payload -- or, when ``artifact_path`` is set, by rehydrating
worker replicas from the shared on-disk artifact.  Chaos tests inject the
failure with :meth:`ParallelBackend.break_pool`.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import queue
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np

from repro.backends.base import Backend
from repro.backends.registry import backend_class, create_backend, register_backend
from repro.errors import ConfigurationError
from repro.nn.layers import Dense
from repro.nn.sc_layers import ScNetworkMapper
from repro.obs.counters import merge_kernel_snapshots
from repro.sc import native

__all__ = [
    "ParallelBackend",
    "NativeParallelBackend",
    "resolve_parallel_backend",
]

_LOG = logging.getLogger("repro.backends.parallel")


def resolve_parallel_backend(
    backend: str, workers: int | None, executor: str | None = None
) -> tuple[str, dict]:
    """Map CLI ``(--backend, --workers, --executor)`` onto a registry selection.

    The shared policy behind the examples' ``--workers`` flags: with one
    (or no) worker the chosen backend is used as-is; otherwise a sharded
    wrapper is selected with the chosen backend riding along as its
    inner backend -- unless that choice cannot shard (not
    ``batch_invariant``) or *is* a wrapper, in which case the matching
    single-process inner is used.  The wrapper flavour follows
    ``executor`` when given; otherwise thread sharding is picked exactly
    when the inner backend is the compiled-kernel tier (whose hot loops
    release the GIL), and process sharding everywhere else.

    Args:
        backend: registry name the user chose.
        workers: requested worker count (``None``/``<= 1`` means no
            sharding).
        executor: ``"process"``, ``"thread"``, or ``None`` to choose by
            inner backend.

    Returns:
        ``(backend_name, backend_options)`` ready for
        :func:`~repro.backends.registry.create_backend` (or any
        ``backend=``/``**options`` forwarding call site).
    """
    if executor not in (None, "process", "thread"):
        raise ConfigurationError(
            f"executor must be 'process' or 'thread', got {executor!r}"
        )
    if not workers or workers <= 1:
        return backend, {}
    inner = backend
    if inner == NativeParallelBackend.name:
        inner = "bit-exact-native"
    elif inner == ParallelBackend.name or not getattr(
        backend_class(inner), "batch_invariant", False
    ):
        inner = "bit-exact-packed"
    if executor is None:
        use_threads = (
            backend == NativeParallelBackend.name
            or inner == "bit-exact-native"
        )
    else:
        use_threads = executor == "thread"
    name = NativeParallelBackend.name if use_threads else ParallelBackend.name
    return name, {
        "workers": int(workers),
        "inner_backend": inner,
    }


#: Per-process backend replica, built once by the pool initializer.
_WORKER_BACKEND: Backend | None = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: build this worker's backend replica once.

    With an artifact path in the payload, the replica's mapper is
    rehydrated from the shared on-disk artifact (one file read per
    worker) instead of from a pickled mapper embedded in the payload --
    the train-once / deploy-forever path of :mod:`repro.api`.
    """
    global _WORKER_BACKEND
    artifact_path, mapper, backend_name, options = pickle.loads(payload)
    if artifact_path is not None:
        # Imported lazily: repro.api sits above the backend layer.
        from repro.api.artifact import ScModel

        mapper = ScModel.load(artifact_path).mapper()
    _WORKER_BACKEND = create_backend(backend_name, mapper, **options)


def _run_shard(
    images_name: str,
    images_shape: tuple[int, ...],
    out_name: str,
    out_shape: tuple[int, ...],
    start: int,
    stop: int,
    checkpoints: tuple[int, ...] | None,
) -> int:
    """Run one contiguous image shard inside a worker process.

    Reads ``images[start:stop]`` from the shared input buffer, executes
    the replica, and writes the scores into the shared output buffer
    (rows ``start:stop``; for partial evaluation the checkpoint axis
    leads, so the shard fills ``out[:, start:stop]``).
    """
    shm_in = shared_memory.SharedMemory(name=images_name)
    shm_out = shared_memory.SharedMemory(name=out_name)
    try:
        images = np.ndarray(images_shape, dtype=np.float64, buffer=shm_in.buf)
        out = np.ndarray(out_shape, dtype=np.float64, buffer=shm_out.buf)
        shard = images[start:stop]
        if checkpoints is None:
            out[start:stop] = _WORKER_BACKEND.forward(shard)
        else:
            out[:, start:stop] = _WORKER_BACKEND.forward_partial(
                shard, checkpoints
            )
        return stop - start
    finally:
        shm_in.close()
        shm_out.close()


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    """Finalizer target: tear the pool down without waiting on GC order."""
    executor.shutdown(wait=False, cancel_futures=True)


def _reap_executor(executor: ProcessPoolExecutor, patience: float = 5.0) -> None:
    """Shut a discarded pool down and see its manager thread all the way out.

    The executor manager thread is non-daemon; if it is still alive when
    the interpreter exits, ``threading._shutdown`` joins it forever.  For a
    healthy pool ``shutdown`` winds it down promptly, but a *broken* pool
    (workers killed mid-call) can wedge it inside its internal cleanup:
    joining a worker process that ignored ``SIGTERM``, or joining the
    call-queue feeder thread stuck writing to a pipe no process reads any
    more.  After ``patience`` seconds both obstructions are removed by
    force -- leftover workers are killed and the feeder's pipe writer is
    closed -- and the join is retried, so a stuck manager thread always
    finishes instead of hanging process exit.
    """
    manager = getattr(executor, "_executor_manager_thread", None)
    executor.shutdown(wait=False, cancel_futures=True)
    if manager is None:
        return
    manager.join(patience)
    if not manager.is_alive():
        return
    for process in list(getattr(manager, "processes", {}).values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - process already gone
            pass
    call_queue = getattr(manager, "call_queue", None)
    writer = getattr(call_queue, "_writer", None)
    if writer is not None:
        try:
            writer.close()
        except Exception:  # pragma: no cover - already closed
            pass
    manager.join(patience)


def _worker_pid() -> int:
    """Trivial pool task: ensure at least one worker process is spawned."""
    return os.getpid()


@register_backend
class ParallelBackend(Backend):
    """Process-sharded wrapper around a batch-invariant inner backend.

    Args:
        mapper: the SC network mapper every worker replica executes.
        workers: worker process count; ``None`` uses ``os.cpu_count()``.
        inner_backend: registry name of the inner backend each worker
            runs (default ``"bit-exact-packed"``).  Named to avoid
            colliding with the ``backend=`` keyword of registry-forwarding
            call sites (e.g. ``ScInferenceEngine.evaluate``).  It must
            advertise
            ``batch_invariant`` -- sharding a batch across replicas is
            only score-preserving when per-image scores do not depend on
            batch composition.
        executor: ``"process"`` (default) shards across a process pool
            with shared-memory buffers; ``"thread"`` shards across a
            thread pool over a lazily grown pool of in-process inner
            replicas (no pickling, no IPC -- effective when the inner
            backend's hot loops release the GIL, as the compiled kernel
            tier does).  Thread mode has no circuit breaker: there is no
            pool to break, and worker exceptions propagate directly.
        min_shard_images: smallest shard worth dispatching to a process
            (batches smaller than ``2 * min_shard_images`` run on the
            in-process replica, skipping IPC entirely).
        start_method: optional :mod:`multiprocessing` start method
            (default: ``"fork"`` where available, the platform default
            otherwise).
        artifact_path: optional :class:`~repro.api.artifact.ScModel`
            artifact directory the worker replicas rehydrate their
            mappers from (instead of each unpickling a mapper shipped in
            the pool-initializer payload).  The artifact's stream
            configuration must match ``mapper``; sessions opened with
            :meth:`repro.api.Session.from_artifact` wire this up
            automatically.
        breaker_cooldown_s: base circuit-breaker cooldown after a
            ``BrokenProcessPool``; while the breaker is open every call
            is served by the in-process inner replica (bit-identical),
            and the cooldown doubles with each consecutive break.
        **backend_options: forwarded to every inner-replica constructor
            (e.g. ``position_chunk``).

    The worker pool is created lazily on the first sharded call and
    reused across calls; :meth:`close` (also invoked by the serving
    layer on shutdown, and as a GC finalizer) tears it down.  ``close``
    is idempotent, and any ``forward`` / ``forward_partial`` after it
    raises :class:`~repro.errors.ConfigurationError` (the
    :meth:`Backend.close` contract).
    """

    name = "bit-exact-packed-mp"
    description = (
        "bit-exact packed data plane sharded across a process pool "
        "(shared-memory image/score buffers)"
    )
    bit_exact = True
    stochastic = True
    packed_data_plane = True
    progressive = True
    batch_invariant = True

    def __init__(
        self,
        mapper: ScNetworkMapper,
        workers: int | None = None,
        inner_backend: str = "bit-exact-packed",
        executor: str = "process",
        min_shard_images: int = 1,
        start_method: str | None = None,
        artifact_path: str | None = None,
        breaker_cooldown_s: float = 5.0,
        **backend_options: object,
    ) -> None:
        super().__init__(mapper)
        if executor not in ("process", "thread"):
            raise ConfigurationError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        if breaker_cooldown_s < 0:
            raise ConfigurationError(
                f"breaker_cooldown_s must be >= 0, got {breaker_cooldown_s}"
            )
        inner_cls = backend_class(inner_backend)
        if not getattr(inner_cls, "batch_invariant", False):
            raise ConfigurationError(
                f"backend {inner_backend!r} is not batch-invariant: sharding "
                "its batches across processes would change per-image scores"
            )
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if min_shard_images < 1:
            raise ConfigurationError(
                f"min_shard_images must be >= 1, got {min_shard_images}"
            )
        # Capabilities follow the inner backend: the wrapper only changes
        # *where* the batch runs, not what the scores mean -- advertising
        # e.g. `progressive` for a non-progressive inner would send the
        # serving layer's early-exit gate into forward_partial calls the
        # replica cannot answer.  (Instance attributes shadow the class
        # flags, which describe the default inner.)
        self.bit_exact = bool(inner_cls.bit_exact)
        self.stochastic = bool(inner_cls.stochastic)
        self.packed_data_plane = bool(inner_cls.packed_data_plane)
        self.progressive = bool(inner_cls.progressive)
        self.workers = int(workers)
        self.inner_backend = inner_backend
        self.executor_mode = str(executor)
        self.min_shard_images = int(min_shard_images)
        self.start_method = start_method
        self.artifact_path = str(artifact_path) if artifact_path else None
        if self.artifact_path is not None:
            self._validate_artifact(self.artifact_path)
        self.backend_options = dict(backend_options)
        #: In-process replica: serves small batches and the 1-worker case.
        self.inner = create_backend(inner_backend, mapper, **backend_options)
        self._executor: ProcessPoolExecutor | None = None
        self._finalizer = None
        self._closed = False
        # Thread-executor state: a lazily grown pool of in-process inner
        # replicas leased through a queue (each replica owns its own
        # workspace arena, which is not thread-safe, so a replica is
        # never shared by two concurrent shards).
        self._thread_pool: ThreadPoolExecutor | None = None
        self._thread_replicas: list[Backend] = []
        self._replica_queue: queue.SimpleQueue = queue.SimpleQueue()
        self._replica_lock = threading.Lock()
        # Circuit-breaker state: consecutive pool breaks and the
        # monotonic instant until which the breaker stays open (calls
        # short-circuit to the in-process inner replica).
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self._breaker_lock = threading.Lock()
        self._pool_breaks = 0
        self._breaker_open_until = 0.0
        # Reaper threads escorting discarded (broken) pools out; joined
        # in close() so no executor manager thread outlives the backend.
        self._reapers: list[threading.Thread] = []
        n_classes = None
        for layer in mapper.network.layers:
            if isinstance(layer, Dense):
                n_classes = layer.out_features
        if n_classes is None:
            raise ConfigurationError(
                "the mapped network has no Dense output layer"
            )
        self._n_classes = int(n_classes)

    # -- pool / shard plumbing -------------------------------------------------

    def _validate_artifact(self, artifact_path: str) -> None:
        """Cross-check the artifact's stream configuration at construction.

        Worker replicas built from an artifact whose quantisation / stream
        configuration differs from this backend's mapper would silently
        produce different scores than the in-process replica; the cheap
        manifest read catches the mismatch before any pool exists.
        """
        from repro.api.artifact import ScModel

        manifest = ScModel.read_manifest(artifact_path)
        for field, mine in (
            ("stream_length", self.mapper.stream_length),
            ("weight_bits", self.mapper.weight_bits),
            ("seed", self.mapper.seed),
        ):
            theirs = manifest.get(field)
            if theirs != mine:
                raise ConfigurationError(
                    f"artifact at {artifact_path} has {field}={theirs}, but "
                    f"the backend's mapper uses {field}={mine}; worker "
                    "replicas rehydrated from it would not be bit-identical"
                )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            method = self.start_method
            if method is None:
                available = multiprocessing.get_all_start_methods()
                # fork is the cheapest start-up, but forking a process
                # whose *other* threads may hold locks mid-acquire (the
                # serving layer's scheduler/worker threads) can deadlock
                # the child; prefer forkserver there, fork only from a
                # single-threaded coordinator.
                if "fork" in available and threading.active_count() == 1:
                    method = "fork"
                elif "forkserver" in available:
                    method = "forkserver"
            context = (
                multiprocessing.get_context(method)
                if method
                else multiprocessing.get_context()
            )
            payload = pickle.dumps(
                (
                    self.artifact_path,
                    None if self.artifact_path else self.mapper,
                    self.inner_backend,
                    self.backend_options,
                )
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(payload,),
            )
            self._finalizer = weakref.finalize(
                self, _shutdown_executor, self._executor
            )
        return self._executor

    def _plan_shards(self, batch: int) -> list[tuple[int, int]]:
        """Contiguous, near-equal shards: ``[(start, stop), ...]``."""
        n_shards = min(self.workers, max(1, batch // self.min_shard_images))
        if batch < 2 * self.min_shard_images:
            n_shards = 1
        bounds = np.linspace(0, batch, n_shards + 1).astype(int)
        return [
            (int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a
        ]

    def _run_sharded(
        self,
        images: np.ndarray,
        shards: list[tuple[int, int]],
        out_shape: tuple[int, ...],
        checkpoints: tuple[int, ...] | None,
    ) -> np.ndarray:
        executor = self._ensure_executor()
        out_bytes = int(np.prod(out_shape)) * np.dtype(np.float64).itemsize
        shm_in = shared_memory.SharedMemory(create=True, size=images.nbytes)
        shm_out = shared_memory.SharedMemory(create=True, size=out_bytes)
        try:
            np.ndarray(images.shape, dtype=np.float64, buffer=shm_in.buf)[
                ...
            ] = images
            futures = [
                executor.submit(
                    _run_shard,
                    shm_in.name,
                    images.shape,
                    shm_out.name,
                    out_shape,
                    start,
                    stop,
                    checkpoints,
                )
                for start, stop in shards
            ]
            for future in futures:
                future.result()
            return np.array(
                np.ndarray(out_shape, dtype=np.float64, buffer=shm_out.buf),
                copy=True,
            )
        finally:
            shm_in.close()
            shm_in.unlink()
            shm_out.close()
            shm_out.unlink()

    # -- thread executor -------------------------------------------------------

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        with self._replica_lock:
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard",
                )
            return self._thread_pool

    def _lease_replica(self) -> Backend:
        """Borrow an inner replica for one shard, growing the pool lazily.

        Replicas are built on demand up to ``workers`` and then reused;
        once the pool is full, leases block until a running shard returns
        one.  Concurrent ``forward`` calls therefore share a bounded
        replica pool instead of each allocating ``workers`` arenas.
        """
        try:
            return self._replica_queue.get_nowait()
        except queue.Empty:
            pass
        with self._replica_lock:
            if len(self._thread_replicas) < self.workers:
                replica = create_backend(
                    self.inner_backend, self.mapper, **self.backend_options
                )
                self._thread_replicas.append(replica)
                return replica
        return self._replica_queue.get()

    def _run_threaded(
        self,
        images: np.ndarray,
        shards: list[tuple[int, int]],
        out_shape: tuple[int, ...],
        checkpoints: tuple[int, ...] | None,
    ) -> np.ndarray:
        """Run the shards on the thread pool, each on a leased replica.

        Every shard writes a disjoint slice of one preallocated output
        array, so no assembly pass (or copy out of shared memory) is
        needed; worker exceptions propagate through ``future.result()``.
        """
        pool = self._ensure_thread_pool()
        out = np.empty(out_shape, dtype=np.float64)

        def run(start: int, stop: int) -> None:
            replica = self._lease_replica()
            try:
                shard = images[start:stop]
                if checkpoints is None:
                    out[start:stop] = replica.forward(shard)
                else:
                    out[:, start:stop] = replica.forward_partial(
                        shard, checkpoints
                    )
            finally:
                self._replica_queue.put(replica)

        futures = [pool.submit(run, start, stop) for start, stop in shards]
        for future in futures:
            future.result()
        return out

    # -- circuit breaker -------------------------------------------------------

    @property
    def pool_breaks(self) -> int:
        """Number of ``BrokenProcessPool`` failures absorbed so far."""
        return self._pool_breaks

    @property
    def breaker_open(self) -> bool:
        """True while calls short-circuit to the in-process replica."""
        with self._breaker_lock:
            return time.monotonic() < self._breaker_open_until

    def _trip_breaker(self) -> None:
        """Absorb one pool break: discard the pool, open the breaker.

        The cooldown doubles with every consecutive break (capped at
        ``64 x`` the base) so a persistently failing environment settles
        into the in-process fallback instead of thrashing pool rebuilds.
        """
        with self._breaker_lock:
            self._pool_breaks += 1
            cooldown = self.breaker_cooldown_s * min(
                64, 2 ** (self._pool_breaks - 1)
            )
            self._breaker_open_until = time.monotonic() + cooldown
            self._teardown_executor(wait=False)
        _LOG.warning(
            "worker pool broken (break #%d); circuit breaker open for "
            "%.1fs, serving from the in-process replica",
            self._pool_breaks,
            cooldown,
            extra={
                "obs_event": {
                    "kind": "breaker_trip",
                    "backend": self.name,
                    "pool_breaks": self._pool_breaks,
                    "cooldown_s": cooldown,
                }
            },
        )

    def _teardown_executor(self, wait: bool) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if wait:
            _reap_executor(executor)
            return
        # Called from a serving thread mid-request (breaker trip): don't
        # block on the broken pool's wind-down, but don't abandon it
        # either -- an executor manager thread left stuck (killed workers
        # that never reap, a queue feeder wedged on a dead pipe) is
        # non-daemon and would hang interpreter shutdown at the
        # concurrent.futures atexit join.  A daemon reaper escorts it out
        # and close() joins the reaper.
        reaper = threading.Thread(
            target=_reap_executor,
            args=(executor,),
            name="repro-pool-reaper",
            daemon=True,
        )
        reaper.start()
        self._reapers.append(reaper)

    def break_pool(self) -> bool:
        """Kill the live worker processes (fault injection / chaos tests).

        Sabotages the pool for real -- the next sharded call observes a
        genuine ``BrokenProcessPool`` and the circuit breaker engages.
        Spawns a worker first if the lazy pool has none yet; returns
        False when the backend is closed (nothing to break) or running
        in thread mode (threads of this process cannot be killed without
        taking the caller down with them).
        """
        if self._closed or self.executor_mode == "thread":
            return False
        executor = self._ensure_executor()
        try:
            # Touch the pool so at least one worker process exists to kill.
            executor.submit(_worker_pid).result()
        except BrokenProcessPool:
            # Already broken (e.g. workers failed to spawn): the sabotage
            # this method exists to inflict has happened on its own.
            return True
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            process.kill()
        return bool(processes)

    def _ensure_usable(self) -> None:
        if self._closed:
            raise ConfigurationError(
                f"backend {self.name!r} is closed; build a new instance "
                "instead of reusing a closed one"
            )

    # -- Backend interface -----------------------------------------------------

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Class scores, bit-identical to the inner backend's.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]``.

        Returns:
            ``(batch, n_classes)`` class scores.
        """
        self._ensure_usable()
        images = self._check_images(images)
        shards = self._plan_shards(images.shape[0])
        if len(shards) <= 1:
            return self.inner.forward(images)
        out_shape = (images.shape[0], self._n_classes)
        if self.executor_mode == "thread":
            return self._run_threaded(images, shards, out_shape, None)
        if self.breaker_open:
            return self.inner.forward(images)
        try:
            return self._run_sharded(images, shards, out_shape, None)
        except BrokenProcessPool:
            self._trip_breaker()
            return self.inner.forward(images)

    def forward_partial(self, images: np.ndarray, checkpoints) -> np.ndarray:
        """Checkpoint scores, bit-identical to the inner backend's.

        Each worker computes its shard's full packed output streams once
        and reads every checkpoint as a prefix popcount, exactly like the
        inner backend; the checkpoint axis leads in the shared output
        buffer so shard writes stay disjoint.
        """
        self._ensure_usable()
        points = self._check_checkpoints(checkpoints)
        images = self._check_images(images)
        shards = self._plan_shards(images.shape[0])
        if len(shards) <= 1:
            return self.inner.forward_partial(images, points)
        out_shape = (len(points), images.shape[0], self._n_classes)
        if self.executor_mode == "thread":
            return self._run_threaded(images, shards, out_shape, points)
        if self.breaker_open:
            return self.inner.forward_partial(images, points)
        try:
            return self._run_sharded(images, shards, out_shape, points)
        except BrokenProcessPool:
            self._trip_breaker()
            return self.inner.forward_partial(images, points)

    def kernel_snapshot(self) -> dict:
        """Kernel counters aggregated across the in-process replicas.

        Covers the inner replica (small batches, breaker fallbacks) and
        every thread-mode shard replica.  Process-pool workers keep their
        counters in their own address space and are not reachable from
        here; their work is attributed by each worker's own process-wide
        counters instead.
        """
        with self._replica_lock:
            replicas = list(self._thread_replicas)
        return merge_kernel_snapshots(
            [self.inner.kernel_snapshot()]
            + [replica.kernel_snapshot() for replica in replicas]
        )

    def workspace_stats(self) -> dict | None:
        """Arena stats of the in-process inner replica (if it has one)."""
        return self.inner.workspace_stats()

    def close(self) -> None:
        """Shut the worker pool down (idempotent; use-after-close raises)."""
        self._closed = True
        self._teardown_executor(wait=True)
        reapers, self._reapers = self._reapers, []
        for reaper in reapers:
            reaper.join(timeout=15.0)
        pool, self._thread_pool = self._thread_pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        replicas, self._thread_replicas = self._thread_replicas, []
        for replica in replicas:
            replica.close()
        self.inner.close()

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(inner={self.inner_backend!r}, "
            f"workers={self.workers}, executor={self.executor_mode!r}, "
            f"stream_length={self.stream_length})"
        )


@register_backend
class NativeParallelBackend(ParallelBackend):
    """Thread-sharded wrapper over compiled-kernel inner replicas.

    ``bit-exact-native-mp`` is :class:`ParallelBackend` with different
    defaults, not different machinery: the inner backend is
    ``bit-exact-native`` and the executor is ``"thread"``, so shards run
    on a thread pool over per-replica workspace arenas.  Because the
    compiled kernels release the GIL for the hot loops, the threads
    genuinely overlap -- with none of the pickling, shared-memory
    copies, or process start-up of the process-pool mode.  When the
    compiled tier is unavailable the inner replicas quietly run their
    NumPy kernels (still bit-identical, just without the overlap), so
    the backend constructs and answers correctly on every host.
    """

    name = "bit-exact-native-mp"
    description = (
        "compiled GIL-free kernels sharded across a thread pool "
        "(per-replica workspace arenas, no IPC)"
    )

    def __init__(
        self,
        mapper: ScNetworkMapper,
        workers: int | None = None,
        inner_backend: str = "bit-exact-native",
        executor: str = "thread",
        **options: object,
    ) -> None:
        super().__init__(
            mapper,
            workers=workers,
            inner_backend=inner_backend,
            executor=executor,
            **options,
        )

    @classmethod
    def availability_note(cls) -> str:
        """Registry availability note (shown by ``describe_backends()``)."""
        return native.describe()
