"""Bit-exact inference on a fully word-packed, fused, allocation-free data plane.

:class:`BitExactPackedBackend` runs the same block simulation as the
legacy and batched backends -- identical streams, identical counter
recurrences, bit-identical scores -- but keeps the inter-layer feature
maps **word-packed** (64 stream bits per ``uint64``) from the SNG output
all the way to the categorization chain, and executes every layer through
*fused* kernels over a reusable buffer arena:

* Stream generation is **word-direct**: the SNG comparison draws are
  generated in bounded chunks and packed immediately
  (:meth:`~repro.nn.sc_layers.ScNetworkMapper.input_stream_words` /
  :meth:`~repro.nn.sc_layers.ScNetworkMapper.weight_stream_words`), so the
  full-stream ``float64`` draw tensors -- formerly the peak allocation of
  a forward pass -- never exist.
* CONV layers gather im2col patches directly over packed words (zero-copy
  sliding windows, the word axis rides along) and reduce the XNOR product
  streams to per-cycle column counts with the **fused streaming
  carry-save kernel** (:func:`repro.sc.packed.fused_xnor_column_counts`):
  each product plane is formed in a recycled buffer and folded into the
  CSA accumulator immediately, so only ``O(log M)`` planes are ever live
  instead of the whole ``(..., M, W)`` product tensor.  The
  feature-extraction recurrence then advances on the word-blocked stepper
  (:func:`repro.blocks.batched.feature_extraction_recurrence_words`),
  whose internal slabs also live in the workspace.
* Pooling uses the exact closed form of the pooling counter on
  CSA-reduced column counts; dense feature-extraction layers run the same
  fused inner product, and the output layer reduces its products with the
  fused word-parallel majority chain
  (:func:`repro.sc.packed.fused_xnor_majority_chain`).

All large intermediates -- patch gathers, column counts, CSA planes,
stepper slabs, layer outputs -- are views over one per-backend
:class:`~repro.workspace.Workspace`, so a steady-state ``forward()``
performs near-zero heap allocation and the chunking budget admits far
larger position chunks (fewer recurrence invocations) within the same
memory envelope.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.backends.base import Backend
from repro.backends.registry import register_backend
from repro.blocks.batched import (
    feature_extraction_recurrence_words,
    pooling_recurrence,
)
from repro.blocks.categorization import prefix_chain_scores
from repro.blocks.feature_extraction import (
    SorterFeatureExtractionBlock,
    neutral_column,
)
from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    LogitScale,
)
from repro.nn.sc_layers import ScNetworkMapper
from repro.obs.counters import GLOBAL_COUNTERS, KernelCounters, kernel_note
from repro.sc.packed import (
    fused_xnor_column_counts,
    fused_xnor_majority_chain,
    ones_count,
    pack_bits,
    packed_column_counts,
)
from repro.workspace import Workspace

__all__ = ["BitExactPackedBackend"]


@register_backend
class BitExactPackedBackend(Backend):
    """Bit-exact simulation with fused kernels on a word-packed data plane.

    Args:
        mapper: the SC network mapper.
        position_chunk: optional cap on CONV output positions / FC neurons
            per fused-reduction chunk; ``None`` picks automatically from
            the memory budget.  CONV chunks are materialised in whole
            output rows (matching the batched backend), so the effective
            floor is one row of positions.

    A backend instance owns one :class:`~repro.workspace.Workspace` and is
    therefore **not** safe for concurrent ``forward()`` calls from several
    threads; give each thread (or serving-worker replica) its own
    instance, which is what :class:`~repro.serve.ScInferenceService` and
    the process-sharded parallel backend do anyway.
    """

    name = "bit-exact-packed"
    description = "bit-exact simulation on a word-packed end-to-end data plane"
    bit_exact = True
    stochastic = True
    packed_data_plane = True
    progressive = True
    batch_invariant = True

    #: Target size (bytes) of the live per-chunk working set (column
    #: counts + stepper slabs + CSA planes).  Unlike the pre-fusion
    #: budget, this accounts for *everything* the chunk keeps live -- the
    #: fused kernels shrank the per-position footprint by the fan-in
    #: factor, so the same envelope admits much larger chunks (fewer
    #: stepper invocations, less Python dispatch).
    _CHUNK_BYTES_BUDGET = 128 * 1024 * 1024

    #: Optional word-direct comparator kernel handed to the mapper's
    #: stream generation (see
    #: :meth:`~repro.nn.sc_layers.ScNetworkMapper._packed_comparator_streams`).
    #: ``None`` keeps the NumPy compare-and-pack; the native backend
    #: installs the compiled comparator here.
    _stream_packer = None

    def __init__(
        self, mapper: ScNetworkMapper, position_chunk: int | None = None
    ) -> None:
        super().__init__(mapper)
        if position_chunk is not None and position_chunk < 1:
            raise ConfigurationError("position_chunk must be >= 1")
        self.position_chunk = position_chunk
        self.workspace = Workspace()
        #: Per-kernel, per-tier invocation counters of this instance
        #: (surfaced through :meth:`~repro.backends.base.Backend.kernel_snapshot`
        #: and the serving layer's ``snapshot()["kernels"]``).
        self.counters = KernelCounters()

    @classmethod
    def availability_note(cls) -> str | None:
        """Registry note: process-wide kernel-tier counter summary."""
        return kernel_note()

    # -- kernel seam -----------------------------------------------------------
    #
    # The three hottest loops of the packed data plane go through these
    # overridable methods so a compiled tier
    # (:class:`~repro.backends.native.BitExactNativeBackend`) can slot in
    # per-kernel replacements while inheriting the layer drivers, the
    # chunking policy and the workspace discipline unchanged.  Every
    # invocation is folded into the kernel-tier counters (instance and
    # process-wide) -- one timestamp pair and two lock acquisitions per
    # chunked kernel call, noise next to the kernels themselves.

    def _record_kernel(
        self, kernel: str, tier: str, started: float, nbytes: int
    ) -> None:
        """Fold one seam invocation into the tier counters."""
        elapsed = time.perf_counter() - started
        self.counters.record(kernel, tier, elapsed, nbytes)
        GLOBAL_COUNTERS.record(kernel, tier, elapsed, nbytes)

    def _fused_counts(self, a, b, extra, out, key) -> None:
        """Fused XNOR -> CSA column counts into ``out`` (see
        :func:`repro.sc.packed.fused_xnor_column_counts`)."""
        started = time.perf_counter()
        fused_xnor_column_counts(
            a,
            b,
            self.mapper.stream_length,
            extra=extra,
            out=out,
            workspace=self.workspace,
            key=key,
        )
        self._record_kernel("fused_counts", "numpy", started, out.nbytes)

    def _fused_chain(self, a, b, out, key) -> None:
        """Fused XNOR -> majority chain into ``out`` (see
        :func:`repro.sc.packed.fused_xnor_majority_chain`)."""
        started = time.perf_counter()
        fused_xnor_majority_chain(
            a,
            b,
            self.mapper.stream_length,
            out=out,
            workspace=self.workspace,
            key=key,
        )
        self._record_kernel("fused_chain", "numpy", started, out.nbytes)

    def _stream_words(self, weights, rng) -> np.ndarray:
        """Packed weight/bias streams through the active comparator."""
        started = time.perf_counter()
        words = self.mapper.weight_stream_words(
            weights, rng, packer=self._stream_packer
        )
        # Tier attribution follows the installed comparator: the native
        # backend sets ``_stream_packer`` only while the compiled tier is
        # active, so packer-present means word-direct native packing.
        tier = "numpy" if self._stream_packer is None else "native"
        self._record_kernel("stream_words", tier, started, words.nbytes)
        return words

    def output_stream_words(
        self, images: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Packed categorization-output streams for a batch of images.

        The stream randomness is drawn in exactly the order and shape of
        the legacy / batched paths (one shared comparison-draw tensor,
        then per-layer weight and bias streams), so the decoded scores are
        bit-identical to
        :meth:`~repro.nn.sc_layers.ScNetworkMapper.bit_exact_forward_legacy`.
        Keeping the *streams* (rather than only their decoded means)
        available is what the progressive early exit builds on: any prefix
        of these words is exactly the stream the hardware would have
        produced had it stopped that many cycles in.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (a single ``(channels, height, width)`` image
                is also accepted).
            rng: stream-generation random generator.

        Returns:
            ``(batch, n_classes, ceil(N / 64))`` packed ``uint64`` output
            words.  The final (categorization) layer's words are freshly
            allocated -- unlike the inter-layer buffers they do not live
            in the workspace, so callers may hold them across calls.
        """
        mapper = self.mapper
        images = self._check_images(images)
        rng = rng or np.random.default_rng(mapper.seed)
        # The shared SNG preamble keeps the RNG consumption identical to
        # the batched/legacy paths (the bit-exactness contract).
        started = time.perf_counter()
        words = mapper.input_stream_words(images, rng, packer=self._stream_packer)
        self._record_kernel(
            "stream_words",
            "numpy" if self._stream_packer is None else "native",
            started,
            words.nbytes,
        )
        dense_layers = [l for l in mapper.network.layers if isinstance(l, Dense)]
        dense_seen = 0
        for index, layer in enumerate(mapper.network.layers):
            if isinstance(layer, Conv2D):
                words = self._packed_conv(words, layer, rng, index)
            elif isinstance(layer, AvgPool2D):
                words = self._packed_pool(words, layer, index)
            elif isinstance(layer, Flatten):
                words = words.reshape(words.shape[0], -1, words.shape[-1])
            elif isinstance(layer, Dense):
                dense_seen += 1
                is_output = dense_seen == len(dense_layers)
                words = self._packed_dense(words, layer, rng, is_output, index)
            elif isinstance(layer, (HardwareActivation, ClipActivation, LogitScale)):
                continue
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"cannot map layer {type(layer).__name__} to SC hardware"
                )
        return words

    def forward(
        self, images: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Decoded class scores: popcount of the full output streams.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (a single ``(channels, height, width)`` image
                is also accepted).
            rng: stream-generation random generator.

        Returns:
            ``(batch, n_classes)`` decoded class scores.
        """
        words = self.output_stream_words(images, rng)
        return 2.0 * (ones_count(words) / float(self.mapper.stream_length)) - 1.0

    def forward_partial(
        self,
        images: np.ndarray,
        checkpoints,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Class scores at stream prefixes, via prefix popcounts.

        One full simulation produces the packed output streams; every
        checkpoint is then a prefix popcount over the words
        (:func:`repro.blocks.categorization.prefix_chain_scores`), which
        the word layout makes nearly free.  Because every block recurrence
        is causal in the stream axis, checkpoint ``P`` is *exactly* the
        score the hardware would have decoded after streaming ``P``
        cycles, and the final checkpoint (``P = N``) reproduces
        :meth:`forward` bit for bit.
        """
        points = self._check_checkpoints(checkpoints)
        words = self.output_stream_words(images, rng)
        return prefix_chain_scores(words, points, self.mapper.stream_length)

    # -- layer kernels ---------------------------------------------------------

    @staticmethod
    def _count_dtype(m_total: int):
        """Count dtype wide enough for ``m_total`` streams (plus padding)."""
        return np.uint8 if m_total <= 255 else np.uint16

    def _chunk_bytes_per_position(self, m: int, count_itemsize: int) -> int:
        """Live bytes one output position keeps during a fused chunk.

        Column counts (``count_itemsize`` bytes per cycle), the stepper's
        time-major slab (up to ``int32`` per cycle), and the streaming-CSA
        plane set (two planes per carry-save level plus product/scratch,
        at one byte per eight cycles each).
        """
        n = self.mapper.stream_length
        levels = max(1, math.ceil(math.log2(m + 1)))
        live_planes = 2 * levels + 3
        return (count_itemsize + 4) * n + live_planes * (n // 8 + 8)

    def _auto_chunk(self, bytes_per_item: int) -> int:
        """Positions/neurons per chunk fitting the working-set budget."""
        return max(1, self._CHUNK_BYTES_BUDGET // max(1, bytes_per_item))

    def _recurrence_words(
        self, counts: np.ndarray, m: int, neutral: np.ndarray | None
    ) -> np.ndarray:
        """Column counts -> packed activated streams (workspace-backed).

        The returned words live in the workspace; callers copy them into
        their per-layer output buffer before the next stepper call.
        """
        started = time.perf_counter()
        if neutral is not None:
            # Even input sizes are padded with the alternating neutral
            # stream; its contribution is added to the counts directly
            # instead of materialising the extra packed column.
            np.add(counts, neutral, out=counts, casting="unsafe")
        half = SorterFeatureExtractionBlock(m).threshold
        words = feature_extraction_recurrence_words(
            counts, half, -half, half + 1, workspace=self.workspace
        )
        self._record_kernel(
            "recurrence_words", "numpy", started, words.nbytes
        )
        return words

    def _packed_conv(
        self,
        words: np.ndarray,
        layer: Conv2D,
        rng: np.random.Generator,
        layer_key: int,
    ) -> np.ndarray:
        n = self.mapper.stream_length
        n_words = words.shape[-1]
        batch, channels, height, width, _ = words.shape
        kernel = layer.kernel_size
        stride = layer.stride
        pad = (kernel - 1) // 2 if layer.padding == "same" else 0
        ws = self.workspace
        if pad:
            padded = ws.array(
                (layer_key, "pad"),
                (batch, channels, height + 2 * pad, width + 2 * pad, n_words),
                np.uint64,
            )
            padded[...] = 0
            padded[:, :, pad : pad + height, pad : pad + width] = words
        else:
            padded = words
        out_h = (height + 2 * pad - kernel) // stride + 1
        out_w = (width + 2 * pad - kernel) // stride + 1
        # Zero-copy sliding windows over (H, W); the word axis rides along
        # and patches are materialised one position chunk at a time.
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kernel, kernel), axis=(2, 3)
        )[:, :, ::stride, ::stride]  # (B, C, out_h, out_w, words, k, k)
        weight_words = self._stream_words(layer.weights, rng)
        bias_words = self._stream_words(layer.bias, rng)
        out_ch = layer.out_channels
        fan_in = layer.fan_in
        m = fan_in + 1
        dtype = self._count_dtype(m + 1)
        # Per position: the fused working set (scaled by out_ch) plus the
        # im2col patch gather, which carries the fan-in once per position
        # regardless of out_ch.
        chunk = self.position_chunk or self._auto_chunk(
            batch
            * (
                out_ch * self._chunk_bytes_per_position(m, dtype().itemsize)
                + fan_in * (n // 8 + 8)
            )
        )
        row_chunk = max(1, chunk // out_w)
        neutral = neutral_column(n) if m % 2 == 0 else None
        output = ws.array(
            (layer_key, "out"), (batch, out_ch, out_h * out_w, n_words), np.uint64
        )
        for row_start in range(0, out_h, row_chunk):
            row_end = min(out_h, row_start + row_chunk)
            rows = row_end - row_start
            pc = rows * out_w
            # (B, C, rows, out_w, W, k, k) -> (B, rows*out_w, fan_in, W),
            # the im2col channel-major (C, kh, kw) patch layout, gathered
            # straight into a recycled buffer.
            patches = ws.array(
                (layer_key, "patches"), (batch, pc, fan_in, n_words), np.uint64
            )
            patches.reshape(
                batch, rows, out_w, channels, kernel, kernel, n_words
            )[...] = windows[:, :, row_start:row_end].transpose(
                0, 2, 3, 1, 5, 6, 4
            )
            counts = ws.array(
                (layer_key, "counts"), (batch, pc, out_ch, n), dtype
            )
            self._fused_counts(
                patches[:, :, None, :, :],
                weight_words[None, None, :, :, :],
                bias_words[None, None, :, None, :],
                counts,
                (layer_key, "csa"),
            )
            activated = self._recurrence_words(counts, m, neutral)
            start = row_start * out_w
            output[:, :, start : start + pc] = activated.transpose(0, 2, 1, 3)
        return output.reshape(batch, out_ch, out_h, out_w, n_words)

    def _packed_pool(
        self, words: np.ndarray, layer: AvgPool2D, layer_key: int
    ) -> np.ndarray:
        n = self.mapper.stream_length
        batch, channels, height, width, n_words = words.shape
        p = layer.pool_size
        out_h, out_w = height // p, width // p
        ws = self.workspace
        trimmed = words[:, :, : out_h * p, : out_w * p]
        grouped = ws.array(
            (layer_key, "grouped"),
            (batch, channels, out_h, out_w, p * p, n_words),
            np.uint64,
        )
        grouped.reshape(batch, channels, out_h, out_w, p, p, n_words)[...] = (
            trimmed.reshape(batch, channels, out_h, p, out_w, p, n_words)
            .transpose(0, 1, 2, 4, 3, 5, 6)
        )
        # Exact closed form of the pooling counter on the CSA column
        # counts; only the (log-size) count planes and the single output
        # stream are ever unpacked.
        counts = ws.array(
            (layer_key, "counts"), (batch, channels, out_h, out_w, n), np.uint8
        )
        packed_column_counts(grouped, n, out=counts)
        output = ws.array(
            (layer_key, "out"),
            (batch, channels, out_h, out_w, n_words),
            np.uint64,
        )
        output[...] = pack_bits(pooling_recurrence(counts, p * p))
        return output

    def _packed_dense(
        self,
        words: np.ndarray,
        layer: Dense,
        rng: np.random.Generator,
        is_output: bool,
        layer_key: int,
    ) -> np.ndarray:
        n = self.mapper.stream_length
        n_words = words.shape[-1]
        batch = words.shape[0]
        if words.shape[1:] != (layer.in_features, n_words):
            raise ShapeError(
                f"dense layer expects (batch, {layer.in_features}, {n_words}) "
                f"packed streams, got {words.shape}"
            )
        in_features = layer.in_features
        weight_words = self._stream_words(layer.weights, rng)
        bias_words = self._stream_words(layer.bias, rng)
        ws = self.workspace
        if is_output:
            # The categorization layer's words are returned to the caller
            # (and may be held across calls by the progressive engine), so
            # they are allocated fresh rather than in the workspace.
            outputs = np.empty(
                (batch, layer.out_features, n_words), dtype=np.uint64
            )
            chunk = self.position_chunk or self._auto_chunk(
                batch * 6 * (n // 8 + 8)
            )
            for start in range(0, layer.out_features, chunk):
                w_chunk = weight_words[start : start + chunk]  # (oc, in, W)
                self._fused_chain(
                    words[:, None, :, :],
                    w_chunk[None, :, :, :],
                    outputs[:, start : start + w_chunk.shape[0]],
                    (layer_key, "chain"),
                )
            return outputs
        m = in_features + 1
        dtype = self._count_dtype(m + 1)
        chunk = self.position_chunk or self._auto_chunk(
            batch * self._chunk_bytes_per_position(m, dtype().itemsize)
        )
        neutral = neutral_column(n) if m % 2 == 0 else None
        outputs = ws.array(
            (layer_key, "out"), (batch, layer.out_features, n_words), np.uint64
        )
        for start in range(0, layer.out_features, chunk):
            w_chunk = weight_words[start : start + chunk]  # (oc, in, W)
            oc = w_chunk.shape[0]
            counts = ws.array((layer_key, "counts"), (batch, oc, n), dtype)
            self._fused_counts(
                words[:, None, :, :],
                w_chunk[None, :, :, :],
                bias_words[None, start : start + oc, None, :],
                counts,
                (layer_key, "csa"),
            )
            outputs[:, start : start + oc] = self._recurrence_words(
                counts, m, neutral
            )
        return outputs
