"""Bit-exact inference on a fully word-packed data plane.

:class:`BitExactPackedBackend` runs the same block simulation as the
legacy and batched backends -- identical streams, identical counter
recurrences, bit-identical scores -- but keeps the inter-layer feature
maps **word-packed** (64 stream bits per ``uint64``) from the SNG output
all the way to the categorization chain:

* CONV layers gather im2col patches directly over packed words (zero-copy
  sliding windows on the spatial axes, the word axis rides along), form
  the XNOR product streams as word operations, reduce them to per-cycle
  column counts with the carry-save adder tree
  (:func:`repro.sc.packed.packed_column_counts`), and advance the
  feature-extraction recurrence with the word-blocked stepper
  (:func:`repro.blocks.batched.feature_extraction_recurrence_words`),
  which emits packed output words natively.
* Pooling uses the exact closed form of the pooling counter on the
  CSA-reduced column counts and re-packs the output stream.
* Dense feature-extraction layers run the same packed inner product
  (word XNOR + CSA counts + stepper); the output layer reduces packed
  products with the word-parallel majority chain.

Packing shrinks every transient product tensor 8x, so the memory budget
admits 8x more output positions per chunk, which in turn slashes the
number of recurrence invocations -- that, plus the all-states stepper on
CONV-sized blocks, is where the end-to-end speedup over the batched
``uint8`` path comes from.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.backends.registry import register_backend
from repro.blocks.batched import (
    feature_extraction_recurrence_words,
    pooling_recurrence,
)
from repro.blocks.categorization import prefix_chain_scores
from repro.blocks.feature_extraction import (
    SorterFeatureExtractionBlock,
    neutral_column,
)
from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    LogitScale,
)
from repro.nn.sc_layers import ScNetworkMapper
from repro.sc.packed import (
    majority_chain_words,
    ones_count,
    pack_bits,
    packed_column_counts,
    tail_mask,
)

__all__ = ["BitExactPackedBackend"]


@register_backend
class BitExactPackedBackend(Backend):
    """Bit-exact simulation with word-packed inter-layer feature maps.

    Args:
        mapper: the SC network mapper.
        position_chunk: optional cap on CONV output positions / FC neurons
            per product tensor; ``None`` picks automatically from the
            memory budget (packing admits ~8x more positions per chunk
            than the batched backend).  CONV chunks are materialised in
            whole output rows (matching the batched backend), so the
            effective floor is one row of positions.
    """

    name = "bit-exact-packed"
    description = "bit-exact simulation on a word-packed end-to-end data plane"
    bit_exact = True
    stochastic = True
    packed_data_plane = True
    progressive = True

    #: Target size (bytes) for the transient packed-product tensors.
    #: Larger than the batched mapper's uint8 budget: packed words carry
    #: 8x the positions per byte, and bigger chunks mean fewer recurrence
    #: invocations (the stepper's slabs grow, its Python dispatch count
    #: shrinks).
    _PRODUCT_BYTES_BUDGET = 48 * 1024 * 1024

    def __init__(
        self, mapper: ScNetworkMapper, position_chunk: int | None = None
    ) -> None:
        super().__init__(mapper)
        if position_chunk is not None and position_chunk < 1:
            raise ConfigurationError("position_chunk must be >= 1")
        self.position_chunk = position_chunk

    def output_stream_words(
        self, images: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Packed categorization-output streams for a batch of images.

        The stream randomness is drawn in exactly the order and shape of
        the legacy / batched paths (one shared comparison-draw tensor,
        then per-layer weight and bias streams), so the decoded scores are
        bit-identical to
        :meth:`~repro.nn.sc_layers.ScNetworkMapper.bit_exact_forward_legacy`.
        Keeping the *streams* (rather than only their decoded means)
        available is what the progressive early exit builds on: any prefix
        of these words is exactly the stream the hardware would have
        produced had it stopped that many cycles in.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (a single ``(channels, height, width)`` image
                is also accepted).
            rng: stream-generation random generator.

        Returns:
            ``(batch, n_classes, ceil(N / 64))`` packed ``uint64`` output
            words.
        """
        mapper = self.mapper
        images = self._check_images(images)
        rng = rng or np.random.default_rng(mapper.seed)
        # The shared SNG preamble keeps the RNG consumption identical to
        # the batched/legacy paths (the bit-exactness contract).
        words = pack_bits(mapper.input_stream_bits(images, rng))
        dense_layers = [l for l in mapper.network.layers if isinstance(l, Dense)]
        dense_seen = 0
        for layer in mapper.network.layers:
            if isinstance(layer, Conv2D):
                words = self._packed_conv(words, layer, rng)
            elif isinstance(layer, AvgPool2D):
                words = self._packed_pool(words, layer)
            elif isinstance(layer, Flatten):
                words = words.reshape(words.shape[0], -1, words.shape[-1])
            elif isinstance(layer, Dense):
                dense_seen += 1
                is_output = dense_seen == len(dense_layers)
                words = self._packed_dense(words, layer, rng, is_output)
            elif isinstance(layer, (HardwareActivation, ClipActivation, LogitScale)):
                continue
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"cannot map layer {type(layer).__name__} to SC hardware"
                )
        return words

    def forward(
        self, images: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Decoded class scores: popcount of the full output streams.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (a single ``(channels, height, width)`` image
                is also accepted).
            rng: stream-generation random generator.

        Returns:
            ``(batch, n_classes)`` decoded class scores.
        """
        words = self.output_stream_words(images, rng)
        return 2.0 * (ones_count(words) / float(self.mapper.stream_length)) - 1.0

    def forward_partial(
        self,
        images: np.ndarray,
        checkpoints,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Class scores at stream prefixes, via prefix popcounts.

        One full simulation produces the packed output streams; every
        checkpoint is then a prefix popcount over the words
        (:func:`repro.blocks.categorization.prefix_chain_scores`), which
        the word layout makes nearly free.  Because every block recurrence
        is causal in the stream axis, checkpoint ``P`` is *exactly* the
        score the hardware would have decoded after streaming ``P``
        cycles, and the final checkpoint (``P = N``) reproduces
        :meth:`forward` bit for bit.
        """
        points = self._check_checkpoints(checkpoints)
        words = self.output_stream_words(images, rng)
        return prefix_chain_scores(words, points, self.mapper.stream_length)

    # -- layer kernels ---------------------------------------------------------

    def _weight_words(
        self, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Packed bipolar weight streams (same draws as the uint8 paths)."""
        return pack_bits(self.mapper.weight_stream_bits(weights, rng))

    def _auto_chunk(self, bytes_per_item: int) -> int:
        """Positions/neurons per chunk fitting the packed-product budget."""
        return max(1, self._PRODUCT_BYTES_BUDGET // max(1, bytes_per_item))

    def _column_counts(self, products: np.ndarray, m: int) -> np.ndarray:
        """Per-cycle ones counts of the (neutrally padded) product streams.

        When the product count ``m`` is even the feature-extraction block
        pads with the alternating neutral stream; its contribution is
        added to the CSA counts directly instead of materialising the
        extra packed column.
        """
        n = self.mapper.stream_length
        counts = packed_column_counts(products, n)
        if m % 2 == 0:
            counts = counts + neutral_column(n)
        return counts

    def _feature_extraction_words(
        self, products: np.ndarray, n_inputs: int
    ) -> np.ndarray:
        """Packed products ``(..., M, W)`` -> packed activated streams."""
        block = SorterFeatureExtractionBlock(n_inputs)
        counts = self._column_counts(products, n_inputs)
        half = block.threshold
        return feature_extraction_recurrence_words(counts, half, -half, half + 1)

    def _packed_conv(
        self, words: np.ndarray, layer: Conv2D, rng: np.random.Generator
    ) -> np.ndarray:
        n = self.mapper.stream_length
        n_words = words.shape[-1]
        batch, channels, height, width, _ = words.shape
        kernel = layer.kernel_size
        stride = layer.stride
        pad = (kernel - 1) // 2 if layer.padding == "same" else 0
        if pad:
            padded = np.pad(
                words, ((0, 0), (0, 0), (pad, pad), (pad, pad), (0, 0))
            )
        else:
            padded = words
        out_h = (height + 2 * pad - kernel) // stride + 1
        out_w = (width + 2 * pad - kernel) // stride + 1
        # Zero-copy sliding windows over (H, W); the word axis rides along
        # and patches are materialised one position chunk at a time.
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kernel, kernel), axis=(2, 3)
        )[:, :, ::stride, ::stride]  # (B, C, out_h, out_w, words, k, k)
        weight_words = self._weight_words(layer.weights, rng)  # (oc, fan_in, W)
        bias_words = self._weight_words(layer.bias, rng)  # (oc, W)
        out_ch = layer.out_channels
        fan_in = layer.fan_in
        mask = tail_mask(n)
        chunk = self.position_chunk or self._auto_chunk(
            batch * out_ch * (fan_in + 2) * n_words * 8
        )
        row_chunk = max(1, chunk // out_w)
        output = np.empty((batch, out_ch, out_h * out_w, n_words), dtype=np.uint64)
        for row_start in range(0, out_h, row_chunk):
            row_end = min(out_h, row_start + row_chunk)
            # (B, C, rows, out_w, W, k, k) -> (B, rows*out_w, fan_in, W),
            # the im2col channel-major (C, kh, kw) patch layout.
            p_chunk = np.ascontiguousarray(
                windows[:, :, row_start:row_end].transpose(0, 2, 3, 1, 5, 6, 4)
            ).reshape(batch, (row_end - row_start) * out_w, fan_in, n_words)
            pc = p_chunk.shape[1]
            products = np.empty(
                (batch, pc, out_ch, fan_in + 1, n_words), dtype=np.uint64
            )
            np.bitwise_xor(
                p_chunk[:, :, None, :, :],
                weight_words[None, None, :, :, :],
                out=products[..., :fan_in, :],
            )
            np.bitwise_not(
                products[..., :fan_in, :], out=products[..., :fan_in, :]
            )
            products[..., :fan_in, -1] &= mask
            products[..., fan_in, :] = bias_words[None, None, :, :]
            activated = self._feature_extraction_words(products, fan_in + 1)
            start = row_start * out_w
            output[:, :, start : start + pc] = activated.transpose(0, 2, 1, 3)
        return output.reshape(batch, out_ch, out_h, out_w, n_words)

    def _packed_pool(self, words: np.ndarray, layer: AvgPool2D) -> np.ndarray:
        n = self.mapper.stream_length
        batch, channels, height, width, n_words = words.shape
        p = layer.pool_size
        out_h, out_w = height // p, width // p
        trimmed = words[:, :, : out_h * p, : out_w * p]
        grouped = trimmed.reshape(batch, channels, out_h, p, out_w, p, n_words)
        grouped = grouped.transpose(0, 1, 2, 4, 3, 5, 6).reshape(
            batch, channels, out_h, out_w, p * p, n_words
        )
        # Exact closed form of the pooling counter on the CSA column
        # counts; only the (log-size) count planes and the single output
        # stream are ever unpacked.
        counts = packed_column_counts(grouped, n)
        return pack_bits(pooling_recurrence(counts, p * p))

    def _packed_dense(
        self,
        words: np.ndarray,
        layer: Dense,
        rng: np.random.Generator,
        is_output: bool,
    ) -> np.ndarray:
        n = self.mapper.stream_length
        n_words = words.shape[-1]
        batch = words.shape[0]
        if words.shape[1:] != (layer.in_features, n_words):
            raise ShapeError(
                f"dense layer expects (batch, {layer.in_features}, {n_words}) "
                f"packed streams, got {words.shape}"
            )
        in_features = layer.in_features
        weight_words = self._weight_words(layer.weights, rng)  # (out, in, W)
        bias_words = self._weight_words(layer.bias, rng)  # (out, W)
        mask = tail_mask(n)
        chunk = self.position_chunk or self._auto_chunk(
            batch * (in_features + 1) * n_words * 8
        )
        outputs = np.empty((batch, layer.out_features, n_words), dtype=np.uint64)
        for start in range(0, layer.out_features, chunk):
            w_chunk = weight_words[start : start + chunk]  # (oc, in, W)
            oc = w_chunk.shape[0]
            rows = in_features if is_output else in_features + 1
            products = np.empty((batch, oc, rows, n_words), dtype=np.uint64)
            np.bitwise_xor(
                words[:, None, :, :],
                w_chunk[None, :, :, :],
                out=products[..., :in_features, :],
            )
            np.bitwise_not(
                products[..., :in_features, :], out=products[..., :in_features, :]
            )
            products[..., :in_features, -1] &= mask
            if is_output:
                outputs[:, start : start + oc] = majority_chain_words(products)
            else:
                products[..., in_features, :] = bias_words[None, start : start + oc, :]
                outputs[:, start : start + oc] = self._feature_extraction_words(
                    products, in_features + 1
                )
        return outputs
