"""Design-choice ablations called out in DESIGN.md.

Each function isolates one design decision of the paper and quantifies its
effect, so the benchmarks can show *why* the proposed design looks the way
it does rather than only that it works:

* sorter-based block vs the prior-work APC + Btanh block (accuracy),
* signed vs unsigned feedback accumulator (accuracy),
* shared RNG matrix vs private TRNGs (JJ cost and stream correlation),
* majority synthesis on/off (JJ count and depth),
* automatic buffer/splitter insertion overhead (JJ count and depth).
"""

from __future__ import annotations

import numpy as np

from repro.aqfp.balance import balance_netlist
from repro.aqfp.gates import build_sorter_netlist
from repro.aqfp.synthesis import majority_synthesis
from repro.blocks.apc_baseline import ApcFeatureExtractionBlock
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock
from repro.blocks.sng_block import SngBlock
from repro.rng.quality import pairwise_word_correlation
from repro.sorting.bitonic import bitonic_sorter

__all__ = [
    "ablation_sorter_vs_apc",
    "ablation_feedback_mode",
    "ablation_rng_sharing",
    "ablation_majority_synthesis",
    "ablation_balancing_overhead",
]


def _product_streams(
    input_size: int, stream_length: int, rng: np.random.Generator
) -> tuple[np.ndarray, float]:
    inputs = rng.uniform(-1.0, 1.0, input_size)
    weights = rng.uniform(-1.0, 1.0, input_size)
    p_x = (inputs + 1.0) / 2.0
    p_w = (weights + 1.0) / 2.0
    x_bits = (rng.random((input_size, stream_length)) < p_x[:, None]).astype(np.uint8)
    w_bits = (rng.random((input_size, stream_length)) < p_w[:, None]).astype(np.uint8)
    products = np.logical_not(np.logical_xor(x_bits, w_bits)).astype(np.uint8)
    return products, float((inputs * weights).sum())


def ablation_sorter_vs_apc(
    input_size: int = 25, stream_length: int = 1024, trials: int = 10, seed: int = 3
) -> dict[str, float]:
    """Accuracy of the proposed sorter block vs the prior-work APC block.

    Both blocks see identical product streams; each is compared against its
    own intended activation (clip for the sorter block, tanh for the APC
    block) so the comparison isolates implementation error, not the choice
    of activation.
    """
    rng = np.random.default_rng(seed)
    sorter_block = SorterFeatureExtractionBlock(input_size)
    apc_block = ApcFeatureExtractionBlock(input_size)
    sorter_errors, apc_errors = [], []
    for _ in range(trials):
        products, z = _product_streams(input_size, stream_length, rng)
        sorter_out = 2.0 * sorter_block.forward_products(products).mean() - 1.0
        apc_out = 2.0 * apc_block.forward_products(products).mean() - 1.0
        sorter_errors.append(abs(sorter_out - np.clip(z, -1.0, 1.0)))
        apc_errors.append(abs(apc_out - np.tanh(z)))
    return {
        "sorter_mean_abs_error": float(np.mean(sorter_errors)),
        "apc_mean_abs_error": float(np.mean(apc_errors)),
    }


def ablation_feedback_mode(
    input_size: int = 49, stream_length: int = 1024, trials: int = 10, seed: int = 5
) -> dict[str, float]:
    """Signed vs unsigned feedback accumulator of the feature-extraction block."""
    rng = np.random.default_rng(seed)
    signed_block = SorterFeatureExtractionBlock(input_size, feedback_mode="signed")
    unsigned_block = SorterFeatureExtractionBlock(input_size, feedback_mode="unsigned")
    signed_errors, unsigned_errors = [], []
    for _ in range(trials):
        products, z = _product_streams(input_size, stream_length, rng)
        target = float(np.clip(z, -1.0, 1.0))
        signed_out = 2.0 * signed_block.forward_products(products).mean() - 1.0
        unsigned_out = 2.0 * unsigned_block.forward_products(products).mean() - 1.0
        signed_errors.append(abs(signed_out - target))
        unsigned_errors.append(abs(unsigned_out - target))
    return {
        "signed_mean_abs_error": float(np.mean(signed_errors)),
        "unsigned_mean_abs_error": float(np.mean(unsigned_errors)),
    }


def ablation_rng_sharing(
    n_outputs: int = 100, n_bits: int = 10, cycles: int = 2048, seed: int = 11
) -> dict[str, float]:
    """JJ saving and correlation cost of the shared RNG matrix (Fig. 8)."""
    block = SngBlock(n_outputs, n_bits, seed=seed)
    shared = block.hardware()
    private = block.hardware_unshared()
    words = block.random_words(cycles)  # (n_outputs, cycles)
    correlation = pairwise_word_correlation(words.T)
    # Exclude the diagonal when reporting pairwise correlations.
    off_diagonal = correlation[~np.eye(correlation.shape[0], dtype=bool)]
    # RNG-only comparison (the matrix sharing acts on the RNG, not on the
    # comparators, which dominate the total SNG block cost).
    rng_shared = sum(m.jj_count for m in block._matrices)
    rng_private = n_outputs * n_bits * 2
    return {
        "shared_jj": float(shared.jj_count),
        "private_jj": float(private.jj_count),
        "rng_shared_jj": float(rng_shared),
        "rng_private_jj": float(rng_private),
        "jj_saving_ratio": float(private.jj_count / shared.jj_count),
        "mean_pairwise_correlation": float(off_diagonal.mean()),
        "max_pairwise_correlation": float(off_diagonal.max()),
    }


def ablation_majority_synthesis(width: int = 8) -> dict[str, float]:
    """Effect of majority synthesis on a bitonic-sorter netlist."""
    netlist = build_sorter_netlist(bitonic_sorter(width), "ablation-sorter")
    synthesized, report = majority_synthesis(netlist)
    return {
        "jj_before": float(report.jj_before),
        "jj_after": float(report.jj_after),
        "jj_saving": float(report.jj_saving),
        "gates_rewritten": float(report.and_or_rewritten),
        "depth_before": float(report.depth_before),
        "depth_after": float(report.depth_after),
    }


def ablation_balancing_overhead(width: int = 8) -> dict[str, float]:
    """JJ and depth overhead of automatic buffer/splitter insertion."""
    netlist = build_sorter_netlist(bitonic_sorter(width), "ablation-balance")
    balanced, report = balance_netlist(netlist)
    return {
        "jj_before": float(report.jj_before),
        "jj_after": float(report.jj_after),
        "jj_overhead": float(report.jj_overhead),
        "buffers_added": float(report.buffers_added),
        "splitters_added": float(report.splitters_added),
        "depth_before": float(report.depth_before),
        "depth_after": float(report.depth_after),
        "phase_aligned": float(balanced.is_phase_aligned()),
    }
