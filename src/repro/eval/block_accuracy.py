"""Block-accuracy sweeps (Tables 1-3).

Each function measures the inaccuracy of one proposed block over the same
parameter grid as the paper: input sizes along the rows and bit-stream
lengths along the columns.  Inputs and weights are drawn uniformly from the
bipolar range; every grid cell averages over several independent trials.

Reference conventions:

* feature extraction -- absolute error of the decoded block output against
  the ideal ``clip(w.x, -1, 1)`` of equation (1) (``reference="clip"``) or
  against the block's own expected transfer value (``reference="expected"``,
  which isolates the stochastic component the way the paper's 1/sqrt(N)
  scaling suggests).
* pooling -- absolute error against the exact mean of the inputs.
* categorization -- the paper's relative top-1 metric: the relative
  difference between the highest class score in software and in the SC
  domain.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.categorization import MajorityChainCategorizationBlock
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock, SorterTransferCurve
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.errors import ConfigurationError

__all__ = [
    "PAPER_TABLE1_INPUT_SIZES",
    "PAPER_TABLE2_INPUT_SIZES",
    "PAPER_TABLE3_INPUT_SIZES",
    "PAPER_STREAM_LENGTHS",
    "feature_extraction_inaccuracy",
    "pooling_inaccuracy",
    "categorization_inaccuracy",
    "table1_feature_extraction",
    "table2_pooling",
    "table3_categorization",
]

#: Row/column grids used by the paper's Tables 1-3.
PAPER_TABLE1_INPUT_SIZES = (9, 25, 49, 81, 121)
PAPER_TABLE2_INPUT_SIZES = (4, 9, 16, 25, 36)
PAPER_TABLE3_INPUT_SIZES = (100, 200, 500, 800)
PAPER_STREAM_LENGTHS = (128, 256, 512, 1024, 2048)


def _bipolar_streams(values: np.ndarray, length: int, rng: np.random.Generator) -> np.ndarray:
    p = (np.asarray(values, dtype=np.float64) + 1.0) / 2.0
    return (rng.random(p.shape + (length,)) < p[..., None]).astype(np.uint8)


def feature_extraction_inaccuracy(
    input_size: int,
    stream_length: int,
    trials: int = 20,
    seed: int = 1,
    reference: str = "clip",
) -> float:
    """Mean absolute inaccuracy of the sorter-based feature-extraction block.

    Args:
        input_size: number of products ``M``.
        stream_length: bit-stream length ``N``.
        trials: independent random input/weight draws averaged over.
        seed: randomness seed.
        reference: ``"clip"`` (ideal activated inner product) or
            ``"expected"`` (block's own expected transfer value).

    Returns:
        Mean absolute error of the decoded output.
    """
    if reference not in ("clip", "expected"):
        raise ConfigurationError("reference must be 'clip' or 'expected'")
    rng = np.random.default_rng(seed + input_size * 131 + stream_length)
    block = SorterFeatureExtractionBlock(input_size)
    curve = (
        SorterTransferCurve.cached(input_size, stream_length=4096)
        if reference == "expected"
        else None
    )
    errors = []
    for _ in range(trials):
        inputs = rng.uniform(-1.0, 1.0, input_size)
        weights = rng.uniform(-1.0, 1.0, input_size)
        input_bits = _bipolar_streams(inputs, stream_length, rng)
        weight_bits = _bipolar_streams(weights, stream_length, rng)
        products = np.logical_not(np.logical_xor(input_bits, weight_bits)).astype(np.uint8)
        decoded = 2.0 * block.forward_products(products).mean() - 1.0
        z = float((inputs * weights).sum())
        target = float(np.clip(z, -1.0, 1.0)) if curve is None else float(curve(z))
        errors.append(abs(decoded - target))
    return float(np.mean(errors))


def pooling_inaccuracy(
    input_size: int, stream_length: int, trials: int = 20, seed: int = 1
) -> float:
    """Mean absolute inaccuracy of the sorter-based average-pooling block."""
    rng = np.random.default_rng(seed + input_size * 173 + stream_length)
    block = SorterAveragePoolingBlock(input_size)
    errors = []
    for _ in range(trials):
        values = rng.uniform(-1.0, 1.0, input_size)
        bits = _bipolar_streams(values, stream_length, rng)
        decoded = 2.0 * block.forward_bits(bits).mean() - 1.0
        errors.append(abs(decoded - values.mean()))
    return float(np.mean(errors))


def categorization_inaccuracy(
    input_size: int,
    stream_length: int,
    n_outputs: int = 10,
    trials: int = 10,
    seed: int = 1,
) -> float:
    """Relative top-1 inaccuracy of the majority-chain categorization block.

    Mirrors the paper's metric: for each trial, ``n_outputs`` categorization
    blocks share one input vector.  The inaccuracy is the relative software
    score margin that the SC ranking "gives away": zero when the SC domain
    picks the same class as software, and otherwise the relative difference
    between the software top score and the software score of the class the
    SC domain picked.  A value of 0.4 % therefore means that any class
    outscoring the runner-up by more than 0.4 % is classified correctly.
    """
    rng = np.random.default_rng(seed + input_size * 197 + stream_length)
    block = MajorityChainCategorizationBlock(input_size)
    errors = []
    for _ in range(trials):
        inputs = rng.uniform(-1.0, 1.0, input_size)
        weights = rng.uniform(-1.0, 1.0, (n_outputs, input_size))
        input_bits = _bipolar_streams(inputs, stream_length, rng)
        software_scores = weights @ inputs
        top = int(np.argmax(software_scores))
        sc_scores = np.empty(n_outputs)
        for class_index in range(n_outputs):
            weight_bits = _bipolar_streams(weights[class_index], stream_length, rng)
            products = np.logical_not(
                np.logical_xor(input_bits, weight_bits)
            ).astype(np.uint8)
            sc_scores[class_index] = block.forward_products(products).mean()
        sc_top = int(np.argmax(sc_scores))
        if sc_top == top:
            errors.append(0.0)
            continue
        # Normalise the given-away margin by the score spread so the metric
        # is a relative quantity as in the paper.
        spread = software_scores.max() - software_scores.min()
        margin = software_scores[top] - software_scores[sc_top]
        errors.append(float(margin / spread) if spread > 0 else 0.0)
    return float(np.mean(errors))


def _sweep(
    metric,
    input_sizes: tuple[int, ...],
    stream_lengths: tuple[int, ...],
    **kwargs: object,
) -> dict[int, dict[int, float]]:
    table: dict[int, dict[int, float]] = {}
    for size in input_sizes:
        table[size] = {}
        for length in stream_lengths:
            table[size][length] = metric(size, length, **kwargs)
    return table


def table1_feature_extraction(
    input_sizes: tuple[int, ...] = PAPER_TABLE1_INPUT_SIZES,
    stream_lengths: tuple[int, ...] = PAPER_STREAM_LENGTHS,
    trials: int = 20,
    reference: str = "clip",
) -> dict[int, dict[int, float]]:
    """Reproduce Table 1 as ``{input_size: {stream_length: inaccuracy}}``."""
    return _sweep(
        feature_extraction_inaccuracy,
        input_sizes,
        stream_lengths,
        trials=trials,
        reference=reference,
    )


def table2_pooling(
    input_sizes: tuple[int, ...] = PAPER_TABLE2_INPUT_SIZES,
    stream_lengths: tuple[int, ...] = PAPER_STREAM_LENGTHS,
    trials: int = 20,
) -> dict[int, dict[int, float]]:
    """Reproduce Table 2 as ``{input_size: {stream_length: inaccuracy}}``."""
    return _sweep(pooling_inaccuracy, input_sizes, stream_lengths, trials=trials)


def table3_categorization(
    input_sizes: tuple[int, ...] = PAPER_TABLE3_INPUT_SIZES,
    stream_lengths: tuple[int, ...] = PAPER_STREAM_LENGTHS,
    trials: int = 5,
) -> dict[int, dict[int, float]]:
    """Reproduce Table 3 as ``{input_size: {stream_length: inaccuracy}}``."""
    return _sweep(categorization_inaccuracy, input_sizes, stream_lengths, trials=trials)
