"""Reproduction harness for the paper's evaluation section.

One module per group of results:

* :mod:`~repro.eval.block_accuracy` -- Tables 1-3 (block inaccuracy sweeps).
* :mod:`~repro.eval.hardware_report` -- Tables 4-7 (AQFP vs CMOS hardware
  utilisation per block).
* :mod:`~repro.eval.network_report` -- Table 9 (network accuracy / energy /
  throughput) plus the Table 8 configuration check.
* :mod:`~repro.eval.figures` -- Fig. 7(b) (TRNG output distribution) and
  Fig. 13 (feature-extraction transfer curve) as data series.
* :mod:`~repro.eval.ablations` -- design-choice ablations called out in
  DESIGN.md (sorter vs APC block, shared vs private RNGs, signed vs unsigned
  feedback, majority synthesis, balancing overhead).
* :mod:`~repro.eval.tables` -- plain-text table rendering shared by the
  benchmarks and examples.
"""

from repro.eval.block_accuracy import (
    categorization_inaccuracy,
    feature_extraction_inaccuracy,
    pooling_inaccuracy,
    table1_feature_extraction,
    table2_pooling,
    table3_categorization,
)
from repro.eval.figures import fig7_rng_distribution, fig13_activation_curve
from repro.eval.hardware_report import (
    BlockComparison,
    table4_sng,
    table5_feature_extraction,
    table6_pooling,
    table7_categorization,
)
from repro.eval.network_report import NetworkReport, table8_configuration, table9_networks
from repro.eval.tables import format_table

__all__ = [
    "feature_extraction_inaccuracy",
    "pooling_inaccuracy",
    "categorization_inaccuracy",
    "table1_feature_extraction",
    "table2_pooling",
    "table3_categorization",
    "BlockComparison",
    "table4_sng",
    "table5_feature_extraction",
    "table6_pooling",
    "table7_categorization",
    "NetworkReport",
    "table8_configuration",
    "table9_networks",
    "fig7_rng_distribution",
    "fig13_activation_curve",
    "format_table",
]
