"""Per-block hardware utilisation comparisons (Tables 4-7).

Each ``tableN_*`` function sweeps the paper's input sizes and returns one
:class:`BlockComparison` per size, containing the AQFP cost (from the
stage-level block estimators and the AQFP technology model) and the CMOS
cost (from the 40 nm baseline models).  The paper's headline numbers are the
energy-efficiency ratios; absolute values depend on the calibration of the
two technology models and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aqfp.energy import HardwareCost
from repro.aqfp.technology import AqfpTechnology
from repro.blocks.categorization import MajorityChainCategorizationBlock
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.blocks.sng_block import SngBlock
from repro.cmos.library import CmosTechnology
from repro.cmos.sc_blocks import (
    cmos_apc_feature_extraction_cost,
    cmos_categorization_cost,
    cmos_mux_pooling_cost,
    cmos_sng_cost,
)

__all__ = [
    "BlockComparison",
    "PAPER_TABLE4_SIZES",
    "PAPER_TABLE5_SIZES",
    "PAPER_TABLE6_SIZES",
    "PAPER_TABLE7_SIZES",
    "table4_sng",
    "table5_feature_extraction",
    "table6_pooling",
    "table7_categorization",
]

PAPER_TABLE4_SIZES = (100, 500, 800)
PAPER_TABLE5_SIZES = (9, 25, 49, 81, 121, 500, 800)
PAPER_TABLE6_SIZES = (4, 9, 16, 25, 36)
PAPER_TABLE7_SIZES = (100, 200, 500, 800)


@dataclass(frozen=True)
class BlockComparison:
    """AQFP-vs-CMOS cost comparison for one block instance.

    Attributes:
        block: block family name.
        size: input (or output) size of the instance.
        aqfp: AQFP cost (energy per stream, fill latency).
        cmos: CMOS cost (energy per stream, stream delay).
    """

    block: str
    size: int
    aqfp: HardwareCost
    cmos: HardwareCost

    @property
    def energy_ratio(self) -> float:
        """CMOS energy divided by AQFP energy (the paper's headline metric)."""
        return self.cmos.energy_pj / self.aqfp.energy_pj

    @property
    def speedup(self) -> float:
        """CMOS delay divided by AQFP latency (the paper's speedup metric)."""
        return self.cmos.latency_ns / self.aqfp.latency_ns

    def as_row(self) -> list[object]:
        """Row for the text table: size, energies, delays, ratios."""
        return [
            self.size,
            self.aqfp.energy_pj,
            self.cmos.energy_pj,
            self.energy_ratio,
            self.aqfp.latency_ns,
            self.cmos.latency_ns,
            self.speedup,
        ]


def table4_sng(
    sizes: tuple[int, ...] = PAPER_TABLE4_SIZES,
    stream_length: int = 1024,
    n_bits: int = 10,
    aqfp: AqfpTechnology | None = None,
    cmos: CmosTechnology | None = None,
) -> list[BlockComparison]:
    """Table 4: stochastic number generator hardware utilisation."""
    aqfp = aqfp or AqfpTechnology()
    cmos = cmos or CmosTechnology()
    rows = []
    for size in sizes:
        block = SngBlock(size, n_bits)
        rows.append(
            BlockComparison(
                block="sng",
                size=size,
                aqfp=block.hardware().cost(aqfp, stream_length),
                cmos=cmos_sng_cost(size, cmos, stream_length, n_bits),
            )
        )
    return rows


def table5_feature_extraction(
    sizes: tuple[int, ...] = PAPER_TABLE5_SIZES,
    stream_length: int = 1024,
    aqfp: AqfpTechnology | None = None,
    cmos: CmosTechnology | None = None,
) -> list[BlockComparison]:
    """Table 5: feature-extraction block hardware utilisation."""
    aqfp = aqfp or AqfpTechnology()
    cmos = cmos or CmosTechnology()
    rows = []
    for size in sizes:
        block = SorterFeatureExtractionBlock(size)
        rows.append(
            BlockComparison(
                block="feature_extraction",
                size=size,
                aqfp=block.hardware().cost(aqfp, stream_length),
                cmos=cmos_apc_feature_extraction_cost(size, cmos, stream_length),
            )
        )
    return rows


def table6_pooling(
    sizes: tuple[int, ...] = PAPER_TABLE6_SIZES,
    stream_length: int = 1024,
    aqfp: AqfpTechnology | None = None,
    cmos: CmosTechnology | None = None,
) -> list[BlockComparison]:
    """Table 6: sub-sampling (average pooling) block hardware utilisation."""
    aqfp = aqfp or AqfpTechnology()
    cmos = cmos or CmosTechnology()
    rows = []
    for size in sizes:
        block = SorterAveragePoolingBlock(size)
        rows.append(
            BlockComparison(
                block="pooling",
                size=size,
                aqfp=block.hardware().cost(aqfp, stream_length),
                cmos=cmos_mux_pooling_cost(size, cmos, stream_length),
            )
        )
    return rows


def table7_categorization(
    sizes: tuple[int, ...] = PAPER_TABLE7_SIZES,
    stream_length: int = 1024,
    aqfp: AqfpTechnology | None = None,
    cmos: CmosTechnology | None = None,
) -> list[BlockComparison]:
    """Table 7: categorization block hardware utilisation."""
    aqfp = aqfp or AqfpTechnology()
    cmos = cmos or CmosTechnology()
    rows = []
    for size in sizes:
        block = MajorityChainCategorizationBlock(size)
        rows.append(
            BlockComparison(
                block="categorization",
                size=size,
                aqfp=block.hardware().cost(aqfp, stream_length),
                cmos=cmos_categorization_cost(size, cmos, stream_length),
            )
        )
    return rows
