"""Network-level evaluation (Tables 8 and 9).

Table 8 is a configuration check (the layer shapes of the two networks);
Table 9 compares, for the SNN and the DNN, the software (float) accuracy
against the SC implementations on CMOS and AQFP together with the energy per
image and the throughput of each hardware platform.

The hardware roll-up multiplies the per-block costs by the per-layer block
counts from :meth:`repro.nn.sc_layers.ScNetworkMapper.layer_inventories`,
exactly the way the paper scales block costs to networks: in a fully
pipelined SC engine every block processes one bit per cycle, so the energy
per image is the total hardware size times the stream length and the
throughput is one image per stream regardless of network depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aqfp.technology import AqfpTechnology
from repro.blocks.categorization import MajorityChainCategorizationBlock
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.blocks.sng_block import SngBlock
from repro.cmos.library import CmosTechnology
from repro.cmos.sc_blocks import (
    cmos_apc_feature_extraction_cost,
    cmos_categorization_cost,
    cmos_mux_pooling_cost,
    cmos_sng_cost,
)
from repro.api.session import Session
from repro.datasets import DigitDataset, generate_digit_dataset
from repro.errors import ConfigurationError
from repro.nn.architectures import build_dnn, build_snn, dnn_layer_specs, snn_layer_specs
from repro.nn.sc_layers import LayerInventory
from repro.nn.training import Trainer, TrainingConfig

__all__ = [
    "NetworkHardwareSummary",
    "NetworkReport",
    "table8_configuration",
    "network_hardware_rollup",
    "evaluate_network",
    "table9_networks",
]

#: pJ in a uJ, used by the Table 9 energy column.
PJ_PER_UJ = 1.0e6


@dataclass(frozen=True)
class NetworkHardwareSummary:
    """Hardware roll-up of one network on one platform."""

    platform: str
    energy_uj_per_image: float
    throughput_images_per_ms: float
    total_jj_or_gates: int


@dataclass(frozen=True)
class NetworkReport:
    """One row group of Table 9 (one network on all platforms)."""

    network: str
    software_accuracy: float
    cmos_accuracy: float
    aqfp_accuracy: float
    cmos: NetworkHardwareSummary
    aqfp: NetworkHardwareSummary

    @property
    def energy_ratio(self) -> float:
        """CMOS energy per image divided by AQFP energy per image."""
        return self.cmos.energy_uj_per_image / self.aqfp.energy_uj_per_image

    @property
    def throughput_ratio(self) -> float:
        """AQFP throughput divided by CMOS throughput."""
        return (
            self.aqfp.throughput_images_per_ms / self.cmos.throughput_images_per_ms
        )


def table8_configuration() -> list[dict[str, object]]:
    """Table 8: layer configuration of the two evaluated networks."""
    rows: list[dict[str, object]] = []
    for network, specs in (("SNN", snn_layer_specs()), ("DNN", dnn_layer_specs())):
        for spec in specs:
            rows.append(
                {
                    "network": network,
                    "layer": spec.name,
                    "kind": spec.kind,
                    "kernel": spec.kernel,
                    "channels": spec.channels,
                    "units": spec.units,
                    "stride": spec.stride,
                }
            )
    return rows


def network_hardware_rollup(
    inventories: list[LayerInventory],
    stream_length: int = 1024,
    weight_bits: int = 10,
    aqfp: AqfpTechnology | None = None,
    cmos: CmosTechnology | None = None,
) -> tuple[NetworkHardwareSummary, NetworkHardwareSummary]:
    """Aggregate per-layer block counts into whole-network hardware numbers.

    Returns:
        ``(aqfp_summary, cmos_summary)``.
    """
    aqfp = aqfp or AqfpTechnology()
    cmos = cmos or CmosTechnology()
    aqfp_energy_pj = 0.0
    cmos_energy_pj = 0.0
    aqfp_jj = 0
    cmos_gates = 0
    cmos_stream_delay_ns = stream_length * cmos.cycle_time_s * 1e9

    for inventory in inventories:
        if inventory.block_kind == "feature_extraction":
            aqfp_block = SorterFeatureExtractionBlock(inventory.block_inputs).hardware()
            cmos_cost = cmos_apc_feature_extraction_cost(
                inventory.block_inputs, cmos, stream_length
            )
        elif inventory.block_kind == "pooling":
            aqfp_block = SorterAveragePoolingBlock(inventory.block_inputs).hardware()
            cmos_cost = cmos_mux_pooling_cost(inventory.block_inputs, cmos, stream_length)
        elif inventory.block_kind == "categorization":
            aqfp_block = MajorityChainCategorizationBlock(
                inventory.block_inputs
            ).hardware()
            cmos_cost = cmos_categorization_cost(
                inventory.block_inputs, cmos, stream_length
            )
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown block kind {inventory.block_kind!r}")

        aqfp_cost = aqfp_block.cost(aqfp, stream_length)
        aqfp_energy_pj += aqfp_cost.energy_pj * inventory.block_count
        cmos_energy_pj += cmos_cost.energy_pj * inventory.block_count
        aqfp_jj += aqfp_block.jj_count * inventory.block_count
        cmos_gates += cmos_cost.jj_count * inventory.block_count
        cmos_stream_delay_ns = max(cmos_stream_delay_ns, cmos_cost.latency_ns)

        if inventory.sng_inputs > 0:
            sng = SngBlock(inventory.sng_inputs, weight_bits)
            aqfp_sng_cost = sng.hardware().cost(aqfp, stream_length)
            cmos_sng = cmos_sng_cost(inventory.sng_inputs, cmos, stream_length, weight_bits)
            aqfp_energy_pj += aqfp_sng_cost.energy_pj
            cmos_energy_pj += cmos_sng.energy_pj
            aqfp_jj += sng.hardware().jj_count
            cmos_gates += cmos_sng.jj_count

    aqfp_summary = NetworkHardwareSummary(
        platform="AQFP",
        energy_uj_per_image=aqfp_energy_pj / PJ_PER_UJ,
        throughput_images_per_ms=1.0 / (stream_length * aqfp.cycle_time_s * 1e3),
        total_jj_or_gates=aqfp_jj,
    )
    cmos_summary = NetworkHardwareSummary(
        platform="CMOS",
        energy_uj_per_image=cmos_energy_pj / PJ_PER_UJ,
        throughput_images_per_ms=1.0 / (cmos_stream_delay_ns * 1e-6),
        total_jj_or_gates=cmos_gates,
    )
    return aqfp_summary, cmos_summary


def evaluate_network(
    name: str,
    dataset: DigitDataset,
    stream_length: int = 1024,
    epochs: int = 5,
    seed: int = 2019,
    weight_bits: int = 10,
    backend: str = "sc-fast",
) -> NetworkReport:
    """Train one of the Table 8 networks and evaluate it on all platforms.

    Args:
        name: ``"SNN"`` or ``"DNN"``.
        dataset: digit dataset to train and evaluate on.
        stream_length: stochastic stream length ``N``.
        epochs: training epochs (the paper's accuracy needs a full training
            run; benchmarks use smaller budgets and record the gap).
        seed: training / stream seed.
        weight_bits: stored weight precision.
        backend: registered execution backend used for the SC accuracy
            column (see :func:`repro.backends.backend_names`); the paper's
            evaluation setting is the fast statistical model.
    """
    if name == "SNN":
        network = build_snn(seed=seed, training_stream_length=stream_length)
    elif name == "DNN":
        network = build_dnn(seed=seed, training_stream_length=stream_length)
    else:
        raise ConfigurationError(f"network must be 'SNN' or 'DNN', got {name!r}")

    x_train = dataset.train_images[:, None, :, :] * 2.0 - 1.0
    trainer = Trainer(network, TrainingConfig(epochs=epochs, seed=seed))
    trainer.fit(x_train, dataset.train_labels)

    # Evaluation goes through the Session facade (the same API the CLI
    # and the serving layer use); both accuracy columns select their
    # execution backend through the registry.
    session = Session.from_network(
        network,
        weight_bits=weight_bits,
        stream_length=stream_length,
        seed=seed,
        backend=backend,
    )
    test_images = dataset.test_images[:, None, :, :]
    software = session.evaluate(
        test_images, dataset.test_labels, backend="float"
    ).accuracy
    sc_accuracy = session.evaluate(test_images, dataset.test_labels).accuracy

    inventories = session.mapper.layer_inventories()
    aqfp_summary, cmos_summary = network_hardware_rollup(
        inventories, stream_length, weight_bits
    )
    return NetworkReport(
        network=name,
        software_accuracy=software,
        # The CMOS baseline runs the same stochastic computation, so its
        # accuracy is the SC accuracy as well (the paper reports slightly
        # different numbers because its CMOS baseline uses the APC blocks).
        cmos_accuracy=sc_accuracy,
        aqfp_accuracy=sc_accuracy,
        cmos=cmos_summary,
        aqfp=aqfp_summary,
    )


def table9_networks(
    networks: tuple[str, ...] = ("SNN", "DNN"),
    n_train: int = 2000,
    n_test: int = 500,
    epochs: int = 5,
    stream_length: int = 1024,
    seed: int = 2019,
    backend: str = "sc-fast",
) -> list[NetworkReport]:
    """Reproduce Table 9 for the requested networks."""
    dataset = generate_digit_dataset(n_train, n_test, seed=seed)
    return [
        evaluate_network(name, dataset, stream_length, epochs, seed, backend=backend)
        for name in networks
    ]
