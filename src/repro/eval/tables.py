"""Plain-text table rendering.

The benchmarks and examples print their reproduced tables in the same
row/column layout as the paper; this helper keeps the formatting in one
place (and keeps the benchmark files focused on the experiments).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of rows as an aligned plain-text table.

    Args:
        headers: column names.
        rows: row cell values (numbers or strings).
        title: optional title printed above the table.
        precision: decimal places used for floats.

    Returns:
        The formatted multi-line string.
    """
    rendered = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
