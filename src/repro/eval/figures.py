"""Figure-level reproductions (Fig. 7(b) and Fig. 13) as data series.

The repository has no plotting dependency, so each figure is reproduced as
the data series a plotting script (or the benchmark output) would consume.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.feature_extraction import estimate_transfer_curve
from repro.rng.aqfp_trng import AqfpTrueRng

__all__ = ["fig7_rng_distribution", "fig13_activation_curve"]


def fig7_rng_distribution(
    n_samples: int = 100_000, bias: float = 0.0, seed: int = 7
) -> dict[str, float]:
    """Fig. 7(b): output distribution of the AQFP buffer true RNG.

    Returns the fraction of zeros and ones over ``n_samples`` draws, which
    for an ideal device converges to 0.5 / 0.5 (the figure's two peaks).
    """
    trng = AqfpTrueRng(n_bits=2, seed=seed, bias=bias)
    bits = trng.bits(n_samples)
    ones = float(bits.mean())
    return {"zeros": 1.0 - ones, "ones": ones, "samples": float(n_samples)}


def fig13_activation_curve(
    n_inputs: int = 25,
    stream_length: int = 1024,
    z_min: float = -3.0,
    z_max: float = 3.0,
    n_points: int = 61,
    seed: int = 13,
) -> dict[str, np.ndarray]:
    """Fig. 13: activated output of the feature-extraction block.

    Returns the inner-product grid, the measured block output, and the ideal
    ``clip`` target of equation (1) for comparison.
    """
    grid = np.linspace(z_min, z_max, n_points)
    measured = estimate_transfer_curve(
        n_inputs, grid, stream_length, rng=np.random.default_rng(seed)
    )
    return {
        "inner_product": grid,
        "block_output": measured,
        "ideal_clip": np.clip(grid, -1.0, 1.0),
    }
