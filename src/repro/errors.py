"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError` so that callers can catch every library error with a
single ``except`` clause while still being able to distinguish categories.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "EncodingError",
    "ShapeError",
    "NetlistError",
    "SimulationError",
    "TrainingError",
    "DatasetError",
    "InferenceError",
    "ServiceOverloadError",
    "FleetError",
    "ModelNotFoundError",
    "RemoteWorkerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class EncodingError(ReproError):
    """A value could not be encoded into / decoded from a stochastic stream."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NetlistError(ReproError):
    """A gate-level netlist is malformed (cycles, dangling nets, bad fan-in)."""


class SimulationError(ReproError):
    """A hardware simulation could not be carried out."""


class TrainingError(ReproError):
    """Neural-network training failed or was configured inconsistently."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class InferenceError(ReproError):
    """A submitted request failed during execution.

    The serving layer's typed per-request failure: when a backend replica
    raises while evaluating a merged batch (and retries are exhausted),
    the affected requests' futures resolve with this error instead of the
    raw backend exception -- and *only* those requests fail; the worker
    thread and every other queued request keep running.  The original
    backend exception is chained as ``__cause__``.
    """


class ServiceOverloadError(ReproError):
    """A request was shed by admission control before it was queued.

    Raised in the submitting caller (never as a future error) when the
    service's pending queue is at ``max_queue_depth``, or when the
    request's ``deadline_ms`` is already unmeetable under the current
    throughput estimate.  The :attr:`reason` attribute carries the
    shedding category (``"queue_full"`` or ``"deadline"``) so callers can
    implement category-specific backoff.
    """

    def __init__(self, message: str, reason: str = "queue_full") -> None:
        super().__init__(message)
        self.reason = reason

    def __reduce__(self):
        # Default exception pickling replays ``args`` -- which holds only
        # the message -- so an unpickled copy would silently reset
        # ``reason`` to "queue_full".  The fleet RPC ships these across
        # process boundaries; category-specific backoff in the caller
        # needs the real reason to survive the trip.
        return (self.__class__, (self.args[0] if self.args else "", self.reason))


class FleetError(ReproError):
    """A router-side fleet serving failure (:mod:`repro.serve.fleet`).

    Raised (or set on a request future) by :class:`FleetRouter` when the
    failure happened in the *router*, not inside a worker's inference
    service: a worker process died with the request in flight and the
    retry budget is spent, no healthy worker exists, the router is
    draining, or the RPC stream itself is corrupt.  Worker-side failures
    keep their own types (:class:`InferenceError`,
    :class:`ServiceOverloadError`) across the RPC boundary.  The
    :attr:`reason` attribute carries the failure category
    (``"worker_lost"``, ``"no_workers"``, ``"draining"``, ``"deadline"``,
    ``"protocol"``) so callers can branch without string matching.
    """

    def __init__(self, message: str, reason: str = "worker_lost") -> None:
        super().__init__(message)
        self.reason = reason

    def __reduce__(self):
        return (self.__class__, (self.args[0] if self.args else "", self.reason))


class ModelNotFoundError(ReproError):
    """A request named a model the registry does not serve.

    Raised by :class:`repro.serve.registry.ModelRegistry` lookups (and
    therefore surfaced as HTTP 404 by :mod:`repro.serve.http`) when the
    requested model name is not in the catalog -- distinct from
    :class:`ConfigurationError` so the wire layer can map "you asked for
    something that does not exist" separately from "your request is
    malformed".  The :attr:`model` attribute carries the requested name.
    """

    def __init__(self, message: str, model: str = "") -> None:
        super().__init__(message)
        self.model = model

    def __reduce__(self):
        return (self.__class__, (self.args[0] if self.args else "", self.model))


class RemoteWorkerError(ReproError):
    """Stand-in for an exception that originally rose in a worker process.

    Exceptions cross the fleet RPC as structured payloads (type name,
    message, cause chain), not pickled objects -- a worker crash must
    never force the router to unpickle arbitrary classes.  The decoded
    error's ``__cause__`` chain is rebuilt from these stand-ins so
    ``raise ... from`` context survives the process boundary; the
    original type's qualified name is kept in :attr:`remote_type`.
    """

    def __init__(self, message: str, remote_type: str = "Exception") -> None:
        super().__init__(message)
        self.remote_type = remote_type

    def __str__(self) -> str:
        base = self.args[0] if self.args else ""
        return f"[{self.remote_type}] {base}"

    def __reduce__(self):
        return (
            self.__class__,
            (self.args[0] if self.args else "", self.remote_type),
        )
