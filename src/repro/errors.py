"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError` so that callers can catch every library error with a
single ``except`` clause while still being able to distinguish categories.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "EncodingError",
    "ShapeError",
    "NetlistError",
    "SimulationError",
    "TrainingError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class EncodingError(ReproError):
    """A value could not be encoded into / decoded from a stochastic stream."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NetlistError(ReproError):
    """A gate-level netlist is malformed (cycles, dangling nets, bad fan-in)."""


class SimulationError(ReproError):
    """A hardware simulation could not be carried out."""


class TrainingError(ReproError):
    """Neural-network training failed or was configured inconsistently."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""
