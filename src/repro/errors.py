"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError` so that callers can catch every library error with a
single ``except`` clause while still being able to distinguish categories.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "EncodingError",
    "ShapeError",
    "NetlistError",
    "SimulationError",
    "TrainingError",
    "DatasetError",
    "InferenceError",
    "ServiceOverloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class EncodingError(ReproError):
    """A value could not be encoded into / decoded from a stochastic stream."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NetlistError(ReproError):
    """A gate-level netlist is malformed (cycles, dangling nets, bad fan-in)."""


class SimulationError(ReproError):
    """A hardware simulation could not be carried out."""


class TrainingError(ReproError):
    """Neural-network training failed or was configured inconsistently."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class InferenceError(ReproError):
    """A submitted request failed during execution.

    The serving layer's typed per-request failure: when a backend replica
    raises while evaluating a merged batch (and retries are exhausted),
    the affected requests' futures resolve with this error instead of the
    raw backend exception -- and *only* those requests fail; the worker
    thread and every other queued request keep running.  The original
    backend exception is chained as ``__cause__``.
    """


class ServiceOverloadError(ReproError):
    """A request was shed by admission control before it was queued.

    Raised in the submitting caller (never as a future error) when the
    service's pending queue is at ``max_queue_depth``, or when the
    request's ``deadline_ms`` is already unmeetable under the current
    throughput estimate.  The :attr:`reason` attribute carries the
    shedding category (``"queue_full"`` or ``"deadline"``) so callers can
    implement category-specific backoff.
    """

    def __init__(self, message: str, reason: str = "queue_full") -> None:
        super().__init__(message)
        self.reason = reason
