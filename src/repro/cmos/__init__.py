"""CMOS baseline cost models.

The paper compares every AQFP block against a 40 nm CMOS implementation of
the prior-work SC-DNN blocks (SC-DCNN style).  We cannot run the proprietary
synthesis flow, so this subpackage provides calibrated gate-level cost
models: a per-gate energy/delay table for a generic 40 nm process and block
models that count the gates of the published baseline architectures (LFSR
SNGs, XNOR arrays, approximate parallel counters, accumulators, Btanh
counters, MUX pooling).  The AQFP-vs-CMOS ratios of Tables 4-7 and Table 9
are reproduced from these models.
"""

from repro.cmos.library import CmosGate, CmosTechnology, GATE_LIBRARY
from repro.cmos.sc_blocks import (
    cmos_apc_feature_extraction_cost,
    cmos_categorization_cost,
    cmos_mux_pooling_cost,
    cmos_sng_cost,
)

__all__ = [
    "CmosTechnology",
    "CmosGate",
    "GATE_LIBRARY",
    "cmos_sng_cost",
    "cmos_apc_feature_extraction_cost",
    "cmos_mux_pooling_cost",
    "cmos_categorization_cost",
]
