"""Generic 40 nm CMOS gate cost table.

Energies are dynamic switching energies per gate per clock cycle (including
local wiring and an activity factor folded in), calibrated so that the block
models in :mod:`repro.cmos.sc_blocks` land at the same order of magnitude as
the synthesis results the paper reports for its 40 nm SMIC flow.  The CMOS
baseline is assumed to run at 1 GHz, which matches the per-stream delays in
the paper's tables (a 1024-bit stream takes ~1024 ns through a block plus a
small pipeline fill).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CmosGate", "CmosTechnology", "GATE_LIBRARY"]

#: Joules-to-picojoules conversion.
J_TO_PJ = 1.0e12
#: Seconds-to-nanoseconds conversion.
S_TO_NS = 1.0e9


@dataclass(frozen=True)
class CmosGate:
    """Per-cycle energy cost of one CMOS standard cell (gate equivalent)."""

    name: str
    energy_j: float
    gate_equivalents: float


#: Energy per gate per active cycle for a generic 40 nm node.
#: Roughly 1 fJ per NAND2-equivalent switching event at nominal voltage.
GATE_LIBRARY: dict[str, CmosGate] = {
    "inv": CmosGate("inv", 0.5e-15, 0.5),
    "nand2": CmosGate("nand2", 1.0e-15, 1.0),
    "xnor2": CmosGate("xnor2", 2.2e-15, 2.0),
    "mux2": CmosGate("mux2", 2.0e-15, 2.0),
    "dff": CmosGate("dff", 4.5e-15, 4.0),
    "full_adder": CmosGate("full_adder", 6.5e-15, 6.0),
    "comparator_bit": CmosGate("comparator_bit", 5.0e-15, 4.5),
    "counter_bit": CmosGate("counter_bit", 7.0e-15, 6.0),
}


@dataclass(frozen=True)
class CmosTechnology:
    """CMOS technology corner for the baseline models.

    Attributes:
        clock_hz: clock frequency of the SC pipeline.
        leakage_fraction: extra energy added as a fraction of dynamic energy
            to account for leakage over the operation.
    """

    clock_hz: float = 1.0e9
    leakage_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        if self.leakage_fraction < 0:
            raise ConfigurationError("leakage_fraction must be non-negative")

    @property
    def cycle_time_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz

    def gate_energy_j(self, gate: str, count: float = 1.0) -> float:
        """Energy of ``count`` instances of ``gate`` switching for one cycle."""
        try:
            spec = GATE_LIBRARY[gate]
        except KeyError as exc:
            raise ConfigurationError(f"unknown CMOS gate {gate!r}") from exc
        return spec.energy_j * count * (1.0 + self.leakage_fraction)

    def block_energy_j(self, gate_counts: dict[str, float], n_cycles: int) -> float:
        """Energy of a block described by per-gate counts over ``n_cycles``."""
        if n_cycles < 0:
            raise ConfigurationError("n_cycles must be non-negative")
        per_cycle = sum(self.gate_energy_j(g, c) for g, c in gate_counts.items())
        return per_cycle * n_cycles

    def latency_s(self, n_cycles: int) -> float:
        """Latency of ``n_cycles`` clock cycles."""
        if n_cycles < 0:
            raise ConfigurationError("n_cycles must be non-negative")
        return n_cycles * self.cycle_time_s
