"""Gate-level cost models of the CMOS (prior-work) SC-DNN blocks.

These reproduce the "CMOS" columns of the paper's Tables 4-7: the baseline
blocks are the SC-DCNN designs (Ren et al., ASPLOS 2017) that the paper
argues cannot be ported to AQFP -- LFSR-based SNGs, XNOR arrays feeding an
approximate parallel counter with an accumulator and a Btanh counter for the
activation, a MUX tree for average pooling, and an adder-tree categorizer.

Each model counts standard cells, multiplies by the per-cycle energy of the
40 nm library and by the stream length, and reports the result in the same
:class:`~repro.aqfp.energy.HardwareCost` container used for AQFP blocks so
that ratio calculations are symmetrical.  Following the paper's reporting
convention, the CMOS "delay" is the time to push an entire stream through
the block (stream length x achievable clock period), whereas AQFP delay is
the pipeline fill latency.
"""

from __future__ import annotations

import math

from repro.aqfp.energy import J_TO_PJ, S_TO_NS, HardwareCost
from repro.cmos.library import CmosTechnology
from repro.errors import ConfigurationError

__all__ = [
    "cmos_sng_cost",
    "cmos_apc_feature_extraction_cost",
    "cmos_mux_pooling_cost",
    "cmos_categorization_cost",
]


def _validate_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def _cost(
    gate_counts: dict[str, float],
    technology: CmosTechnology,
    stream_length: int,
    cycle_time_s: float,
    pipeline_cycles: int,
) -> HardwareCost:
    energy_j = sum(
        technology.gate_energy_j(gate, count) for gate, count in gate_counts.items()
    ) * stream_length
    stream_delay_s = (stream_length + pipeline_cycles) * cycle_time_s
    gate_equivalents = int(round(sum(gate_counts.values())))
    return HardwareCost(
        jj_count=gate_equivalents,
        energy_pj=energy_j * J_TO_PJ,
        latency_ns=stream_delay_s * S_TO_NS,
        throughput_ops_per_s=1.0 / stream_delay_s,
        depth_phases=pipeline_cycles,
    )


def cmos_sng_cost(
    n_outputs: int,
    technology: CmosTechnology | None = None,
    stream_length: int = 1024,
    n_bits: int = 10,
) -> HardwareCost:
    """Cost of ``n_outputs`` LFSR-based SNGs (Table 4 baseline).

    Each SNG is an ``n_bits`` LFSR (flip-flops plus feedback XORs) and an
    ``n_bits`` magnitude comparator, running every cycle of the stream.
    """
    _validate_positive("n_outputs", n_outputs)
    _validate_positive("stream_length", stream_length)
    _validate_positive("n_bits", n_bits)
    technology = technology or CmosTechnology()
    gate_counts = {
        "dff": float(n_outputs * n_bits),
        "xnor2": float(n_outputs * 3),
        "comparator_bit": float(n_outputs * n_bits),
    }
    return _cost(gate_counts, technology, stream_length, technology.cycle_time_s, 1)


def cmos_apc_feature_extraction_cost(
    n_inputs: int,
    technology: CmosTechnology | None = None,
    stream_length: int = 1024,
) -> HardwareCost:
    """Cost of the prior-work XNOR + APC + accumulator + Btanh block (Table 5).

    Gate inventory per input: one XNOR multiplier and roughly one full adder
    of APC tree; plus an accumulator register sized for ``M x N`` counts and
    a Btanh up/down counter for the activation.  The achievable clock period
    grows with the APC tree depth, which is why the paper's per-stream delay
    grows with the input count.
    """
    _validate_positive("n_inputs", n_inputs)
    _validate_positive("stream_length", stream_length)
    technology = technology or CmosTechnology()
    accumulator_bits = math.ceil(math.log2(n_inputs * stream_length + 1))
    btanh_bits = math.ceil(math.log2(2 * n_inputs + 1))
    gate_counts = {
        "xnor2": float(n_inputs),
        "full_adder": float(max(n_inputs - 1, 1)),
        "counter_bit": float(accumulator_bits + btanh_bits),
        "dff": float(math.ceil(math.log2(n_inputs + 1))),
    }
    apc_depth = math.ceil(math.log2(n_inputs + 1))
    cycle_time_s = max(
        technology.cycle_time_s, (0.45 + 0.18 * apc_depth) * 1e-9
    )
    return _cost(gate_counts, technology, stream_length, cycle_time_s, apc_depth + 2)


def cmos_mux_pooling_cost(
    n_inputs: int,
    technology: CmosTechnology | None = None,
    stream_length: int = 1024,
) -> HardwareCost:
    """Cost of the prior-work MUX-tree average pooling block (Table 6)."""
    _validate_positive("n_inputs", n_inputs)
    _validate_positive("stream_length", stream_length)
    technology = technology or CmosTechnology()
    select_bits = math.ceil(math.log2(n_inputs)) if n_inputs > 1 else 1
    gate_counts = {
        "mux2": float(max(n_inputs - 1, 1)),
        "counter_bit": float(select_bits),
    }
    depth = select_bits
    cycle_time_s = max(technology.cycle_time_s, (0.55 + 0.05 * depth) * 1e-9)
    return _cost(gate_counts, technology, stream_length, cycle_time_s, depth + 1)


def cmos_categorization_cost(
    n_inputs: int,
    technology: CmosTechnology | None = None,
    stream_length: int = 1024,
) -> HardwareCost:
    """Cost of the prior-work FC categorization block (Table 7 baseline).

    The CMOS categorizer needs the full-precision inner product: an XNOR
    array, a complete binary adder tree (about two full-adder equivalents
    per input once widths grow along the tree), and a wide accumulator.
    """
    _validate_positive("n_inputs", n_inputs)
    _validate_positive("stream_length", stream_length)
    technology = technology or CmosTechnology()
    accumulator_bits = math.ceil(math.log2(n_inputs * stream_length + 1))
    gate_counts = {
        "xnor2": float(n_inputs),
        "full_adder": float(3 * n_inputs),
        "counter_bit": float(accumulator_bits + 8),
        "dff": float(n_inputs // 2),
    }
    tree_depth = math.ceil(math.log2(n_inputs + 1))
    cycle_time_s = max(technology.cycle_time_s, (0.5 + 0.2 * tree_depth) * 1e-9)
    return _cost(gate_counts, technology, stream_length, cycle_time_s, tree_depth + 2)
