"""Stochastic-computing deep learning on AQFP superconducting technology.

This package reproduces the system described in "A Stochastic-Computing
based Deep Learning Framework using Adiabatic Quantum-Flux-Parametron
Superconducting Technology" (Cai et al., ISCA 2019).  It contains:

* ``repro.rng`` -- random-bit sources (AQFP true RNG, CMOS LFSR, RNG matrix).
* ``repro.sc`` -- the stochastic-computing substrate (bit streams, SNGs,
  arithmetic, APC, FSM activation, correlation analysis).
* ``repro.sorting`` -- binary bitonic sorting networks.
* ``repro.aqfp`` -- the AQFP technology model (cell library, netlists,
  majority synthesis, buffer/splitter insertion, clocking, energy).
* ``repro.cmos`` -- the 40 nm CMOS baseline cost models.
* ``repro.blocks`` -- the paper's proposed blocks (SNG, sorter-based
  feature extraction, sorter-based pooling, majority-chain categorization)
  plus the prior-work APC baseline.
* ``repro.nn`` -- float reference layers, training, quantization, and the
  SC-domain inference engine for the SNN/DNN architectures of Table 8.
* ``repro.backends`` -- pluggable execution backends (float, fast
  statistical, and the bit-exact legacy / batched / word-packed data
  planes) behind a string-keyed registry.
* ``repro.serve`` -- the serving layer: micro-batching inference service
  with progressive-precision early exit, per-request options, result
  caching and metrics.
* ``repro.api`` -- the public API: versioned model artifacts
  (``ScModel``), the unified ``Session`` facade
  (``from_artifact(...).predict() / .evaluate() / .serve()``) and typed
  per-request ``PredictOptions``.
* ``repro.cli`` -- the ``python -m repro`` command line
  (``train`` / ``predict`` / ``evaluate`` / ``serve`` / ``backends``).
* ``repro.datasets`` -- the synthetic MNIST-like digit dataset.
* ``repro.eval`` -- reproduction harness for every table and figure in the
  paper's evaluation.
* ``repro.obs`` -- observability: sampled request tracing, kernel-tier
  counters, Prometheus text exposition and a JSONL structured event log.

The package logs under the stdlib ``repro`` logger hierarchy (replica
restarts, circuit-breaker trips, overload sheds, native-tier compile
fallbacks).  Library convention: a ``NullHandler`` is installed so
nothing prints unless the application configures logging.
"""

import logging

from repro.config import ExperimentConfig, default_config
from repro.errors import (
    ConfigurationError,
    EncodingError,
    NetlistError,
    ReproError,
    ShapeError,
)

__version__ = "1.0.0"

logging.getLogger("repro").addHandler(logging.NullHandler())

__all__ = [
    "ExperimentConfig",
    "default_config",
    "ReproError",
    "ConfigurationError",
    "EncodingError",
    "NetlistError",
    "ShapeError",
    "__version__",
]
