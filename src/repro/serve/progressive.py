"""Progressive-precision early exit over stream-length checkpoints.

Stochastic computing has a property conventional binary arithmetic lacks:
**precision grows monotonically with stream length**.  A request does not
need to wait for all ``N`` cycles -- once the categorization scores have
stabilised, the remaining cycles only narrow an already-decided vote.
This module turns that into a serving policy:

1. a progressive backend evaluates class scores at increasing
   stream-length checkpoints (``N/8, N/4, N/2, N`` by default) via
   :meth:`~repro.backends.base.Backend.forward_partial` -- for the packed
   bit-exact backend a checkpoint is literally a prefix popcount over the
   packed output words, for the fast statistical backend it is the
   statistical model at the checkpoint's stream length;
2. a request **exits early** at the first checkpoint where the predicted
   class has been stable for ``stable_checkpoints`` consecutive
   checkpoints *and* the top-1/top-2 score gap clears a confidence
   ``margin``; requests that never stabilise fall through to the final
   full-length checkpoint, whose scores equal the ordinary full-stream
   forward pass exactly.

The exit checkpoint is the number of stream cycles the hardware would
actually have spent, so ``stream_length / mean(exit_checkpoints)`` is the
mean stream-cycle (and hence energy/latency) reduction -- the quantity
``benchmarks/bench_serve.py`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import Backend
from repro.config import DEFAULT_CHECKPOINT_FRACTIONS, resolve_checkpoints
from repro.errors import ConfigurationError, ShapeError

__all__ = [
    "ProgressiveResult",
    "resolve_checkpoints",
    "cap_checkpoints",
    "early_exit_from_scores",
    "progressive_forward",
]


def cap_checkpoints(
    checkpoints: tuple[int, ...], cap: int
) -> tuple[int, ...]:
    """Truncate a checkpoint schedule to the points at or below ``cap``.

    The degradation lever behind overload control: because checkpoint
    scores are exact stream prefixes, a schedule cut short still yields
    *correct* (reduced-precision) answers — the service answers at
    ``N/8..cap`` instead of shedding.  When every point exceeds ``cap``
    the first point alone survives: an early answer is the whole point
    of degrading, so the schedule never becomes empty.
    """
    capped = tuple(p for p in checkpoints if p <= cap)
    return capped if capped else checkpoints[:1]


@dataclass(frozen=True)
class ProgressiveResult:
    """Outcome of one progressive early-exit evaluation.

    Attributes:
        scores: ``(batch, n_classes)`` scores at each image's exit
            checkpoint.
        predictions: ``(batch,)`` predicted classes (argmax of ``scores``).
        exit_checkpoints: ``(batch,)`` stream cycles each image actually
            consumed.
        checkpoints: the checkpoint schedule that was evaluated.
        checkpoint_scores: ``(n_checkpoints, batch, n_classes)`` scores at
            every checkpoint (``checkpoint_scores[-1]`` are the
            full-stream scores).
    """

    scores: np.ndarray
    predictions: np.ndarray
    exit_checkpoints: np.ndarray
    checkpoints: tuple[int, ...]
    checkpoint_scores: np.ndarray

    @property
    def stream_length(self) -> int:
        """Full stream length ``N`` (the final checkpoint)."""
        return self.checkpoints[-1]

    @property
    def mean_exit_checkpoint(self) -> float:
        """Mean stream cycles consumed per image."""
        return float(self.exit_checkpoints.mean())

    @property
    def cycle_reduction(self) -> float:
        """Mean stream-cycle reduction ``N / mean(exit_checkpoints)``."""
        return self.stream_length / self.mean_exit_checkpoint


def early_exit_from_scores(
    checkpoint_scores: np.ndarray,
    checkpoints,
    margin: float = 0.1,
    stable_checkpoints: int = 2,
) -> ProgressiveResult:
    """Apply the stability + margin early-exit policy to checkpoint scores.

    An image exits at the first checkpoint ``k`` where

    * the predicted class at checkpoints ``k - stable_checkpoints + 1 ..
      k`` is identical, and
    * the top-1/top-2 score gap at checkpoint ``k`` is at least
      ``margin``;

    images that never satisfy both conditions exit at the final
    checkpoint (the full stream).  The policy is deliberately
    conservative: a lone early checkpoint with a large margin does not
    exit until a later checkpoint *confirms* the same class, which is
    what keeps early-exit predictions glued to the full-stream ones.

    Args:
        checkpoint_scores: ``(n_checkpoints, batch, n_classes)`` scores.
        checkpoints: the evaluated checkpoint cycle counts.
        margin: minimum top-1/top-2 gap for an exit.
        stable_checkpoints: consecutive agreeing checkpoints required.

    Returns:
        The per-image exit decisions and scores.
    """
    scores = np.asarray(checkpoint_scores, dtype=np.float64)
    if scores.ndim != 3:
        raise ShapeError(
            f"checkpoint_scores must have shape (n_checkpoints, batch, "
            f"n_classes), got {scores.shape}"
        )
    points = tuple(int(p) for p in checkpoints)
    n_checkpoints, batch, n_classes = scores.shape
    if len(points) != n_checkpoints:
        raise ShapeError(
            f"{len(points)} checkpoints for {n_checkpoints} score planes"
        )
    if margin < 0:
        raise ConfigurationError(f"margin must be >= 0, got {margin}")
    if stable_checkpoints < 1:
        raise ConfigurationError(
            f"stable_checkpoints must be >= 1, got {stable_checkpoints}"
        )
    predictions = np.argmax(scores, axis=-1)  # (K, B)
    if n_classes >= 2:
        top2 = np.sort(scores, axis=-1)[..., -2:]
        margins = top2[..., 1] - top2[..., 0]  # (K, B)
    else:
        margins = np.full((n_checkpoints, batch), np.inf)
    exit_index = np.full(batch, n_checkpoints - 1)
    undecided = np.ones(batch, dtype=bool)
    # The final checkpoint needs no policy check -- it is the fallback.
    for k in range(stable_checkpoints - 1, n_checkpoints - 1):
        stable = np.ones(batch, dtype=bool)
        for j in range(k - stable_checkpoints + 1, k):
            stable &= predictions[j] == predictions[k]
        exits = undecided & stable & (margins[k] >= margin)
        exit_index[exits] = k
        undecided &= ~exits
    rows = np.arange(batch)
    return ProgressiveResult(
        scores=scores[exit_index, rows],
        predictions=predictions[exit_index, rows],
        exit_checkpoints=np.asarray(points)[exit_index],
        checkpoints=points,
        checkpoint_scores=scores,
    )


def progressive_forward(
    backend: Backend,
    images: np.ndarray,
    checkpoints=None,
    margin: float = 0.1,
    stable_checkpoints: int = 2,
) -> ProgressiveResult:
    """Evaluate a batch with progressive early exit (when supported).

    Progressive backends are scored at every checkpoint with one
    :meth:`~repro.backends.base.Backend.forward_partial` call and the
    stability + margin policy picks each image's exit.  Non-progressive
    backends degrade gracefully: one full forward pass, every image
    "exits" at the full stream length.

    Args:
        backend: the execution backend.
        images: ``(batch, channels, height, width)`` images in ``[0, 1]``.
        checkpoints: explicit checkpoint schedule; ``None`` derives the
            default ``N/8, N/4, N/2, N`` schedule from the backend's
            stream length.
        margin: minimum top-1/top-2 gap for an exit.
        stable_checkpoints: consecutive agreeing checkpoints required.
    """
    if not backend.progressive:
        scores = np.asarray(backend.forward(images))
        n = backend.stream_length
        return ProgressiveResult(
            scores=scores,
            predictions=np.argmax(scores, axis=-1),
            exit_checkpoints=np.full(scores.shape[0], n),
            checkpoints=(n,),
            checkpoint_scores=scores[None],
        )
    if checkpoints is None:
        checkpoints = resolve_checkpoints(backend.stream_length)
    checkpoint_scores = backend.forward_partial(images, checkpoints)
    return early_exit_from_scores(
        checkpoint_scores, checkpoints, margin, stable_checkpoints
    )
