"""Length-prefixed frame RPC between the fleet router and its workers.

The wire format is deliberately boring: every message is one *frame* --
a 4-byte big-endian unsigned length followed by a pickled ``dict``
payload -- written atomically under a per-stream lock and read with
exact-length reads.  Frames flow full duplex over a worker process's
stdin/stdout pipes; a ``"kind"`` field discriminates requests, responses,
heartbeats and control messages, and an integer ``"id"`` correlates
responses with requests so many requests can be in flight per worker.

Two invariants the fleet layer leans on:

* **Errors are structured, not pickled.**  A failure crossing the
  boundary is encoded with :func:`encode_error` into plain data (type
  name, message, ``reason``, the ``__cause__`` chain as reprs) and
  rebuilt with :func:`decode_error` into the matching *typed* exception
  (:class:`~repro.errors.InferenceError`,
  :class:`~repro.errors.ServiceOverloadError`,
  :class:`~repro.errors.FleetError`) with the cause chain restored as
  :class:`~repro.errors.RemoteWorkerError` stand-ins -- so a worker can
  never make the router unpickle an arbitrary class, and ``reason`` /
  cause-chain fields survive the trip.
* **Truncation is loud.**  A frame cut short by a dying peer raises
  :class:`RpcConnectionError` (EOF mid-frame is a *crash signal*, not a
  clean close); only EOF on a frame boundary reads as ``None``.
"""

from __future__ import annotations

import pickle
import struct
import threading
from typing import BinaryIO

from repro.errors import (
    ConfigurationError,
    EncodingError,
    FleetError,
    InferenceError,
    RemoteWorkerError,
    ServiceOverloadError,
    ShapeError,
)

__all__ = [
    "FrameStream",
    "RpcConnectionError",
    "encode_error",
    "decode_error",
    "MAX_FRAME_BYTES",
]

_HEADER = struct.Struct("!I")

#: Upper bound on one frame's payload (64 MiB).  A length beyond this is
#: stream corruption (e.g. reading from an offset), not a real message.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class RpcConnectionError(ConnectionError):
    """The peer vanished or the stream is corrupt mid-frame."""


class FrameStream:
    """One side of a duplex length-prefixed pickle-frame connection.

    Args:
        reader: binary stream frames are read from (may be ``None`` for a
            write-only stream).
        writer: binary stream frames are written to (may be ``None`` for
            a read-only stream).

    Writes are serialised under an internal lock so response frames from
    worker callback threads and heartbeat replies from the reader thread
    never interleave bytes.  Reads are *not* locked -- exactly one reader
    thread owns each stream by construction.
    """

    def __init__(
        self, reader: BinaryIO | None, writer: BinaryIO | None
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._write_lock = threading.Lock()

    def send(self, payload: dict) -> None:
        """Write one frame (atomic with respect to other senders)."""
        if self._writer is None:
            raise RpcConnectionError("stream is not writable")
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if len(data) > MAX_FRAME_BYTES:
            raise FleetError(
                f"frame of {len(data)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte RPC limit",
                reason="protocol",
            )
        frame = _HEADER.pack(len(data)) + data
        try:
            with self._write_lock:
                self._writer.write(frame)
                self._writer.flush()
        except (BrokenPipeError, OSError, ValueError) as exc:
            # ValueError: write to a closed file object.
            raise RpcConnectionError(f"peer went away mid-send: {exc}") from exc

    def recv(self) -> dict | None:
        """Read one frame; ``None`` on clean EOF (frame boundary)."""
        if self._reader is None:
            raise RpcConnectionError("stream is not readable")
        header = self._read_exact(_HEADER.size, at_boundary=True)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise RpcConnectionError(
                f"frame header announces {length} bytes "
                f"(limit {MAX_FRAME_BYTES}): stream corrupt"
            )
        body = self._read_exact(length, at_boundary=False)
        try:
            payload = pickle.loads(body)
        except Exception as exc:
            raise RpcConnectionError(f"undecodable frame: {exc!r}") from exc
        if not isinstance(payload, dict):
            raise RpcConnectionError(
                f"frame payload must be a dict, got {type(payload).__name__}"
            )
        return payload

    def _read_exact(self, n: int, at_boundary: bool) -> bytes | None:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._reader.read(remaining)
            except (OSError, ValueError) as exc:
                raise RpcConnectionError(
                    f"peer went away mid-recv: {exc}"
                ) from exc
            if not chunk:
                if at_boundary and remaining == n:
                    return None  # clean EOF between frames
                raise RpcConnectionError(
                    f"stream truncated {n - remaining}/{n} bytes into a frame"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        for stream in (self._reader, self._writer):
            if stream is not None:
                try:
                    stream.close()
                except OSError:  # pragma: no cover - best effort
                    pass


#: Error types allowed to cross the boundary *as themselves*; anything
#: else decodes to the fallback type the context dictates.
_TYPED_ERRORS = {
    "InferenceError": InferenceError,
    "ServiceOverloadError": ServiceOverloadError,
    "FleetError": FleetError,
    # Fail-fast submit validation errors keep their types too, so the
    # fleet's error surface matches the in-process service's.
    "ConfigurationError": ConfigurationError,
    "ShapeError": ShapeError,
    "EncodingError": EncodingError,
}


def encode_error(exc: BaseException, limit: int = 8) -> dict:
    """Flatten an exception (and its cause chain) into plain data.

    Args:
        exc: the exception to encode.
        limit: maximum cause-chain depth captured (cycles cannot recurse).

    Returns:
        ``{"type", "message", "reason", "chain"}`` where ``chain`` lists
        ``{"type", "message"}`` for each ``__cause__``/``__context__``
        link, outermost first.
    """
    chain: list[dict] = []
    seen: set[int] = {id(exc)}
    cursor = exc.__cause__ or exc.__context__
    while cursor is not None and len(chain) < limit and id(cursor) not in seen:
        seen.add(id(cursor))
        chain.append(
            {"type": type(cursor).__name__, "message": str(cursor)}
        )
        cursor = cursor.__cause__ or cursor.__context__
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "reason": getattr(exc, "reason", None),
        "chain": chain,
    }


def decode_error(
    payload: dict, fallback: type = InferenceError
) -> BaseException:
    """Rebuild a typed exception from :func:`encode_error` data.

    Known typed errors come back as their own class with ``reason``
    preserved; unknown worker-side types come back as ``fallback`` (the
    request-scoped :class:`~repro.errors.InferenceError` by default) so
    the caller's failure-policy branches stay type-driven.  The original
    cause chain is re-attached as
    :class:`~repro.errors.RemoteWorkerError` links.
    """
    type_name = payload.get("type", "Exception")
    message = payload.get("message", "")
    reason = payload.get("reason")
    cls = _TYPED_ERRORS.get(type_name)
    if cls is not None:
        error = cls(message, reason) if reason is not None else cls(message)
    else:
        error = fallback(f"worker-side {type_name}: {message}")
    cause: BaseException | None = None
    for link in reversed(payload.get("chain") or ()):
        nested = RemoteWorkerError(
            link.get("message", ""), remote_type=link.get("type", "Exception")
        )
        nested.__cause__ = cause
        cause = nested
    if cause is not None:
        error.__cause__ = cause
    return error
