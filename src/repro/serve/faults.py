"""Deterministic, seedable fault injection for the serving layer.

Chaos testing the service should be an ordinary pytest test, not a shell
script that kills processes and hopes: a :class:`FaultPlan` is a bundle
of fault injectors wired into :class:`~repro.serve.ScInferenceService`
via :attr:`repro.config.ServiceConfig.fault_plan`.  Before every
execution attempt of a merged-batch bucket, the worker thread calls
:meth:`FaultPlan.before_batch`; the plan decides -- deterministically,
from explicit batch indices or from a seeded RNG -- whether a fault
fires for that attempt:

* :class:`ReplicaCrash` raises :class:`InjectedCrashError`, which the
  service treats like any unexpected replica exception: restart the
  replica (exponential backoff, bounded by the restart budget) and retry
  the batch.
* :class:`SlowReplica` sleeps inside the worker, modelling a straggling
  replica; requests behind it observe queueing delay (and, with bounded
  admission configured, later submits are shed).
* :class:`PoisonedBatch` raises :class:`~repro.errors.InferenceError`
  directly -- a *request-scoped* failure the service must route to the
  affected futures without restarting the replica or killing the worker
  thread.
* :class:`PoolBreak` sabotages a process-sharded replica for real: it
  kills the worker processes of a
  :class:`~repro.backends.parallel.ParallelBackend` pool
  (:meth:`~repro.backends.parallel.ParallelBackend.break_pool`), so the
  next sharded call raises ``BrokenProcessPool`` and the backend's
  circuit breaker engages.  Non-parallel replicas ignore the fault.

Batch indices tick per *execution attempt* (a retried bucket advances
the counter), so a ``ReplicaCrash(at_batch=k, times=1)`` fires exactly
once and the retry after the replica restart succeeds -- the canonical
transient-fault scenario.  Faults with ``worker`` set match that worker
thread's private attempt counter (deterministic regardless of thread
interleaving); faults with ``worker=None`` match the plan-wide counter.
:attr:`FaultPlan.fired` records what actually fired, so chaos tests can
assert service metrics against the injected plan.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InferenceError

__all__ = [
    "FaultPlan",
    "ReplicaCrash",
    "SlowReplica",
    "PoisonedBatch",
    "PoolBreak",
    "WorkerKill",
    "WorkerHang",
    "SlowWorker",
    "InjectedCrashError",
]


class InjectedCrashError(RuntimeError):
    """The exception an injected replica crash raises.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a crashing
    replica surfaces as an arbitrary exception, which is exactly what the
    service's supervision path (restart + retry) must handle.
    """


@dataclass
class _Fault:
    """Shared matching state of one injector.

    Attributes:
        at_batch: fire when the matched attempt counter equals this value
            (``None`` = never match by index).
        worker: restrict to one service worker thread (``None`` matches
            any worker, against the plan-wide counter).
        rate: probability of firing per attempt (evaluated against the
            plan's seeded RNG when ``at_batch`` does not match).
        times: maximum number of firings (``None`` = unlimited).
    """

    at_batch: int | None = None
    worker: int | None = None
    rate: float = 0.0
    times: int | None = 1
    _fired: int = field(default=0, repr=False)

    #: Key under which firings are counted in :attr:`FaultPlan.fired`.
    kind = "fault"

    def __post_init__(self) -> None:
        if self.at_batch is not None and self.at_batch < 0:
            raise ConfigurationError(
                f"at_batch must be >= 0, got {self.at_batch}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"rate must lie in [0, 1], got {self.rate}"
            )
        if self.times is not None and self.times < 1:
            raise ConfigurationError(f"times must be >= 1, got {self.times}")
        if self.at_batch is None and self.rate == 0.0:
            raise ConfigurationError(
                f"{type(self).__name__} needs at_batch or a nonzero rate"
            )

    def _matches(self, worker: int, worker_seq: int, global_seq: int, rng) -> bool:
        if self.times is not None and self._fired >= self.times:
            return False
        if self.worker is not None and self.worker != worker:
            return False
        seq = worker_seq if self.worker is not None else global_seq
        if self.at_batch is not None:
            return seq == self.at_batch
        return rng.random() < self.rate

    def apply(self, replica) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class ReplicaCrash(_Fault):
    """The replica raises an unexpected exception mid-batch."""

    kind = "replica_crash"

    def apply(self, replica) -> None:
        raise InjectedCrashError("injected replica crash")


@dataclass
class SlowReplica(_Fault):
    """The replica stalls for ``delay_s`` before executing the batch."""

    delay_s: float = 0.25
    kind = "slow_replica"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )

    def apply(self, replica) -> None:
        time.sleep(self.delay_s)


@dataclass
class PoisonedBatch(_Fault):
    """The batch fails with a request-scoped typed error (no restart)."""

    kind = "poisoned_batch"

    def apply(self, replica) -> None:
        raise InferenceError("injected poisoned batch")


@dataclass
class PoolBreak(_Fault):
    """Kill the worker processes of a process-sharded replica's pool."""

    kind = "pool_break"

    def apply(self, replica) -> None:
        break_pool = getattr(replica, "break_pool", None)
        if callable(break_pool):
            break_pool()


@dataclass
class WorkerKill(_Fault):
    """SIGKILL a fleet worker *process* as a request is dispatched to it.

    The process-level analogue of :class:`ReplicaCrash`, consumed by
    :meth:`FaultPlan.before_dispatch` from the fleet router's dispatcher:
    the targeted worker dies instantly (no drain, no goodbye frame), the
    router's pipe-EOF death path fires, the in-flight requests -- the one
    being dispatched included -- are re-dispatched to healthy workers,
    and the slot is restarted from the artifact within its budget.
    """

    kind = "worker_kill"

    def apply(self, handle) -> None:
        handle.kill()


@dataclass
class WorkerHang(_Fault):
    """Make a fleet worker live-but-unresponsive for ``hang_s`` seconds.

    The worker's frame-reader loop sleeps, so heartbeat pings go
    unanswered while the process stays alive -- the pathology SIGKILL
    escalation exists for.  After ``heartbeat_misses`` silent intervals
    the router kills and restarts it; requests it held are retried.
    Defaults to an hour: effectively "until the router shoots it".
    """

    hang_s: float = 3600.0
    kind = "worker_hang"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.hang_s <= 0:
            raise ConfigurationError(
                f"hang_s must be > 0, got {self.hang_s}"
            )

    def apply(self, handle) -> None:
        handle.inject_hang(self.hang_s)


@dataclass
class SlowWorker(_Fault):
    """Delay a fleet worker's request handling by ``delay_s`` seconds.

    The process-level :class:`SlowReplica`: the worker keeps answering
    heartbeats (it is slow, not hung -- no restart fires) but requests
    dispatched to it from this point on are answered ``delay_s`` late,
    the straggler profile tail-latency hedging exists for.
    """

    delay_s: float = 0.25
    kind = "slow_worker"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )

    def apply(self, handle) -> None:
        handle.inject_slow(self.delay_s)


class FaultPlan:
    """A deterministic bundle of fault injectors for one service run.

    Args:
        *faults: the injectors (:class:`ReplicaCrash`,
            :class:`SlowReplica`, :class:`PoisonedBatch`,
            :class:`PoolBreak`).
        seed: seed of the RNG behind rate-based injectors.  Matching is
            serialised under the plan lock, so a given seed and arrival
            order reproduce the same firing sequence.

    The plan is single-use state: it counts execution attempts, so reuse
    a fresh plan per service run (or call :meth:`reset`).
    """

    def __init__(self, *faults: _Fault, seed: int = 0) -> None:
        import random

        for fault in faults:
            if not isinstance(fault, _Fault):
                raise ConfigurationError(
                    f"not a fault injector: {fault!r}"
                )
        self.faults = tuple(faults)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._global_seq = 0
        self._worker_seq: dict[int, int] = {}
        #: Firing counts by fault kind (e.g. ``{"replica_crash": 1}``).
        self.fired: dict[str, int] = {}

    def reset(self) -> None:
        """Rewind the attempt counters and firing history."""
        import random

        with self._lock:
            self._rng = random.Random(self.seed)
            self._global_seq = 0
            self._worker_seq.clear()
            self.fired.clear()
            for fault in self.faults:
                fault._fired = 0

    def before_batch(self, worker: int, replica=None) -> None:
        """One execution attempt is starting on ``worker``.

        Called by the service worker thread before each bucket execution
        attempt.  Sleeps (slow replica), sabotages the replica (pool
        break), or raises (crash / poison) according to the plan; at most
        one *raising* fault fires per attempt, but a sleep or sabotage
        may precede it.
        """
        with self._lock:
            worker_seq = self._worker_seq.get(worker, 0)
            matched = [
                fault
                for fault in self.faults
                if fault._matches(worker, worker_seq, self._global_seq, self._rng)
            ]
            for fault in matched:
                fault._fired += 1
                self.fired[fault.kind] = self.fired.get(fault.kind, 0) + 1
            self._worker_seq[worker] = worker_seq + 1
            self._global_seq += 1
        # Apply outside the lock: sleeps must not serialise other workers,
        # and raising faults must not leave the lock held.
        raising = None
        for fault in matched:
            if isinstance(fault, (ReplicaCrash, PoisonedBatch)):
                raising = fault
            else:
                fault.apply(replica)
        if raising is not None:
            raising.apply(replica)

    def before_dispatch(self, worker: int, handle=None) -> None:
        """One request is being dispatched to fleet worker slot ``worker``.

        Called by the :class:`~repro.serve.fleet.FleetRouter` dispatcher
        just before the request frame is sent; process-level injectors
        (:class:`WorkerKill`, :class:`WorkerHang`, :class:`SlowWorker`)
        act on the worker *handle* -- killing the process, putting its
        reader to sleep, or arming a response delay.  Dispatch attempts
        tick the same per-worker / plan-wide counters as
        :meth:`before_batch` (a plan is used against one layer at a
        time: :class:`~repro.config.FleetConfig` rejects in-process
        plans, so the counter spaces never mix in practice).
        """
        with self._lock:
            worker_seq = self._worker_seq.get(worker, 0)
            matched = [
                fault
                for fault in self.faults
                if fault._matches(worker, worker_seq, self._global_seq, self._rng)
            ]
            for fault in matched:
                fault._fired += 1
                self.fired[fault.kind] = self.fired.get(fault.kind, 0) + 1
            self._worker_seq[worker] = worker_seq + 1
            self._global_seq += 1
        # Apply outside the lock: a kill triggers the router's death path
        # on another thread, which must not contend with this lock.
        for fault in matched:
            fault.apply(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(f.kind for f in self.faults) or "none"
        return f"FaultPlan(faults=[{kinds}], seed={self.seed})"
