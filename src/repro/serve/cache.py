"""LRU result cache for the inference service.

Serving traffic is repetitive -- the same image recurs (retries, popular
inputs, idempotent clients), and every SC evaluation of a given image is
deterministic given the backend, the stream length and the effective
request options (all randomness is seeded per forward pass).  Results are
therefore cached under the key ``(image digest, backend name, stream
length, effective options)``: a hit returns the stored scores without
spending a single stream cycle, which the service metrics report as cache
hit rate alongside the early-exit savings.  The options component
(:attr:`repro.config.ResolvedPredictOptions.cache_token`) is what keeps
two requests that differ only in checkpoint schedule or per-request
stream length from ever sharing an entry -- the scores stored for one
schedule are stale for the other.

Only *nominal* results enter the cache.  Deadline-truncated answers
(wall-clock artefacts of one request's latency budget) and
overload-degraded answers (truncated schedules served while the
service's degradation controller is engaged, see
:mod:`repro.serve.service`) are never stored: a later request at the
same key expects full-precision scores, and a cache poisoned with an
early-checkpoint answer would silently serve it long after the overload
has passed.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CachedResult", "LruResultCache", "image_digest"]


def image_digest(image: np.ndarray) -> str:
    """Content digest of one image (shape-qualified SHA-1 of its bytes)."""
    arr = np.ascontiguousarray(image, dtype=np.float64)
    hasher = hashlib.sha1(str(arr.shape).encode())
    hasher.update(arr.tobytes())
    return hasher.hexdigest()


@dataclass(frozen=True)
class CachedResult:
    """One cached per-image inference outcome.

    Attributes:
        scores: ``(n_classes,)`` class scores at the exit checkpoint.
        prediction: predicted class index.
        exit_checkpoint: stream cycles the original evaluation consumed.
    """

    scores: np.ndarray
    prediction: int
    exit_checkpoint: int


class LruResultCache:
    """Thread-safe LRU cache of per-image inference results.

    Args:
        capacity: maximum number of entries; ``0`` disables the cache
            (every lookup misses, every store is dropped).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, CachedResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key(
        digest: str, backend: str, stream_length: int, options: tuple = ()
    ) -> tuple:
        """The cache key convention: (digest, backend, N, effective options).

        ``options`` is the request's effective-options token
        (:attr:`repro.config.ResolvedPredictOptions.cache_token`); the
        empty default keeps option-less callers (tests, ad-hoc tooling)
        on a distinct, stable key.
        """
        return (digest, backend, int(stream_length), tuple(options))

    def get(self, key: tuple) -> CachedResult | None:
        """Look up a result, refreshing its recency on a hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: tuple, result: CachedResult) -> None:
        """Store a result, evicting the least recently used beyond capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when untouched)."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters snapshot: size, capacity, hits, misses, hit rate."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
            }
