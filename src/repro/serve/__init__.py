"""Serving layer: micro-batched SC inference with progressive early exit.

The execution backends (:mod:`repro.backends`) answer one question --
*how fast can a merged batch run* -- and this package answers the next
one: *how do individual requests become merged batches, and how few
stream cycles can each request get away with*.  It contains:

* :class:`~repro.serve.service.ScInferenceService` -- the front door:
  futures-based request submission, a FIFO micro-batching scheduler
  (``max_batch_size`` / ``max_wait_ms``), and a worker pool of backend
  replicas, optionally sharded across several registry backends.
* :mod:`~repro.serve.progressive` -- the progressive-precision engine:
  class scores evaluated at stream-length checkpoints
  (:meth:`~repro.backends.base.Backend.forward_partial`) with a
  stability + margin early-exit policy, exploiting SC's defining
  property that precision grows monotonically with stream length.
* :mod:`~repro.serve.cache` -- an LRU result cache keyed on
  ``(image digest, backend name, stream length)``.
* :mod:`~repro.serve.metrics` -- latency percentiles, throughput,
  micro-batch sizes, cache hit rate, mean exit checkpoint, and the
  fault-tolerance counters (sheds, retries, restarts, degradations).
* :mod:`~repro.serve.faults` -- deterministic, seedable fault injection
  (:class:`~repro.serve.faults.FaultPlan`) wired in via
  :attr:`~repro.config.ServiceConfig.fault_plan`, so chaos tests of the
  supervision / admission / degradation paths are ordinary pytest tests.
* :mod:`~repro.serve.registry` -- the serving catalog:
  :class:`~repro.serve.registry.ModelRegistry` maps model names to
  versioned artifacts and lazily builds one replica pool per model
  (service or fleet), with atomic hot-reload on manifest change --
  in-flight requests drain on the old pool, new requests route to the
  new one.
* :mod:`~repro.serve.http` -- the network front end:
  :class:`~repro.serve.http.ScHttpServer`, a stdlib-asyncio HTTP/1.1
  JSON server with unary and SSE progressive-streaming prediction
  routes, Prometheus ``/metrics``, health/readiness probes, typed
  4xx/5xx error mapping and graceful drain through open connections.
* :mod:`~repro.serve.fleet` -- horizontal scale-out:
  :class:`~repro.serve.fleet.FleetRouter` supervises a fleet of worker
  *processes* (:mod:`~repro.serve.fleet_worker`, one embedded service
  each, rehydrated bit-identically from a shared artifact) over the
  :mod:`~repro.serve.rpc` pipe protocol, with heartbeat health checks,
  crash/hang restart within budgets, deadline-aware request retry,
  tail-latency hedging, bounded admission and graceful/rolling drains.

Observability rides on :mod:`repro.obs`: with ``trace_sample_rate`` set,
sampled requests carry a :class:`~repro.obs.TraceSummary` on their
:class:`~repro.serve.service.InferenceResponse`,
``ScInferenceService.snapshot()`` extends the metrics with kernel-tier
counters, workspace arena stats and tracer state, and ``event_log_path``
streams traces plus fault events to a JSONL log.

``benchmarks/bench_serve.py`` drives the whole stack with a load
generator and records the latency/throughput curves and early-exit
stream-cycle savings in ``BENCH_serve.json``; ``examples/serve_demo.py``
is the minimal end-to-end walkthrough.
"""

from repro.config import FleetConfig, HttpConfig, ServiceConfig
from repro.errors import (
    FleetError,
    InferenceError,
    ModelNotFoundError,
    RemoteWorkerError,
    ServiceOverloadError,
)
from repro.serve.cache import CachedResult, LruResultCache, image_digest
from repro.serve.faults import (
    FaultPlan,
    InjectedCrashError,
    PoisonedBatch,
    PoolBreak,
    ReplicaCrash,
    SlowReplica,
    SlowWorker,
    WorkerHang,
    WorkerKill,
)
from repro.serve.fleet import FleetMetrics, FleetRouter
from repro.serve.http import HttpError, ScHttpServer
from repro.serve.registry import ModelInfo, ModelRegistry, describe_artifact
from repro.obs import TraceSummary
from repro.serve.metrics import ServiceMetrics
from repro.serve.progressive import (
    ProgressiveResult,
    early_exit_from_scores,
    progressive_forward,
    resolve_checkpoints,
)
from repro.serve.service import InferenceResponse, ScInferenceService

__all__ = [
    "ServiceConfig",
    "ScInferenceService",
    "InferenceResponse",
    "ProgressiveResult",
    "progressive_forward",
    "early_exit_from_scores",
    "resolve_checkpoints",
    "LruResultCache",
    "CachedResult",
    "image_digest",
    "ServiceMetrics",
    "TraceSummary",
    "InferenceError",
    "ServiceOverloadError",
    "FaultPlan",
    "ReplicaCrash",
    "SlowReplica",
    "PoisonedBatch",
    "PoolBreak",
    "WorkerKill",
    "WorkerHang",
    "SlowWorker",
    "InjectedCrashError",
    "FleetConfig",
    "FleetRouter",
    "FleetMetrics",
    "FleetError",
    "RemoteWorkerError",
    "HttpConfig",
    "ScHttpServer",
    "HttpError",
    "ModelRegistry",
    "ModelInfo",
    "ModelNotFoundError",
    "describe_artifact",
]
