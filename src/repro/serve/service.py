"""Micro-batching SC inference service with progressive early exit.

:class:`ScInferenceService` is the request path in front of the execution
backends (:mod:`repro.backends`): clients submit single images or small
batches and receive futures; a scheduler thread coalesces queued requests
into merged batches (dispatching as soon as ``max_batch_size`` images are
pending or the oldest request has waited ``max_wait_ms``); a pool of
worker threads -- each owning one backend replica, optionally sharded
across several registry backends -- executes the merged batches.  Per
image the service consults the LRU result cache first and, on progressive
backends, answers through the early-exit engine
(:mod:`repro.serve.progressive`) so confidently classified images stop
streaming at an early checkpoint.

Requests carry typed per-request options
(:class:`~repro.config.PredictOptions`): a reduced stream length or an
explicit checkpoint schedule is read from stream prefixes, ``early_exit``
overrides the service default per request, and ``deadline_ms`` caps the
exit checkpoint by the request's remaining latency budget at evaluation
time (an expired deadline answers from the *first* checkpoint).  Options
are validated at :meth:`~ScInferenceService.submit` -- malformed images
or schedules raise in the caller, never as a worker-side future error --
and the result-cache key incorporates the effective options, so requests
that differ only in schedule never share an entry.

Micro-batching is *transparent* for the bit-exact backends: every image's
streams are generated from draw tensors shared across the batch, so its
scores are bit-identical no matter which requests it was coalesced with
-- the property ``tests/test_serve.py`` pins down.  Merged batches may
mix requests with different effective options; the worker buckets them by
evaluation plan, which preserves that transparency per bucket.

**Fault tolerance.**  A worker thread never dies with its batch: failures
are classified by exception type.  :class:`~repro.errors.InferenceError`
is *request-scoped* -- the affected futures fail with it, the replica is
presumed healthy, no retry.  Any other exception is *replica-scoped*:
the worker closes and rebuilds its replica (exponential backoff, bounded
by ``max_replica_restarts``) and re-executes the bucket up to
``max_batch_retries`` times before failing the futures with a typed
:class:`~repro.errors.InferenceError` chaining the original cause.
Bounded admission (``max_queue_depth``) fast-rejects submits with
:class:`~repro.errors.ServiceOverloadError` instead of queueing without
bound, and ``shed_unmeetable_deadlines`` rejects requests whose
``deadline_ms`` cannot buy even the first checkpoint at the observed
streaming rate.  Under overload (queue depth or recent p99 latency past
the ``degrade_*`` thresholds) the service answers progressive requests
from a truncated checkpoint schedule (``degraded_max_fraction`` of the
stream); degraded answers are flagged on the response and never enter
the result cache.  Deterministic fault injection for all of this lives
in :mod:`repro.serve.faults`.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.backends import backend_class, create_backend
from repro.backends.base import Backend
from repro.backends.parallel import ParallelBackend
from repro.config import PredictOptions, ResolvedPredictOptions, ServiceConfig
from repro.errors import (
    ConfigurationError,
    InferenceError,
    ServiceOverloadError,
)
from repro.nn.sc_layers import ScNetworkMapper
from repro.obs import (
    JsonlEventLog,
    Trace,
    Tracer,
    TraceSummary,
    merge_kernel_snapshots,
)
from repro.serve.cache import CachedResult, LruResultCache, image_digest
from repro.serve.metrics import ServiceMetrics
from repro.serve.progressive import (
    cap_checkpoints,
    early_exit_from_scores,
    resolve_checkpoints,
)

__all__ = ["InferenceResponse", "ScInferenceService"]

_LOG = logging.getLogger("repro.serve")

#: Queue sentinel that shuts down the scheduler / a worker.
_SHUTDOWN = object()


@dataclass(frozen=True)
class InferenceResponse:
    """Answer to one service request.

    Attributes:
        scores: ``(batch, n_classes)`` class scores at each image's exit
            checkpoint.
        predictions: ``(batch,)`` predicted classes.
        exit_checkpoints: ``(batch,)`` stream cycles at which each
            image's scores were evaluated (cached images report the
            checkpoint of the original evaluation; the ``cached`` mask
            marks that *this* request spent no cycles on them).
        cached: ``(batch,)`` boolean mask of images served from the cache.
        stream_length: full stream length ``N`` of the service.
        latency_seconds: submit-to-response wall time.
        degraded: True when overload shedding answered this request from
            a truncated checkpoint schedule (the scores are exact prefix
            evaluations, just earlier ones than the request asked for);
            degraded results never enter the result cache.
        trace: :class:`repro.obs.TraceSummary` of the request's lifecycle
            (queue/service split, per-stage and per-checkpoint timings,
            replica / batch / retry annotations) when the request was
            sampled by the service tracer; ``None`` otherwise.
    """

    scores: np.ndarray
    predictions: np.ndarray
    exit_checkpoints: np.ndarray
    cached: np.ndarray
    stream_length: int
    latency_seconds: float
    degraded: bool = False
    trace: TraceSummary | None = None


class _PendingRequest:
    """One submitted request: the uncached rows awaiting a worker."""

    __slots__ = (
        "future",
        "n_images",
        "compute_images",
        "compute_indices",
        "digests",
        "rows",
        "submitted_at",
        "resolved",
        "deadline_at",
        "counted",
        "trace",
        "exec_started_at",
        "batch_seq",
        "retries",
        "worker",
        "replica_name",
    )

    def __init__(
        self,
        images: np.ndarray,
        digests: list[str],
        rows: list[CachedResult | None],
        resolved: ResolvedPredictOptions,
    ) -> None:
        self.future: Future = Future()
        # Back-pointer for ScInferenceService.cancel(): given only the
        # future a caller holds, find the request to release its
        # admission slot.  (Cycle future <-> request; the GC copes.)
        self.future.sc_request = self
        self.n_images = images.shape[0]
        #: True while the request occupies an admission slot
        #: (``_inflight``); cleared exactly once on finish/fail/cancel.
        self.counted = False
        self.compute_indices = [i for i, row in enumerate(rows) if row is None]
        self.compute_images = images[self.compute_indices]
        self.digests = digests
        self.rows = rows
        self.submitted_at = time.perf_counter()
        self.resolved = resolved
        self.deadline_at = (
            None
            if resolved.deadline_ms is None
            else self.submitted_at + resolved.deadline_ms / 1e3
        )
        #: Live :class:`repro.obs.Trace` when this request was sampled.
        self.trace: Trace | None = None
        #: ``perf_counter`` mark of the request's *first* execution
        #: attempt -- the boundary splitting latency into queue time and
        #: service time; ``None`` for cache-only requests.
        self.exec_started_at: float | None = None
        self.batch_seq: int | None = None
        self.retries = 0
        self.worker: int | None = None
        self.replica_name: str | None = None

    @property
    def n_compute(self) -> int:
        return len(self.compute_indices)

    def response(self) -> InferenceResponse:
        """Assemble the response once every row is filled."""
        scores = np.stack([row.scores for row in self.rows])
        cached = np.ones(self.n_images, dtype=bool)
        cached[self.compute_indices] = False
        return InferenceResponse(
            scores=scores,
            predictions=np.asarray([row.prediction for row in self.rows]),
            exit_checkpoints=np.asarray(
                [row.exit_checkpoint for row in self.rows]
            ),
            cached=cached,
            stream_length=0,  # patched by the service (see _finish)
            latency_seconds=0.0,
        )


class ScInferenceService:
    """Micro-batching front door over the execution backends.

    Args:
        mapper: the SC network mapper every backend replica executes
            (trained network, stream length, weight precision, seed).
        config: service knobs (:class:`repro.config.ServiceConfig`);
            ``None`` uses the defaults.
        artifact_path: optional model-artifact directory; forwarded to
            process-sharded replicas (``bit-exact-packed-mp``) so their
            worker processes rehydrate mappers from the shared file
            instead of unpickling per-replica payloads (sessions opened
            via :meth:`repro.api.Session.from_artifact` wire this up).
        **backend_options: forwarded to every backend replica's
            constructor (e.g. ``position_chunk`` for the bit-exact
            backends).

    The service starts its scheduler and worker threads immediately and
    is used either as a context manager or with an explicit
    :meth:`close`.
    """

    def __init__(
        self,
        mapper: ScNetworkMapper,
        config: ServiceConfig | None = None,
        artifact_path: str | Path | None = None,
        **backend_options: object,
    ) -> None:
        self.config = config or ServiceConfig()
        self.mapper = mapper
        names = self.config.backend_names
        # Worker i runs a replica of shard i % len(names): a homogeneous
        # pool by default, round-robin sharding across several registry
        # backends when the config names more than one.
        self._replicas = []
        # Construction recipe per worker slot, kept so the supervision
        # path can rebuild a crashed replica from scratch (a replica
        # built from an artifact path is rebuilt from the same path).
        self._replica_specs: list[tuple[str, dict]] = []
        for i in range(self.config.num_workers):
            name = names[i % len(names)]
            options = dict(backend_options)
            if artifact_path is not None and issubclass(
                backend_class(name), ParallelBackend
            ):
                options.setdefault("artifact_path", str(artifact_path))
            self._replica_specs.append((name, options))
            self._replicas.append(create_backend(name, mapper, **options))
        self._shard_names = tuple(dict.fromkeys(names))
        # Per-request reduced stream lengths / explicit schedules need
        # stream-prefix evaluation on every shard; checked at submit().
        # Read off the built replicas, not the registry classes --
        # wrappers like ParallelBackend override the flag per instance
        # to mirror their inner backend.
        self._all_progressive = all(
            getattr(replica, "progressive", False)
            for replica in self._replicas
        )
        self.stream_length = mapper.stream_length
        self.checkpoints = resolve_checkpoints(
            self.stream_length, self.config.checkpoint_fractions
        )
        #: Evaluation plan of an option-less request, resolved once.
        self._default_resolved = PredictOptions().resolve(
            self.stream_length,
            self.config.checkpoint_fractions,
            self.config.early_exit,
        )
        #: EWMA of observed streaming throughput (stream cycles per
        #: second per request batch), the deadline policy's clock.  None
        #: until the first computed batch lands.
        self._cycles_per_second: float | None = None
        self.cache = LruResultCache(self.config.cache_capacity)
        self.metrics = ServiceMetrics()
        #: Request tracer (sampling per ``trace_sample_rate``); at rate 0
        #: every recording site short-circuits on ``trace is None``.
        self.tracer = Tracer(
            self.config.trace_sample_rate,
            self.config.trace_capacity,
            self.config.trace_seed,
        )
        #: JSONL structured event log, when configured; receives every
        #: sampled trace and fault/overload event, plus warnings logged
        #: under the ``repro`` logger hierarchy (via the mirror handler).
        self.events: JsonlEventLog | None = (
            JsonlEventLog(self.config.event_log_path)
            if self.config.event_log_path
            else None
        )
        self._log_mirror: logging.Handler | None = None
        if self.events is not None:
            self._log_mirror = self.events.logging_handler()
            logging.getLogger("repro").addHandler(self._log_mirror)
        #: Merged-batch sequence number (scheduler thread only).
        self._batch_seq = 0
        self._pending: queue.Queue = queue.Queue()
        self._dispatch: queue.Queue = queue.Queue()
        self._closed = False
        self._close_lock = threading.Lock()
        #: Requests admitted but not yet resolved; bounded by
        #: ``max_queue_depth`` and read by the degradation controller.
        #: Guarded by ``_close_lock`` (same lock that serialises admission
        #: with close()).
        self._inflight = 0
        #: Replica restarts consumed per worker slot (the restart budget
        #: ``max_replica_restarts`` is per slot, not service-wide).
        self._restart_counts = [0] * self.config.num_workers
        self._fault_plan = self.config.fault_plan
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="sc-serve-scheduler", daemon=True
        )
        # Workers are handed their slot *index*, not the replica object:
        # the supervision path swaps ``_replicas[index]`` on restart and
        # the worker must pick up the replacement on the next attempt.
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"sc-serve-worker-{i}",
                daemon=True,
            )
            for i in range(len(self._replicas))
        ]
        self._scheduler.start()
        for worker in self._workers:
            worker.start()

    # -- request path ----------------------------------------------------------

    def submit(
        self, images: np.ndarray, options: PredictOptions | None = None
    ) -> Future:
        """Enqueue a request; the future resolves to an
        :class:`InferenceResponse`.

        Validation is *fail-fast*: malformed images
        (:class:`~repro.errors.ShapeError` /
        :class:`~repro.errors.EncodingError`) and invalid or unsupported
        options (:class:`~repro.errors.ConfigurationError`) raise here,
        in the caller, never as a worker-side future error.

        Admission is *bounded*: with ``max_queue_depth`` configured, a
        request arriving while that many are already in flight is shed
        with :class:`~repro.errors.ServiceOverloadError` (reason
        ``"queue_full"``) instead of queueing without bound; with
        ``shed_unmeetable_deadlines`` on, a request whose ``deadline_ms``
        cannot buy even the first checkpoint at the observed streaming
        rate is shed with reason ``"deadline"``.  Requests fully served
        from the cache bypass admission (they never queue).

        Args:
            images: one ``(channels, height, width)`` image or a small
                ``(batch, channels, height, width)`` batch in ``[0, 1]``.
            options: per-request inference options
                (:class:`~repro.config.PredictOptions`); ``None`` uses
                the service defaults.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        submit_started = time.perf_counter()
        arr = Backend._check_images(images)
        if arr.shape[0] == 0:
            raise ConfigurationError("a request needs at least one image")
        resolved = self._resolve_options(options)
        trace = self.tracer.begin()
        if self.cache.capacity:
            digests = [image_digest(image) for image in arr]
            rows: list[CachedResult | None] = [
                self._cache_lookup(digest, resolved.cache_token)
                for digest in digests
            ]
        else:
            # Cache disabled: skip the per-image digests and lookups
            # entirely (they would cost a hash pass per image on the
            # latency hot path for guaranteed misses).
            digests = [""] * arr.shape[0]
            rows = [None] * arr.shape[0]
        request = _PendingRequest(arr, digests, rows, resolved)
        request.trace = trace
        if trace is not None:
            trace.add_span(
                "submit",
                submit_started,
                request.submitted_at,
                n_images=request.n_images,
                cache_hits=request.n_images - request.n_compute,
            )
        if request.n_compute == 0:
            self._finish(request, cache_hits=request.n_images, exits=())
            return request.future
        self._shed_unmeetable_deadline(resolved)
        # Enqueueing is serialised with close(): the closed re-check and
        # the put happen under the lock close() uses to enqueue its
        # shutdown sentinel, so a request can never land behind the
        # sentinel drain and leave its future unresolved.  The same lock
        # makes the depth check and the in-flight increment atomic.
        with self._close_lock:
            if self._closed:
                raise ConfigurationError("service is closed")
            depth = self.config.max_queue_depth
            if depth is not None and self._inflight >= depth:
                self.metrics.record_shed("queue_full")
                _LOG.info(
                    "shed request: admission queue full (%d in flight)",
                    self._inflight,
                    extra={
                        "obs_event": {
                            "kind": "shed",
                            "reason": "queue_full",
                            "inflight": self._inflight,
                        }
                    },
                )
                raise ServiceOverloadError(
                    f"admission queue is full ({self._inflight} requests "
                    f"in flight, max_queue_depth={depth}); retry later "
                    "or raise max_queue_depth",
                    reason="queue_full",
                )
            self._inflight += 1
            request.counted = True
            self._pending.put(request)
        return request.future

    def _shed_unmeetable_deadline(
        self, resolved: ResolvedPredictOptions
    ) -> None:
        """Reject a deadline the observed streaming rate cannot meet.

        Off by default (``shed_unmeetable_deadlines``): the compatible
        behaviour is to answer an expired deadline from the first
        checkpoint.  When on, a request whose latency budget prices to
        fewer cycles than its *first* checkpoint is shed at submit --
        before it occupies an admission slot -- since the cheapest answer
        the service could give would already blow the deadline.  Until
        the first batch lands there is no rate estimate and nothing is
        shed.
        """
        if (
            not self.config.shed_unmeetable_deadlines
            or resolved.deadline_ms is None
        ):
            return
        rate = self._cycles_per_second
        if rate is None:
            return
        budget_cycles = resolved.deadline_ms / 1e3 * rate
        first = resolved.checkpoints[0]
        if budget_cycles < first:
            self.metrics.record_shed("deadline")
            _LOG.info(
                "shed request: deadline of %g ms below the first "
                "checkpoint at the observed rate",
                resolved.deadline_ms,
                extra={
                    "obs_event": {
                        "kind": "shed",
                        "reason": "deadline",
                        "deadline_ms": resolved.deadline_ms,
                        "budget_cycles": budget_cycles,
                        "first_checkpoint": first,
                    }
                },
            )
            raise ServiceOverloadError(
                f"deadline of {resolved.deadline_ms:g} ms buys "
                f"~{budget_cycles:.0f} stream cycles at the observed "
                f"rate, below the first checkpoint ({first} cycles)",
                reason="deadline",
            )

    def infer(
        self,
        images: np.ndarray,
        options: PredictOptions | None = None,
        timeout: float | None = None,
    ) -> InferenceResponse:
        """Synchronous convenience wrapper: submit and wait.

        On ``timeout`` the request is *cancelled* before re-raising: an
        abandoned request must not keep occupying an admission slot and
        worker time nobody will read.  Cancellation only succeeds while
        the request is still queued (futures never enter the running
        state here); a request a worker is already computing completes
        normally and its result is dropped.
        """
        future = self.submit(images, options)
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            self.cancel(future)
            raise

    def cancel(self, future: Future) -> bool:
        """Drop a submitted request before a worker picks it up.

        Returns True when the future was still pending and is now
        cancelled: its admission slot is released immediately, workers
        skip it at dispatch, and the cancellation is counted in
        :class:`~repro.serve.metrics.ServiceMetrics`.  Returns False when
        the request already resolved (or was already cancelled).
        """
        if not future.cancel():
            return False
        request = getattr(future, "sc_request", None)
        if isinstance(request, _PendingRequest):
            self._release(request)
        self.metrics.record_cancelled()
        return True

    def _release(self, request: _PendingRequest) -> None:
        """Give back the request's admission slot (exactly once)."""
        with self._close_lock:
            if request.counted:
                request.counted = False
                self._inflight -= 1

    def _resolve_options(
        self, options: PredictOptions | None
    ) -> ResolvedPredictOptions:
        """Resolve request options against this service's configuration.

        Raises in the submitting caller when the request demands
        stream-prefix evaluation (reduced stream length / explicit
        checkpoints) but a configured shard backend cannot provide it.
        """
        if options is None:
            return self._default_resolved
        resolved = options.resolve(
            self.stream_length,
            self.config.checkpoint_fractions,
            self.config.early_exit,
        )
        if resolved.explicit_schedule and not self._all_progressive:
            raise ConfigurationError(
                "per-request stream lengths / checkpoint schedules need "
                "progressive backends, but this service is configured with "
                f"{self._shard_names} (pick backends whose 'progressive' "
                "capability flag is set)"
            )
        return resolved

    def _cache_lookup(
        self, digest: str, token: tuple
    ) -> CachedResult | None:
        for name in self._shard_names:
            entry = self.cache.get(
                LruResultCache.key(digest, name, self.stream_length, token)
            )
            if entry is not None:
                return entry
        return None

    # -- scheduler -------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        max_batch = self.config.max_batch_size
        max_wait = self.config.max_wait_ms / 1e3
        shutdown = False
        while not shutdown:
            item = self._pending.get()
            if item is _SHUTDOWN:
                break
            group = [item]
            total = item.n_compute
            deadline = item.submitted_at + max_wait
            while total < max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining <= 0:
                        # Window elapsed: keep draining whatever is
                        # already queued (backlog wants *larger* batches,
                        # not more of them), but never block again.
                        nxt = self._pending.get_nowait()
                    else:
                        nxt = self._pending.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                group.append(nxt)
                total += nxt.n_compute
            self.metrics.record_batch(total)
            self._dispatch.put((self._batch_seq, group))
            self._batch_seq += 1
        # Graceful shutdown: everything still queued is dispatched before
        # the workers are released.
        while True:
            try:
                item = self._pending.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self.metrics.record_batch(item.n_compute)
            self._dispatch.put((self._batch_seq, [item]))
            self._batch_seq += 1
        for _ in self._workers:
            self._dispatch.put(_SHUTDOWN)

    # -- workers ---------------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        """One worker thread: execute dispatched groups, never die.

        Every failure mode below resolves the affected futures with a
        typed error; the blanket handler is the last line of defence
        against bugs in the bookkeeping itself (not the execution path,
        which :meth:`_execute_bucket` supervises) and likewise routes the
        failure to the batch's futures instead of killing the thread.
        """
        while True:
            item = self._dispatch.get()
            if item is _SHUTDOWN:
                return
            seq, group = item
            try:
                self._process_group(seq, group, index)
            except Exception as exc:  # pragma: no cover - defensive
                error = InferenceError(
                    f"internal serving error on worker {index}: {exc!r}"
                )
                error.__cause__ = exc
                self._fail_bucket(group, error)

    def _process_group(
        self, seq: int, group: list[_PendingRequest], index: int
    ) -> None:
        # A merged batch may mix requests with different effective
        # options; bucketing by evaluation plan keeps each sub-batch on
        # one schedule (micro-batching stays transparent per bucket).
        # Requests cancelled while queued are dropped here, before any
        # compute is spent on them (their slot was already released).
        buckets: dict[tuple, list[_PendingRequest]] = {}
        for request in group:
            if request.future.cancelled():
                continue
            buckets.setdefault(request.resolved.cache_token, []).append(request)
        for bucket in buckets.values():
            self._execute_bucket(bucket, index, seq)

    def _execute_bucket(
        self, bucket: list[_PendingRequest], index: int, seq: int
    ) -> None:
        """Run one bucket under replica supervision.

        Failure policy, by exception type:

        * :class:`~repro.errors.InferenceError` (and injected poisoned
          batches) is request-scoped: fail this bucket's futures, keep
          the replica, never retry.
        * Anything else is replica-scoped (a crash): close and rebuild
          the worker's replica (exponential backoff, bounded by the
          per-slot restart budget) and re-execute the bucket, up to
          ``max_batch_retries`` retries.  When the budget or the retries
          run out the futures fail with a typed error chaining the
          original crash.
        """
        attempts = 1 + self.config.max_batch_retries
        for attempt in range(attempts):
            replica = self._replicas[index]
            try:
                if self._fault_plan is not None:
                    self._fault_plan.before_batch(
                        worker=index, replica=replica
                    )
                self._process_bucket(bucket, replica, index, seq)
                return
            except InferenceError as exc:
                self._fail_bucket(bucket, exc)
                return
            except Exception as exc:
                retriable = (
                    attempt + 1 < attempts and self._restart_replica(index)
                )
                if not retriable:
                    error = InferenceError(
                        f"batch execution failed on worker {index} after "
                        f"{attempt + 1} attempt(s): {exc!r}"
                    )
                    error.__cause__ = exc
                    _LOG.warning(
                        "batch failed on worker %d after %d attempt(s): %r",
                        index,
                        attempt + 1,
                        exc,
                        extra={
                            "obs_event": {
                                "kind": "batch_failed",
                                "worker": index,
                                "batch_seq": seq,
                                "attempts": attempt + 1,
                                "error": repr(exc),
                            }
                        },
                    )
                    self._fail_bucket(bucket, error)
                    return
                for request in bucket:
                    request.retries += 1
                self.metrics.record_retry()

    def _restart_replica(self, index: int) -> bool:
        """Rebuild worker ``index``'s replica after a crash.

        Returns False when the slot's restart budget
        (``max_replica_restarts``) is spent -- the caller then fails the
        bucket instead of retrying.  Backoff doubles per consumed restart
        (``restart_backoff_ms`` base, capped at one second) so a
        hard-crashing replica cannot spin the worker.
        """
        used = self._restart_counts[index]
        if used >= self.config.max_replica_restarts:
            return False
        delay = min(self.config.restart_backoff_ms / 1e3 * (2**used), 1.0)
        if delay > 0:
            time.sleep(delay)
        old = self._replicas[index]
        try:
            old.close()
        except Exception:  # pragma: no cover - close() contract says no
            pass
        name, options = self._replica_specs[index]
        self._replicas[index] = create_backend(name, self.mapper, **options)
        self._restart_counts[index] = used + 1
        self.metrics.record_restart()
        _LOG.warning(
            "restarted replica %r on worker %d (restart %d of %d)",
            name,
            index,
            used + 1,
            self.config.max_replica_restarts,
            extra={
                "obs_event": {
                    "kind": "replica_restart",
                    "worker": index,
                    "backend": name,
                    "restart": used + 1,
                    "budget": self.config.max_replica_restarts,
                }
            },
        )
        return True

    def _fail_bucket(
        self, bucket: list[_PendingRequest], error: BaseException
    ) -> None:
        """Resolve a bucket's futures with ``error`` (never raises)."""
        for request in bucket:
            try:
                request.future.set_exception(error)
            except InvalidStateError:
                # Cancelled (slot already released) or already resolved.
                continue
            self._release(request)
            self.metrics.record_failure()
            if request.trace is not None:
                self.tracer.finish(request.trace)
                if self.events is not None:
                    self.events.emit(
                        "request_failed",
                        trace_id=request.trace.trace_id,
                        error=repr(error),
                        retries=request.retries,
                    )

    def _process_bucket(
        self,
        bucket: list[_PendingRequest],
        replica: Backend,
        index: int,
        seq: int,
    ) -> None:
        exec_start = time.perf_counter()
        for request in bucket:
            # The *first* execution attempt ends the queue stage; a
            # retried bucket keeps the original mark so queue time never
            # silently absorbs retry work.
            if request.exec_started_at is None:
                request.exec_started_at = exec_start
            request.batch_seq = seq
            request.worker = index
            request.replica_name = replica.name
        resolved = bucket[0].resolved
        points = resolved.checkpoints
        images = np.concatenate(
            [request.compute_images for request in bucket], axis=0
        )
        has_deadline = any(r.deadline_at is not None for r in bucket)
        # Overload degradation: when the controller reports a cap, the
        # bucket's schedule is truncated to the checkpoints at or below
        # it (keeping at least the first).  The answers are still exact
        # prefix evaluations -- just earlier ones -- and are flagged
        # degraded so they never poison the full-precision cache.
        degrade_cap = self._degrade_cap()
        degraded = False
        if degrade_cap is not None and replica.progressive:
            capped = cap_checkpoints(points, degrade_cap)
            if capped != points:
                points = capped
                degraded = True
                _LOG.info(
                    "overload degradation: bucket of %d request(s) capped "
                    "at %d stream cycles",
                    len(bucket),
                    degrade_cap,
                    extra={
                        "obs_event": {
                            "kind": "degraded",
                            "worker": index,
                            "batch_seq": seq,
                            "requests": len(bucket),
                            "cap_cycles": degrade_cap,
                        }
                    },
                )
        # Deadline-budgeted requests force the checkpoint path even with
        # early exit off: the cap needs per-checkpoint scores to fall
        # back on.  Non-progressive replicas degrade to a full forward
        # pass (explicit schedules were already rejected at submit()).
        use_checkpoints = replica.progressive and (
            resolved.early_exit
            or resolved.explicit_schedule
            or has_deadline
            or degraded
        )
        started = time.perf_counter()
        ran_policy = False
        if use_checkpoints:
            checkpoint_scores = np.asarray(
                replica.forward_partial(images, points)
            )
            forward_ended = time.perf_counter()
            if resolved.early_exit:
                ran_policy = True
                policy = early_exit_from_scores(
                    checkpoint_scores,
                    points,
                    margin=self.config.margin,
                    stable_checkpoints=self.config.stable_checkpoints,
                )
                exit_index = np.searchsorted(
                    np.asarray(points), policy.exit_checkpoints
                )
            else:
                exit_index = np.full(images.shape[0], len(points) - 1)
        else:
            scores_full = np.asarray(replica.forward(images))
            forward_ended = time.perf_counter()
            checkpoint_scores = scores_full[None]
            points = (resolved.stream_length,)
            exit_index = np.zeros(images.shape[0], dtype=int)
        # The work done is always a full-stream simulation (progressive
        # backends read checkpoints as prefixes of the complete streams),
        # so the rate is priced in full-N cycles regardless of the
        # bucket's schedule.
        self._observe_rate(self.stream_length, time.perf_counter() - started)
        now = time.perf_counter()
        cycles = np.asarray(points)
        offset = 0
        for request in bucket:
            k = request.n_compute
            exits_here = exit_index[offset : offset + k]
            cap = self._deadline_cap(request, points, now)
            if cap is not None:
                exits_here = np.minimum(exits_here, cap)
            rows = np.arange(offset, offset + k)
            scores = checkpoint_scores[exits_here, rows]
            if request.trace is not None:
                self._record_bucket_spans(
                    request,
                    exec_start=exec_start,
                    forward_started=started,
                    forward_ended=forward_ended,
                    ended=now,
                    points=points,
                    batch_images=images.shape[0],
                    used_checkpoints=use_checkpoints,
                    ran_policy=ran_policy,
                    degraded=degraded,
                )
            self._fulfill(
                request,
                replica,
                scores,
                np.argmax(scores, axis=-1),
                cycles[exits_here],
                degraded=degraded,
            )
            offset += k

    def _record_bucket_spans(
        self,
        request: _PendingRequest,
        exec_start: float,
        forward_started: float,
        forward_ended: float,
        ended: float,
        points: tuple[int, ...],
        batch_images: int,
        used_checkpoints: bool,
        ran_policy: bool,
        degraded: bool = False,
    ) -> None:
        """Record one request's compute-side spans (successful attempt).

        Spans are only recorded once the bucket attempt *succeeded* --
        an attempt that raises unwinds before this point, so retries
        never leave duplicate span records behind (the retry count is
        carried as an annotation instead).
        """
        trace = request.trace
        queue_end = (
            request.exec_started_at
            if request.exec_started_at is not None
            else exec_start
        )
        trace.add_span(
            "queue",
            request.submitted_at,
            queue_end,
            batch_seq=request.batch_seq,
            worker=request.worker,
        )
        compute = trace.add_span(
            "compute",
            exec_start,
            ended,
            replica=request.replica_name,
            worker=request.worker,
            batch_seq=request.batch_seq,
            batch_images=batch_images,
            retries=request.retries,
            degraded=degraded,
        )
        trace.add_span(
            "forward_partial" if used_checkpoints else "forward",
            forward_started,
            forward_ended,
            parent=compute,
            checkpoints=list(points),
            batch_images=batch_images,
        )
        if ran_policy:
            trace.add_span(
                "early_exit", forward_ended, ended, parent=compute
            )

    def _degrade_cap(self) -> int | None:
        """Stream-cycle cap of the overload controller, or None.

        Overload is either queue pressure (``degrade_queue_depth``
        requests in flight) or latency pressure (recent p99 past
        ``degrade_p99_ms``).  While overloaded, progressive buckets are
        answered from checkpoints at or below
        ``degraded_max_fraction * N``.  Reads of ``_inflight`` are
        intentionally lock-free: an off-by-one cap decision is harmless.
        """
        cfg = self.config
        if cfg.degrade_queue_depth is None and cfg.degrade_p99_ms is None:
            return None
        overloaded = (
            cfg.degrade_queue_depth is not None
            and self._inflight >= cfg.degrade_queue_depth
        )
        if not overloaded and cfg.degrade_p99_ms is not None:
            p99 = self.metrics.recent_p99_ms()
            overloaded = p99 is not None and p99 > cfg.degrade_p99_ms
        if not overloaded:
            return None
        return max(1, int(cfg.degraded_max_fraction * self.stream_length))

    def _observe_rate(self, full_cycles: int, duration: float) -> None:
        """Fold one batch evaluation into the streaming-rate estimate.

        The deadline policy's clock: "an evaluation to ``C`` cycles
        recently took ``T`` seconds" becomes ``C / T`` cycles per second,
        smoothed exponentially.  Racy float updates between worker
        threads are benign (any recent observation is a fine estimate).
        """
        if duration <= 0:
            return
        observed = full_cycles / duration
        current = self._cycles_per_second
        self._cycles_per_second = (
            observed if current is None else 0.5 * current + 0.5 * observed
        )

    def _deadline_cap(
        self,
        request: _PendingRequest,
        points: tuple[int, ...],
        now: float,
    ) -> int | None:
        """Largest checkpoint index the request's remaining budget affords.

        An expired deadline caps at the *first* checkpoint (the cheapest
        answer the schedule offers); with no throughput estimate yet the
        budget cannot be priced and the request runs uncapped.
        """
        if request.deadline_at is None:
            return None
        remaining = request.deadline_at - now
        if remaining <= 0:
            return 0
        rate = self._cycles_per_second
        if rate is None:
            return None
        budget_cycles = remaining * rate
        cap = int(np.searchsorted(points, budget_cycles, side="right")) - 1
        return max(0, cap)

    def _fulfill(
        self,
        request: _PendingRequest,
        replica: Backend,
        scores: np.ndarray,
        predictions: np.ndarray,
        exits: np.ndarray,
        degraded: bool = False,
    ) -> None:
        cache_started = time.perf_counter()
        cached_rows = 0
        for j, index in enumerate(request.compute_indices):
            row = CachedResult(
                scores=np.array(scores[j]),
                prediction=int(predictions[j]),
                exit_checkpoint=int(exits[j]),
            )
            request.rows[index] = row
            # Deadline-truncated results are wall-clock artefacts and
            # degraded results are overload artefacts: neither may ever
            # satisfy a later full-precision request.
            if (
                self.cache.capacity
                and request.resolved.cacheable
                and not degraded
            ):
                self.cache.put(
                    LruResultCache.key(
                        request.digests[index],
                        replica.name,
                        self.stream_length,
                        request.resolved.cache_token,
                    ),
                    row,
                )
                cached_rows += 1
        if request.trace is not None and cached_rows:
            request.trace.add_span(
                "cache_write",
                cache_started,
                time.perf_counter(),
                entries=cached_rows,
            )
        self._finish(
            request,
            cache_hits=request.n_images - request.n_compute,
            exits=tuple(int(p) for p in exits),
            degraded=degraded,
        )

    def _finish(
        self,
        request: _PendingRequest,
        cache_hits: int,
        exits,
        degraded: bool = False,
    ) -> None:
        # One `end` mark prices latency AND the queue/service split, so
        # `queue + service == latency` holds to float precision (the
        # exactness contract the trace tests pin down).
        end = time.perf_counter()
        latency = end - request.submitted_at
        if request.exec_started_at is None:
            # Answered entirely from the cache: never queued for compute.
            queue_s, service_s = 0.0, latency
        else:
            queue_s = request.exec_started_at - request.submitted_at
            service_s = end - request.exec_started_at
        summary = (
            self._summarise_trace(request, queue_s, service_s, latency)
            if request.trace is not None
            else None
        )
        base = request.response()
        response = InferenceResponse(
            scores=base.scores,
            predictions=base.predictions,
            exit_checkpoints=base.exit_checkpoints,
            cached=base.cached,
            stream_length=self.stream_length,
            latency_seconds=latency,
            degraded=degraded,
            trace=summary,
        )
        try:
            request.future.set_result(response)
        except InvalidStateError:
            # Cancelled between dispatch and completion: the result is
            # dropped and the admission slot was released by cancel().
            return
        self._release(request)
        self.metrics.record_request(
            latency,
            exits,
            self.stream_length,
            cache_hits=cache_hits,
            n_images=request.n_images,
            queue_seconds=queue_s,
            service_seconds=service_s,
        )
        if degraded:
            self.metrics.record_degraded()

    def _summarise_trace(
        self,
        request: _PendingRequest,
        queue_s: float,
        service_s: float,
        latency: float,
    ) -> TraceSummary:
        """Digest a finished request's trace and retire it to the buffer."""
        trace = request.trace
        forward = trace.find("forward_partial") or trace.find("forward")
        checkpoints: tuple[int, ...] = ()
        checkpoint_ms: tuple[float, ...] = ()
        if forward is not None and forward.duration_ms is not None:
            checkpoints = tuple(forward.annotations.get("checkpoints", ()))
            if checkpoints:
                # One fused pass evaluates every checkpoint as a stream
                # prefix; attribute its measured duration pro rata by
                # cycles (simulation cost is linear in stream cycles).
                total = forward.duration_ms
                last = checkpoints[-1]
                checkpoint_ms = tuple(
                    total * point / last for point in checkpoints
                )
        compute = trace.find("compute")
        summary = TraceSummary(
            trace_id=trace.trace_id,
            queue_ms=queue_s * 1e3,
            service_ms=service_s * 1e3,
            latency_ms=latency * 1e3,
            stages=trace.stage_ms(),
            checkpoints=checkpoints,
            checkpoint_ms=checkpoint_ms,
            replica=request.replica_name,
            worker=request.worker,
            batch_seq=request.batch_seq,
            batch_images=(
                compute.annotations.get("batch_images")
                if compute is not None
                else None
            ),
            retries=request.retries,
            degraded=bool(
                compute is not None and compute.annotations.get("degraded")
            ),
            cached_images=request.n_images - request.n_compute,
        )
        self.tracer.finish(trace)
        if self.events is not None:
            payload = trace.to_dict()
            payload["summary"] = summary.to_dict()
            self.events.emit("trace", **payload)
        return summary

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Service metrics plus kernel / workspace / tracing views.

        Everything :meth:`ServiceMetrics.snapshot` reports, extended
        with:

        * ``"kernels"`` -- per-kernel, per-tier invocation counters
          merged across every replica (``Backend.kernel_snapshot``), so
          the snapshot attributes work to the native or NumPy tier it
          actually ran on;
        * ``"workspaces"`` -- per-worker buffer-arena statistics;
        * ``"tracing"`` -- the tracer's sampling counters.

        This is the dict the Prometheus writer
        (:func:`repro.obs.prometheus_text`) renders.
        """
        snap = self.metrics.snapshot()
        snap["kernels"] = merge_kernel_snapshots(
            replica.kernel_snapshot() for replica in self._replicas
        )
        workspaces = []
        for i, replica in enumerate(self._replicas):
            stats = replica.workspace_stats()
            if stats is not None:
                workspaces.append({"worker": i, **stats})
        snap["workspaces"] = workspaces
        snap["tracing"] = self.tracer.stats()
        return snap

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting requests, finish the queue, join the threads."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            # Inside the lock: every request enqueued by submit() is now
            # guaranteed to precede the sentinel in the FIFO queue.
            self._pending.put(_SHUTDOWN)
        self._scheduler.join()
        for worker in self._workers:
            worker.join()
        # Release backend-held resources (e.g. the process pool of a
        # ``bit-exact-packed-mp`` replica) once no worker can touch them.
        for replica in self._replicas:
            replica.close()
        if self._log_mirror is not None:
            logging.getLogger("repro").removeHandler(self._log_mirror)
            self._log_mirror = None
        if self.events is not None:
            self.events.close()

    def __enter__(self) -> "ScInferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScInferenceService(backends={self.config.backend_names}, "
            f"workers={self.config.num_workers}, "
            f"stream_length={self.stream_length}, "
            f"checkpoints={self.checkpoints})"
        )
