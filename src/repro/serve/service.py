"""Micro-batching SC inference service with progressive early exit.

:class:`ScInferenceService` is the request path in front of the execution
backends (:mod:`repro.backends`): clients submit single images or small
batches and receive futures; a scheduler thread coalesces queued requests
into merged batches (dispatching as soon as ``max_batch_size`` images are
pending or the oldest request has waited ``max_wait_ms``); a pool of
worker threads -- each owning one backend replica, optionally sharded
across several registry backends -- executes the merged batches.  Per
image the service consults the LRU result cache first and, on progressive
backends, answers through the early-exit engine
(:mod:`repro.serve.progressive`) so confidently classified images stop
streaming at an early checkpoint.

Micro-batching is *transparent* for the bit-exact backends: every image's
streams are generated from draw tensors shared across the batch, so its
scores are bit-identical no matter which requests it was coalesced with
-- the property ``tests/test_serve.py`` pins down.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.backends import create_backend
from repro.backends.base import Backend
from repro.config import ServiceConfig
from repro.errors import ConfigurationError
from repro.nn.sc_layers import ScNetworkMapper
from repro.serve.cache import CachedResult, LruResultCache, image_digest
from repro.serve.metrics import ServiceMetrics
from repro.serve.progressive import progressive_forward, resolve_checkpoints

__all__ = ["InferenceResponse", "ScInferenceService"]

#: Queue sentinel that shuts down the scheduler / a worker.
_SHUTDOWN = object()


@dataclass(frozen=True)
class InferenceResponse:
    """Answer to one service request.

    Attributes:
        scores: ``(batch, n_classes)`` class scores at each image's exit
            checkpoint.
        predictions: ``(batch,)`` predicted classes.
        exit_checkpoints: ``(batch,)`` stream cycles at which each
            image's scores were evaluated (cached images report the
            checkpoint of the original evaluation; the ``cached`` mask
            marks that *this* request spent no cycles on them).
        cached: ``(batch,)`` boolean mask of images served from the cache.
        stream_length: full stream length ``N`` of the service.
        latency_seconds: submit-to-response wall time.
    """

    scores: np.ndarray
    predictions: np.ndarray
    exit_checkpoints: np.ndarray
    cached: np.ndarray
    stream_length: int
    latency_seconds: float


class _PendingRequest:
    """One submitted request: the uncached rows awaiting a worker."""

    __slots__ = (
        "future",
        "n_images",
        "compute_images",
        "compute_indices",
        "digests",
        "rows",
        "submitted_at",
    )

    def __init__(
        self,
        images: np.ndarray,
        digests: list[str],
        rows: list[CachedResult | None],
    ) -> None:
        self.future: Future = Future()
        self.n_images = images.shape[0]
        self.compute_indices = [i for i, row in enumerate(rows) if row is None]
        self.compute_images = images[self.compute_indices]
        self.digests = digests
        self.rows = rows
        self.submitted_at = time.perf_counter()

    @property
    def n_compute(self) -> int:
        return len(self.compute_indices)

    def response(self) -> InferenceResponse:
        """Assemble the response once every row is filled."""
        scores = np.stack([row.scores for row in self.rows])
        cached = np.ones(self.n_images, dtype=bool)
        cached[self.compute_indices] = False
        return InferenceResponse(
            scores=scores,
            predictions=np.asarray([row.prediction for row in self.rows]),
            exit_checkpoints=np.asarray(
                [row.exit_checkpoint for row in self.rows]
            ),
            cached=cached,
            stream_length=0,  # patched by the service (see _finish)
            latency_seconds=0.0,
        )


class ScInferenceService:
    """Micro-batching front door over the execution backends.

    Args:
        mapper: the SC network mapper every backend replica executes
            (trained network, stream length, weight precision, seed).
        config: service knobs (:class:`repro.config.ServiceConfig`);
            ``None`` uses the defaults.
        **backend_options: forwarded to every backend replica's
            constructor (e.g. ``position_chunk`` for the bit-exact
            backends).

    The service starts its scheduler and worker threads immediately and
    is used either as a context manager or with an explicit
    :meth:`close`.
    """

    def __init__(
        self,
        mapper: ScNetworkMapper,
        config: ServiceConfig | None = None,
        **backend_options: object,
    ) -> None:
        self.config = config or ServiceConfig()
        self.mapper = mapper
        names = self.config.backend_names
        # Worker i runs a replica of shard i % len(names): a homogeneous
        # pool by default, round-robin sharding across several registry
        # backends when the config names more than one.
        self._replicas = [
            create_backend(names[i % len(names)], mapper, **backend_options)
            for i in range(self.config.num_workers)
        ]
        self._shard_names = tuple(dict.fromkeys(names))
        self.stream_length = mapper.stream_length
        self.checkpoints = resolve_checkpoints(
            self.stream_length, self.config.checkpoint_fractions
        )
        self.cache = LruResultCache(self.config.cache_capacity)
        self.metrics = ServiceMetrics()
        self._pending: queue.Queue = queue.Queue()
        self._dispatch: queue.Queue = queue.Queue()
        self._closed = False
        self._close_lock = threading.Lock()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="sc-serve-scheduler", daemon=True
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(replica,),
                name=f"sc-serve-worker-{i}",
                daemon=True,
            )
            for i, replica in enumerate(self._replicas)
        ]
        self._scheduler.start()
        for worker in self._workers:
            worker.start()

    # -- request path ----------------------------------------------------------

    def submit(self, images: np.ndarray) -> Future:
        """Enqueue a request; the future resolves to an
        :class:`InferenceResponse`.

        Args:
            images: one ``(channels, height, width)`` image or a small
                ``(batch, channels, height, width)`` batch in ``[0, 1]``.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        arr = Backend._check_images(images)
        if arr.shape[0] == 0:
            raise ConfigurationError("a request needs at least one image")
        if self.cache.capacity:
            digests = [image_digest(image) for image in arr]
            rows: list[CachedResult | None] = [
                self._cache_lookup(digest) for digest in digests
            ]
        else:
            # Cache disabled: skip the per-image digests and lookups
            # entirely (they would cost a hash pass per image on the
            # latency hot path for guaranteed misses).
            digests = [""] * arr.shape[0]
            rows = [None] * arr.shape[0]
        request = _PendingRequest(arr, digests, rows)
        if request.n_compute == 0:
            self._finish(request, cache_hits=request.n_images, exits=())
            return request.future
        # Enqueueing is serialised with close(): the closed re-check and
        # the put happen under the lock close() uses to enqueue its
        # shutdown sentinel, so a request can never land behind the
        # sentinel drain and leave its future unresolved.
        with self._close_lock:
            if self._closed:
                raise ConfigurationError("service is closed")
            self._pending.put(request)
        return request.future

    def infer(
        self, images: np.ndarray, timeout: float | None = None
    ) -> InferenceResponse:
        """Synchronous convenience wrapper: submit and wait."""
        return self.submit(images).result(timeout=timeout)

    def _cache_lookup(self, digest: str) -> CachedResult | None:
        for name in self._shard_names:
            entry = self.cache.get(
                LruResultCache.key(digest, name, self.stream_length)
            )
            if entry is not None:
                return entry
        return None

    # -- scheduler -------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        max_batch = self.config.max_batch_size
        max_wait = self.config.max_wait_ms / 1e3
        shutdown = False
        while not shutdown:
            item = self._pending.get()
            if item is _SHUTDOWN:
                break
            group = [item]
            total = item.n_compute
            deadline = item.submitted_at + max_wait
            while total < max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining <= 0:
                        # Window elapsed: keep draining whatever is
                        # already queued (backlog wants *larger* batches,
                        # not more of them), but never block again.
                        nxt = self._pending.get_nowait()
                    else:
                        nxt = self._pending.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                group.append(nxt)
                total += nxt.n_compute
            self.metrics.record_batch(total)
            self._dispatch.put(group)
        # Graceful shutdown: everything still queued is dispatched before
        # the workers are released.
        while True:
            try:
                item = self._pending.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self.metrics.record_batch(item.n_compute)
            self._dispatch.put([item])
        for _ in self._workers:
            self._dispatch.put(_SHUTDOWN)

    # -- workers ---------------------------------------------------------------

    def _worker_loop(self, replica: Backend) -> None:
        while True:
            group = self._dispatch.get()
            if group is _SHUTDOWN:
                return
            try:
                self._process_group(group, replica)
            except Exception as exc:  # pragma: no cover - defensive
                for request in group:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _process_group(
        self, group: list[_PendingRequest], replica: Backend
    ) -> None:
        images = np.concatenate(
            [request.compute_images for request in group], axis=0
        )
        if self.config.early_exit and replica.progressive:
            result = progressive_forward(
                replica,
                images,
                checkpoints=self.checkpoints,
                margin=self.config.margin,
                stable_checkpoints=self.config.stable_checkpoints,
            )
            scores = result.scores
            predictions = result.predictions
            exits = result.exit_checkpoints
        else:
            scores = np.asarray(replica.forward(images))
            predictions = np.argmax(scores, axis=-1)
            exits = np.full(images.shape[0], self.stream_length)
        offset = 0
        for request in group:
            k = request.n_compute
            window = slice(offset, offset + k)
            self._fulfill(
                request,
                replica,
                scores[window],
                predictions[window],
                exits[window],
            )
            offset += k

    def _fulfill(
        self,
        request: _PendingRequest,
        replica: Backend,
        scores: np.ndarray,
        predictions: np.ndarray,
        exits: np.ndarray,
    ) -> None:
        for j, index in enumerate(request.compute_indices):
            row = CachedResult(
                scores=np.array(scores[j]),
                prediction=int(predictions[j]),
                exit_checkpoint=int(exits[j]),
            )
            request.rows[index] = row
            if self.cache.capacity:
                self.cache.put(
                    LruResultCache.key(
                        request.digests[index], replica.name, self.stream_length
                    ),
                    row,
                )
        self._finish(
            request,
            cache_hits=request.n_images - request.n_compute,
            exits=tuple(int(p) for p in exits),
        )

    def _finish(
        self, request: _PendingRequest, cache_hits: int, exits
    ) -> None:
        latency = time.perf_counter() - request.submitted_at
        base = request.response()
        response = InferenceResponse(
            scores=base.scores,
            predictions=base.predictions,
            exit_checkpoints=base.exit_checkpoints,
            cached=base.cached,
            stream_length=self.stream_length,
            latency_seconds=latency,
        )
        self.metrics.record_request(
            latency,
            exits,
            self.stream_length,
            cache_hits=cache_hits,
            n_images=request.n_images,
        )
        request.future.set_result(response)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting requests, finish the queue, join the threads."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            # Inside the lock: every request enqueued by submit() is now
            # guaranteed to precede the sentinel in the FIFO queue.
            self._pending.put(_SHUTDOWN)
        self._scheduler.join()
        for worker in self._workers:
            worker.join()
        # Release backend-held resources (e.g. the process pool of a
        # ``bit-exact-packed-mp`` replica) once no worker can touch them.
        for replica in self._replicas:
            replica.close()

    def __enter__(self) -> "ScInferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScInferenceService(backends={self.config.backend_names}, "
            f"workers={self.config.num_workers}, "
            f"stream_length={self.stream_length}, "
            f"checkpoints={self.checkpoints})"
        )
