"""Micro-batching SC inference service with progressive early exit.

:class:`ScInferenceService` is the request path in front of the execution
backends (:mod:`repro.backends`): clients submit single images or small
batches and receive futures; a scheduler thread coalesces queued requests
into merged batches (dispatching as soon as ``max_batch_size`` images are
pending or the oldest request has waited ``max_wait_ms``); a pool of
worker threads -- each owning one backend replica, optionally sharded
across several registry backends -- executes the merged batches.  Per
image the service consults the LRU result cache first and, on progressive
backends, answers through the early-exit engine
(:mod:`repro.serve.progressive`) so confidently classified images stop
streaming at an early checkpoint.

Requests carry typed per-request options
(:class:`~repro.config.PredictOptions`): a reduced stream length or an
explicit checkpoint schedule is read from stream prefixes, ``early_exit``
overrides the service default per request, and ``deadline_ms`` caps the
exit checkpoint by the request's remaining latency budget at evaluation
time (an expired deadline answers from the *first* checkpoint).  Options
are validated at :meth:`~ScInferenceService.submit` -- malformed images
or schedules raise in the caller, never as a worker-side future error --
and the result-cache key incorporates the effective options, so requests
that differ only in schedule never share an entry.

Micro-batching is *transparent* for the bit-exact backends: every image's
streams are generated from draw tensors shared across the batch, so its
scores are bit-identical no matter which requests it was coalesced with
-- the property ``tests/test_serve.py`` pins down.  Merged batches may
mix requests with different effective options; the worker buckets them by
evaluation plan, which preserves that transparency per bucket.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.backends import backend_class, create_backend
from repro.backends.base import Backend
from repro.backends.parallel import ParallelBackend
from repro.config import PredictOptions, ResolvedPredictOptions, ServiceConfig
from repro.errors import ConfigurationError
from repro.nn.sc_layers import ScNetworkMapper
from repro.serve.cache import CachedResult, LruResultCache, image_digest
from repro.serve.metrics import ServiceMetrics
from repro.serve.progressive import early_exit_from_scores, resolve_checkpoints

__all__ = ["InferenceResponse", "ScInferenceService"]

#: Queue sentinel that shuts down the scheduler / a worker.
_SHUTDOWN = object()


@dataclass(frozen=True)
class InferenceResponse:
    """Answer to one service request.

    Attributes:
        scores: ``(batch, n_classes)`` class scores at each image's exit
            checkpoint.
        predictions: ``(batch,)`` predicted classes.
        exit_checkpoints: ``(batch,)`` stream cycles at which each
            image's scores were evaluated (cached images report the
            checkpoint of the original evaluation; the ``cached`` mask
            marks that *this* request spent no cycles on them).
        cached: ``(batch,)`` boolean mask of images served from the cache.
        stream_length: full stream length ``N`` of the service.
        latency_seconds: submit-to-response wall time.
    """

    scores: np.ndarray
    predictions: np.ndarray
    exit_checkpoints: np.ndarray
    cached: np.ndarray
    stream_length: int
    latency_seconds: float


class _PendingRequest:
    """One submitted request: the uncached rows awaiting a worker."""

    __slots__ = (
        "future",
        "n_images",
        "compute_images",
        "compute_indices",
        "digests",
        "rows",
        "submitted_at",
        "resolved",
        "deadline_at",
    )

    def __init__(
        self,
        images: np.ndarray,
        digests: list[str],
        rows: list[CachedResult | None],
        resolved: ResolvedPredictOptions,
    ) -> None:
        self.future: Future = Future()
        self.n_images = images.shape[0]
        self.compute_indices = [i for i, row in enumerate(rows) if row is None]
        self.compute_images = images[self.compute_indices]
        self.digests = digests
        self.rows = rows
        self.submitted_at = time.perf_counter()
        self.resolved = resolved
        self.deadline_at = (
            None
            if resolved.deadline_ms is None
            else self.submitted_at + resolved.deadline_ms / 1e3
        )

    @property
    def n_compute(self) -> int:
        return len(self.compute_indices)

    def response(self) -> InferenceResponse:
        """Assemble the response once every row is filled."""
        scores = np.stack([row.scores for row in self.rows])
        cached = np.ones(self.n_images, dtype=bool)
        cached[self.compute_indices] = False
        return InferenceResponse(
            scores=scores,
            predictions=np.asarray([row.prediction for row in self.rows]),
            exit_checkpoints=np.asarray(
                [row.exit_checkpoint for row in self.rows]
            ),
            cached=cached,
            stream_length=0,  # patched by the service (see _finish)
            latency_seconds=0.0,
        )


class ScInferenceService:
    """Micro-batching front door over the execution backends.

    Args:
        mapper: the SC network mapper every backend replica executes
            (trained network, stream length, weight precision, seed).
        config: service knobs (:class:`repro.config.ServiceConfig`);
            ``None`` uses the defaults.
        artifact_path: optional model-artifact directory; forwarded to
            process-sharded replicas (``bit-exact-packed-mp``) so their
            worker processes rehydrate mappers from the shared file
            instead of unpickling per-replica payloads (sessions opened
            via :meth:`repro.api.Session.from_artifact` wire this up).
        **backend_options: forwarded to every backend replica's
            constructor (e.g. ``position_chunk`` for the bit-exact
            backends).

    The service starts its scheduler and worker threads immediately and
    is used either as a context manager or with an explicit
    :meth:`close`.
    """

    def __init__(
        self,
        mapper: ScNetworkMapper,
        config: ServiceConfig | None = None,
        artifact_path: str | Path | None = None,
        **backend_options: object,
    ) -> None:
        self.config = config or ServiceConfig()
        self.mapper = mapper
        names = self.config.backend_names
        # Worker i runs a replica of shard i % len(names): a homogeneous
        # pool by default, round-robin sharding across several registry
        # backends when the config names more than one.
        self._replicas = []
        for i in range(self.config.num_workers):
            name = names[i % len(names)]
            options = dict(backend_options)
            if artifact_path is not None and issubclass(
                backend_class(name), ParallelBackend
            ):
                options.setdefault("artifact_path", str(artifact_path))
            self._replicas.append(create_backend(name, mapper, **options))
        self._shard_names = tuple(dict.fromkeys(names))
        # Per-request reduced stream lengths / explicit schedules need
        # stream-prefix evaluation on every shard; checked at submit().
        # Read off the built replicas, not the registry classes --
        # wrappers like ParallelBackend override the flag per instance
        # to mirror their inner backend.
        self._all_progressive = all(
            getattr(replica, "progressive", False)
            for replica in self._replicas
        )
        self.stream_length = mapper.stream_length
        self.checkpoints = resolve_checkpoints(
            self.stream_length, self.config.checkpoint_fractions
        )
        #: Evaluation plan of an option-less request, resolved once.
        self._default_resolved = PredictOptions().resolve(
            self.stream_length,
            self.config.checkpoint_fractions,
            self.config.early_exit,
        )
        #: EWMA of observed streaming throughput (stream cycles per
        #: second per request batch), the deadline policy's clock.  None
        #: until the first computed batch lands.
        self._cycles_per_second: float | None = None
        self.cache = LruResultCache(self.config.cache_capacity)
        self.metrics = ServiceMetrics()
        self._pending: queue.Queue = queue.Queue()
        self._dispatch: queue.Queue = queue.Queue()
        self._closed = False
        self._close_lock = threading.Lock()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="sc-serve-scheduler", daemon=True
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(replica,),
                name=f"sc-serve-worker-{i}",
                daemon=True,
            )
            for i, replica in enumerate(self._replicas)
        ]
        self._scheduler.start()
        for worker in self._workers:
            worker.start()

    # -- request path ----------------------------------------------------------

    def submit(
        self, images: np.ndarray, options: PredictOptions | None = None
    ) -> Future:
        """Enqueue a request; the future resolves to an
        :class:`InferenceResponse`.

        Validation is *fail-fast*: malformed images
        (:class:`~repro.errors.ShapeError` /
        :class:`~repro.errors.EncodingError`) and invalid or unsupported
        options (:class:`~repro.errors.ConfigurationError`) raise here,
        in the caller, never as a worker-side future error.

        Args:
            images: one ``(channels, height, width)`` image or a small
                ``(batch, channels, height, width)`` batch in ``[0, 1]``.
            options: per-request inference options
                (:class:`~repro.config.PredictOptions`); ``None`` uses
                the service defaults.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        arr = Backend._check_images(images)
        if arr.shape[0] == 0:
            raise ConfigurationError("a request needs at least one image")
        resolved = self._resolve_options(options)
        if self.cache.capacity:
            digests = [image_digest(image) for image in arr]
            rows: list[CachedResult | None] = [
                self._cache_lookup(digest, resolved.cache_token)
                for digest in digests
            ]
        else:
            # Cache disabled: skip the per-image digests and lookups
            # entirely (they would cost a hash pass per image on the
            # latency hot path for guaranteed misses).
            digests = [""] * arr.shape[0]
            rows = [None] * arr.shape[0]
        request = _PendingRequest(arr, digests, rows, resolved)
        if request.n_compute == 0:
            self._finish(request, cache_hits=request.n_images, exits=())
            return request.future
        # Enqueueing is serialised with close(): the closed re-check and
        # the put happen under the lock close() uses to enqueue its
        # shutdown sentinel, so a request can never land behind the
        # sentinel drain and leave its future unresolved.
        with self._close_lock:
            if self._closed:
                raise ConfigurationError("service is closed")
            self._pending.put(request)
        return request.future

    def infer(
        self,
        images: np.ndarray,
        options: PredictOptions | None = None,
        timeout: float | None = None,
    ) -> InferenceResponse:
        """Synchronous convenience wrapper: submit and wait."""
        return self.submit(images, options).result(timeout=timeout)

    def _resolve_options(
        self, options: PredictOptions | None
    ) -> ResolvedPredictOptions:
        """Resolve request options against this service's configuration.

        Raises in the submitting caller when the request demands
        stream-prefix evaluation (reduced stream length / explicit
        checkpoints) but a configured shard backend cannot provide it.
        """
        if options is None:
            return self._default_resolved
        resolved = options.resolve(
            self.stream_length,
            self.config.checkpoint_fractions,
            self.config.early_exit,
        )
        if resolved.explicit_schedule and not self._all_progressive:
            raise ConfigurationError(
                "per-request stream lengths / checkpoint schedules need "
                "progressive backends, but this service is configured with "
                f"{self._shard_names} (pick backends whose 'progressive' "
                "capability flag is set)"
            )
        return resolved

    def _cache_lookup(
        self, digest: str, token: tuple
    ) -> CachedResult | None:
        for name in self._shard_names:
            entry = self.cache.get(
                LruResultCache.key(digest, name, self.stream_length, token)
            )
            if entry is not None:
                return entry
        return None

    # -- scheduler -------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        max_batch = self.config.max_batch_size
        max_wait = self.config.max_wait_ms / 1e3
        shutdown = False
        while not shutdown:
            item = self._pending.get()
            if item is _SHUTDOWN:
                break
            group = [item]
            total = item.n_compute
            deadline = item.submitted_at + max_wait
            while total < max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining <= 0:
                        # Window elapsed: keep draining whatever is
                        # already queued (backlog wants *larger* batches,
                        # not more of them), but never block again.
                        nxt = self._pending.get_nowait()
                    else:
                        nxt = self._pending.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                group.append(nxt)
                total += nxt.n_compute
            self.metrics.record_batch(total)
            self._dispatch.put(group)
        # Graceful shutdown: everything still queued is dispatched before
        # the workers are released.
        while True:
            try:
                item = self._pending.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self.metrics.record_batch(item.n_compute)
            self._dispatch.put([item])
        for _ in self._workers:
            self._dispatch.put(_SHUTDOWN)

    # -- workers ---------------------------------------------------------------

    def _worker_loop(self, replica: Backend) -> None:
        while True:
            group = self._dispatch.get()
            if group is _SHUTDOWN:
                return
            try:
                self._process_group(group, replica)
            except Exception as exc:  # pragma: no cover - defensive
                for request in group:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _process_group(
        self, group: list[_PendingRequest], replica: Backend
    ) -> None:
        # A merged batch may mix requests with different effective
        # options; bucketing by evaluation plan keeps each sub-batch on
        # one schedule (micro-batching stays transparent per bucket).
        buckets: dict[tuple, list[_PendingRequest]] = {}
        for request in group:
            buckets.setdefault(request.resolved.cache_token, []).append(request)
        for bucket in buckets.values():
            self._process_bucket(bucket, replica)

    def _process_bucket(
        self, bucket: list[_PendingRequest], replica: Backend
    ) -> None:
        resolved = bucket[0].resolved
        points = resolved.checkpoints
        images = np.concatenate(
            [request.compute_images for request in bucket], axis=0
        )
        has_deadline = any(r.deadline_at is not None for r in bucket)
        # Deadline-budgeted requests force the checkpoint path even with
        # early exit off: the cap needs per-checkpoint scores to fall
        # back on.  Non-progressive replicas degrade to a full forward
        # pass (explicit schedules were already rejected at submit()).
        use_checkpoints = replica.progressive and (
            resolved.early_exit or resolved.explicit_schedule or has_deadline
        )
        started = time.perf_counter()
        if use_checkpoints:
            checkpoint_scores = np.asarray(
                replica.forward_partial(images, points)
            )
            if resolved.early_exit:
                policy = early_exit_from_scores(
                    checkpoint_scores,
                    points,
                    margin=self.config.margin,
                    stable_checkpoints=self.config.stable_checkpoints,
                )
                exit_index = np.searchsorted(
                    np.asarray(points), policy.exit_checkpoints
                )
            else:
                exit_index = np.full(images.shape[0], len(points) - 1)
        else:
            scores_full = np.asarray(replica.forward(images))
            checkpoint_scores = scores_full[None]
            points = (resolved.stream_length,)
            exit_index = np.zeros(images.shape[0], dtype=int)
        # The work done is always a full-stream simulation (progressive
        # backends read checkpoints as prefixes of the complete streams),
        # so the rate is priced in full-N cycles regardless of the
        # bucket's schedule.
        self._observe_rate(self.stream_length, time.perf_counter() - started)
        now = time.perf_counter()
        cycles = np.asarray(points)
        offset = 0
        for request in bucket:
            k = request.n_compute
            index = exit_index[offset : offset + k]
            cap = self._deadline_cap(request, points, now)
            if cap is not None:
                index = np.minimum(index, cap)
            rows = np.arange(offset, offset + k)
            scores = checkpoint_scores[index, rows]
            self._fulfill(
                request,
                replica,
                scores,
                np.argmax(scores, axis=-1),
                cycles[index],
            )
            offset += k

    def _observe_rate(self, full_cycles: int, duration: float) -> None:
        """Fold one batch evaluation into the streaming-rate estimate.

        The deadline policy's clock: "an evaluation to ``C`` cycles
        recently took ``T`` seconds" becomes ``C / T`` cycles per second,
        smoothed exponentially.  Racy float updates between worker
        threads are benign (any recent observation is a fine estimate).
        """
        if duration <= 0:
            return
        observed = full_cycles / duration
        current = self._cycles_per_second
        self._cycles_per_second = (
            observed if current is None else 0.5 * current + 0.5 * observed
        )

    def _deadline_cap(
        self,
        request: _PendingRequest,
        points: tuple[int, ...],
        now: float,
    ) -> int | None:
        """Largest checkpoint index the request's remaining budget affords.

        An expired deadline caps at the *first* checkpoint (the cheapest
        answer the schedule offers); with no throughput estimate yet the
        budget cannot be priced and the request runs uncapped.
        """
        if request.deadline_at is None:
            return None
        remaining = request.deadline_at - now
        if remaining <= 0:
            return 0
        rate = self._cycles_per_second
        if rate is None:
            return None
        budget_cycles = remaining * rate
        cap = int(np.searchsorted(points, budget_cycles, side="right")) - 1
        return max(0, cap)

    def _fulfill(
        self,
        request: _PendingRequest,
        replica: Backend,
        scores: np.ndarray,
        predictions: np.ndarray,
        exits: np.ndarray,
    ) -> None:
        for j, index in enumerate(request.compute_indices):
            row = CachedResult(
                scores=np.array(scores[j]),
                prediction=int(predictions[j]),
                exit_checkpoint=int(exits[j]),
            )
            request.rows[index] = row
            # Deadline-truncated results are wall-clock artefacts: they
            # must never satisfy a later request (resolved.cacheable).
            if self.cache.capacity and request.resolved.cacheable:
                self.cache.put(
                    LruResultCache.key(
                        request.digests[index],
                        replica.name,
                        self.stream_length,
                        request.resolved.cache_token,
                    ),
                    row,
                )
        self._finish(
            request,
            cache_hits=request.n_images - request.n_compute,
            exits=tuple(int(p) for p in exits),
        )

    def _finish(
        self, request: _PendingRequest, cache_hits: int, exits
    ) -> None:
        latency = time.perf_counter() - request.submitted_at
        base = request.response()
        response = InferenceResponse(
            scores=base.scores,
            predictions=base.predictions,
            exit_checkpoints=base.exit_checkpoints,
            cached=base.cached,
            stream_length=self.stream_length,
            latency_seconds=latency,
        )
        self.metrics.record_request(
            latency,
            exits,
            self.stream_length,
            cache_hits=cache_hits,
            n_images=request.n_images,
        )
        request.future.set_result(response)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting requests, finish the queue, join the threads."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            # Inside the lock: every request enqueued by submit() is now
            # guaranteed to precede the sentinel in the FIFO queue.
            self._pending.put(_SHUTDOWN)
        self._scheduler.join()
        for worker in self._workers:
            worker.join()
        # Release backend-held resources (e.g. the process pool of a
        # ``bit-exact-packed-mp`` replica) once no worker can touch them.
        for replica in self._replicas:
            replica.close()

    def __enter__(self) -> "ScInferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScInferenceService(backends={self.config.backend_names}, "
            f"workers={self.config.num_workers}, "
            f"stream_length={self.stream_length}, "
            f"checkpoints={self.checkpoints})"
        )
