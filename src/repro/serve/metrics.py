"""Service-level metrics: latency percentiles, throughput, exit savings.

The serving story needs numbers, not anecdotes: the micro-batching
scheduler trades a bounded queueing delay for larger (faster-per-image)
batches, the progressive engine trades checkpoints for stream cycles, and
the cache trades memory for recomputation.  :class:`ServiceMetrics`
accumulates the per-request observations that quantify all three --
``benchmarks/bench_serve.py`` sweeps offered load and reports these
snapshots as the latency/throughput curves in ``BENCH_serve.json``.

The request tracing of :mod:`repro.obs` splits every request's latency
into *queue time* (submit to first execution) and *service time* (first
execution to completion); :meth:`ServiceMetrics.record_request` accepts
the split and :meth:`snapshot` reports each series as percentiles plus a
fixed-bound histogram in the shape the Prometheus exposition writer
(:func:`repro.obs.prometheus_text`) renders directly.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

__all__ = ["ServiceMetrics"]

#: Upper bounds (milliseconds) of the queue-time / service-time histogram
#: buckets; one overflow bucket (``+Inf``) follows the last bound.
HISTOGRAM_BOUNDS_MS: tuple[float, ...] = (
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    2000.0,
    5000.0,
)


class _Histogram:
    """Fixed-bound histogram accumulator (caller holds the metrics lock)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = HISTOGRAM_BOUNDS_MS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = int(np.searchsorted(self.bounds, value, side="left"))
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> dict:
        return {
            "le": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def _series_stats(values: np.ndarray) -> dict | None:
    """Percentile/mean summary of a window series (computed lock-free)."""
    if not values.size:
        return None
    p50, p95, p99 = np.percentile(values, (50, 95, 99))
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(values.mean()),
    }


class ServiceMetrics:
    """Thread-safe accumulator of serving observations.

    One instance lives inside each :class:`~repro.serve.ScInferenceService`;
    tests and benchmarks read :meth:`snapshot`.

    Totals (requests, images, cycles, cache hits) are exact running
    counters; the percentile / mean statistics are computed over a
    sliding window of the most recent observations so that memory stays
    bounded in a long-running service.

    Reads (:meth:`snapshot`, :meth:`recent_p99_ms`) copy the window
    series while holding the lock and do the percentile math *outside*
    it, so a metrics read never stalls the request hot path behind an
    ``np.percentile`` over the full 65536-entry window.

    Args:
        window: per-series observations retained for the percentile and
            mean statistics.
    """

    #: Default sliding-window length for latency / batch / exit series.
    DEFAULT_WINDOW = 65536

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self._batch_sizes: deque[int] = deque(maxlen=window)
        self._exit_checkpoints: deque[int] = deque(maxlen=window)
        self._queue_ms: deque[float] = deque(maxlen=window)
        self._service_ms: deque[float] = deque(maxlen=window)
        self._queue_hist = _Histogram()
        self._service_hist = _Histogram()
        self._requests = 0
        self._batches = 0
        self._full_cycles = 0
        self._spent_cycles = 0
        self._images = 0
        self._cache_hits = 0
        self._started = time.perf_counter()
        self._first_completion: float | None = None
        self._last_completion: float | None = None
        # Fault-tolerance counters (exact running totals).
        self._sheds: dict[str, int] = {}
        self._degraded_requests = 0
        self._retries = 0
        self._restarts = 0
        self._failed_requests = 0
        self._cancelled_requests = 0

    def record_batch(self, n_images: int) -> None:
        """One merged batch dispatched to a worker."""
        with self._lock:
            self._batches += 1
            self._batch_sizes.append(int(n_images))

    def record_request(
        self,
        latency_seconds: float,
        exit_checkpoints,
        stream_length: int,
        cache_hits: int = 0,
        n_images: int | None = None,
        queue_seconds: float | None = None,
        service_seconds: float | None = None,
    ) -> None:
        """One completed request.

        Args:
            latency_seconds: submit-to-response wall time.
            exit_checkpoints: stream cycles consumed per *computed* image
                (cache hits consume none and are excluded).
            stream_length: the full stream length ``N``.
            cache_hits: images served from the cache.
            n_images: total images in the request (computed + cached);
                defaults to the number of computed images plus the hits.
            queue_seconds: time spent queued before the first execution
                attempt (``None`` when the caller did not split it).
            service_seconds: time from first execution to completion.
        """
        exits = [int(p) for p in np.atleast_1d(np.asarray(exit_checkpoints))]
        now = time.perf_counter()
        with self._lock:
            self._requests += 1
            self._latencies.append(float(latency_seconds))
            if queue_seconds is not None:
                queue_ms = float(queue_seconds) * 1e3
                self._queue_ms.append(queue_ms)
                self._queue_hist.observe(queue_ms)
            if service_seconds is not None:
                service_ms = float(service_seconds) * 1e3
                self._service_ms.append(service_ms)
                self._service_hist.observe(service_ms)
            self._exit_checkpoints.extend(exits)
            self._full_cycles += stream_length * len(exits)
            self._spent_cycles += sum(exits)
            self._cache_hits += int(cache_hits)
            self._images += (
                int(n_images) if n_images is not None else len(exits) + cache_hits
            )
            if self._first_completion is None:
                self._first_completion = now
            self._last_completion = now

    def record_shed(self, reason: str) -> None:
        """One request rejected by admission control (never queued)."""
        with self._lock:
            self._sheds[reason] = self._sheds.get(reason, 0) + 1

    def record_degraded(self, n_requests: int = 1) -> None:
        """Requests answered at an overload-capped checkpoint schedule."""
        with self._lock:
            self._degraded_requests += int(n_requests)

    def record_retry(self) -> None:
        """One merged-batch bucket re-executed after a replica failure."""
        with self._lock:
            self._retries += 1

    def record_restart(self) -> None:
        """One backend replica rebuilt by the supervision path."""
        with self._lock:
            self._restarts += 1

    def record_failure(self, n_requests: int = 1) -> None:
        """Requests whose futures resolved with a typed InferenceError."""
        with self._lock:
            self._failed_requests += int(n_requests)

    def record_cancelled(self) -> None:
        """One request cancelled (e.g. timeout abandonment) before compute."""
        with self._lock:
            self._cancelled_requests += 1

    def recent_p99_ms(self) -> float | None:
        """p99 latency over the sliding window, in milliseconds.

        The overload controller's latency trigger; ``None`` until the
        first request completes.  The window is copied under the lock
        and the percentile computed outside it -- the overload check
        runs on the scheduler thread, which must never wait behind a
        window-sized ``np.percentile`` while holding up dispatch.
        """
        with self._lock:
            if not self._latencies:
                return None
            latencies = np.asarray(self._latencies)
        return float(np.percentile(latencies, 99) * 1e3)

    def snapshot(self) -> dict:
        """Current aggregate view (all quantities are cheap to recompute).

        Returns a dict with request/image counts, latency percentiles
        (``p50/p95/p99``, milliseconds), the queue-time / service-time
        split (percentiles plus fixed-bound histograms), throughput
        (images per second over the completion window), micro-batch
        statistics, cache hit rate, and the progressive-exit summary
        (mean exit checkpoint and the mean stream-cycle reduction
        ``N * images / cycles spent``).  Counts and the cycle reduction
        are exact totals; percentile/mean statistics cover the most
        recent ``window`` observations.
        """
        with self._lock:
            latencies = np.asarray(self._latencies)
            batches = np.asarray(self._batch_sizes)
            exits = np.asarray(self._exit_checkpoints)
            queue_ms = np.asarray(self._queue_ms)
            service_ms = np.asarray(self._service_ms)
            queue_hist = self._queue_hist.to_dict()
            service_hist = self._service_hist.to_dict()
            counts = {
                "requests": self._requests,
                "images": self._images,
                "cache_hits": self._cache_hits,
                "batches": self._batches,
                "full_cycles": self._full_cycles,
                "spent_cycles": self._spent_cycles,
            }
            faults = {
                "shed": {**self._sheds, "total": sum(self._sheds.values())},
                "degraded_requests": self._degraded_requests,
                "retries": self._retries,
                "restarts": self._restarts,
                "failed_requests": self._failed_requests,
                "cancelled_requests": self._cancelled_requests,
            }
            first = self._first_completion
            last = self._last_completion
            started = self._started
        # Percentiles over window-sized copies, outside the lock.
        latency = _series_stats(latencies * 1e3 if latencies.size else latencies)
        queue_stats = _series_stats(queue_ms)
        service_stats = _series_stats(service_ms)
        snapshot = {
            "requests": counts["requests"],
            "images": counts["images"],
            "cache_hits": counts["cache_hits"],
            "cache_hit_rate": (
                counts["cache_hits"] / counts["images"]
                if counts["images"]
                else 0.0
            ),
            "batches": counts["batches"],
            "mean_batch_size": float(batches.mean()) if batches.size else 0.0,
            "max_batch_size": int(batches.max()) if batches.size else 0,
            "latency_ms": latency,
            "queue_time_ms": (
                {**queue_stats, "histogram": queue_hist}
                if queue_stats is not None
                else None
            ),
            "service_time_ms": (
                {**service_stats, "histogram": service_hist}
                if service_stats is not None
                else None
            ),
            "mean_exit_checkpoint": (
                float(exits.mean()) if exits.size else None
            ),
            "cycle_reduction": (
                counts["full_cycles"] / counts["spent_cycles"]
                if counts["spent_cycles"]
                else None
            ),
            "faults": faults,
        }
        if first is not None and last is not None:
            window = last - first
            # A single completion has no window; fall back to the
            # service lifetime so throughput stays finite.
            if window <= 0:
                window = last - started
            snapshot["throughput_images_per_sec"] = (
                counts["images"] / window if window > 0 else None
            )
        else:
            snapshot["throughput_images_per_sec"] = None
        return snapshot
