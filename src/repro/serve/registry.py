"""Hot-reloadable multi-model registry: many artifacts behind one process.

The serving catalog between the versioned on-disk artifacts
(:class:`repro.api.ScModel`) and the network front end
(:mod:`repro.serve.http`): a :class:`ModelRegistry` maps model *names* to
artifact directories and lazily stands up one replica pool per model --
an in-process :class:`~repro.serve.ScInferenceService` by default, or a
multi-process :class:`~repro.serve.FleetRouter` when a
:class:`~repro.config.FleetConfig` is supplied.

Two properties carry the operational story:

* **atomic hot-reload** -- :meth:`ModelRegistry.scan` (or a direct
  :meth:`ModelRegistry.reload`) detects a changed artifact by its
  manifest digest, builds a *fresh* pool from the new weights, swaps it
  in under the registry lock, and retires the old pool in the
  background.  New requests route to the new pool the instant the swap
  lands; requests already submitted keep their futures on the old pool,
  whose graceful ``close()`` drains them to completion -- zero dropped
  in-flight requests, asserted under load in ``tests/test_http.py``.
* **typed lookups** -- an unknown model name raises
  :class:`~repro.errors.ModelNotFoundError` (HTTP 404 on the wire), so
  catalog misses never masquerade as request validation errors.

Registries are cheap to hold open: pools are built on first use, and
:func:`describe_artifact` reads only ``manifest.json``, so listing a
catalog (``python -m repro models``, ``GET /v1/models``) never loads
weights or spawns workers.
"""

from __future__ import annotations

import hashlib
import logging
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import FleetConfig, PredictOptions, ServiceConfig
from repro.errors import ConfigurationError, FleetError, ModelNotFoundError

__all__ = ["ModelInfo", "ModelRegistry", "describe_artifact"]

logger = logging.getLogger("repro.serve.registry")

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class ModelInfo:
    """Catalog metadata of one registered artifact (manifest only).

    Attributes:
        name: registry name requests address the model by.
        path: artifact directory.
        format_version: artifact format as ``"major.minor"``.
        weight_bits: binary weight precision recorded in the manifest.
        stream_length: full stochastic stream length ``N``.
        seed: SNG seed of the artifact.
        sha256: hex digest of the manifest file -- the hot-reload change
            detector (the manifest embeds the payload digests, so any
            weight change changes this digest too).
        arch: ``metadata["arch"]`` when the artifact recorded one.
        n_parameters: parameter tensors in the artifact.
    """

    name: str
    path: str
    format_version: str
    weight_bits: int
    stream_length: int
    seed: int
    sha256: str
    arch: str | None
    n_parameters: int

    def listing(self) -> dict:
        """The JSON shape served by ``GET /v1/models`` and the CLI."""
        return {
            "name": self.name,
            "path": self.path,
            "format_version": self.format_version,
            "weight_bits": self.weight_bits,
            "stream_length": self.stream_length,
            "seed": self.seed,
            "sha256": self.sha256,
            "arch": self.arch,
            "n_parameters": self.n_parameters,
        }


def describe_artifact(path: str | Path, name: str | None = None) -> ModelInfo:
    """Catalog metadata of an artifact directory without loading weights.

    Version-checks the manifest via
    :meth:`repro.api.ScModel.read_manifest` and hashes the manifest file
    itself -- the digest the registry compares on :meth:`~ModelRegistry.scan`
    to decide whether an artifact changed on disk.

    Raises:
        ConfigurationError: when ``path`` holds no readable artifact.
    """
    from repro.api import ScModel

    path = Path(path)
    manifest = ScModel.read_manifest(path)
    digest = hashlib.sha256((path / _MANIFEST).read_bytes()).hexdigest()
    version = manifest["format_version"]
    metadata = manifest.get("metadata") or {}
    network = manifest.get("network") or {}
    return ModelInfo(
        name=name or path.name,
        path=str(path),
        format_version=f"{version[0]}.{version[1]}",
        weight_bits=int(manifest["weight_bits"]),
        stream_length=int(manifest["stream_length"]),
        seed=int(manifest["seed"]),
        sha256=digest,
        arch=metadata.get("arch"),
        n_parameters=int(network.get("n_parameters", 0)),
    )


class _ModelPool:
    """One generation of one model's replica pool (service or fleet)."""

    def __init__(
        self,
        info: ModelInfo,
        service_config: ServiceConfig,
        fleet_config: FleetConfig | None,
        generation: int,
    ) -> None:
        self.info = info
        self.generation = generation
        self.stream_length = info.stream_length
        if fleet_config is not None:
            from repro.serve.fleet import FleetRouter

            self.kind = "fleet"
            self.service_config = fleet_config.worker_service
            self._session = None
            self._backend = self._router = FleetRouter(info.path, fleet_config)
        else:
            from repro.api import Session

            self.kind = "service"
            self.service_config = service_config
            self._router = None
            self._session = Session.from_artifact(
                info.path, backend=service_config.backend_names[0]
            )
            self._backend = self._session.serve(service_config)

    def submit(self, images: np.ndarray, options: PredictOptions | None = None):
        """Enqueue a request on this generation's pool (a ``Future``)."""
        return self._backend.submit(images, options)

    def cancel(self, future) -> bool:
        """Best-effort cancellation of a still-queued request."""
        cancel = getattr(self._backend, "cancel", None)
        if cancel is not None:
            return bool(cancel(future))
        return bool(future.cancel())

    def snapshot(self) -> dict:
        return self._backend.snapshot()

    def close(self) -> None:
        """Graceful drain: finish in-flight requests, then release."""
        self._backend.close()
        if self._session is not None:
            self._session.close()


class _Entry:
    """One registered name: catalog info plus the live pool (if built)."""

    __slots__ = ("info", "pool", "lock")

    def __init__(self, info: ModelInfo) -> None:
        self.info = info
        self.pool: _ModelPool | None = None
        self.lock = threading.Lock()  # serialises pool build / reload


class ModelRegistry:
    """Many named model artifacts behind one process, hot-reloadable.

    Args:
        models: explicit ``{name: artifact_path}`` catalog entries.
        root: directory whose immediate subdirectories holding a
            ``manifest.json`` are auto-registered under their directory
            names (and re-scanned by :meth:`scan`).
        service: per-model :class:`~repro.config.ServiceConfig` for the
            in-process pools (``None`` = service defaults).
        fleet: when set, every model is served by a multi-process
            :class:`~repro.serve.FleetRouter` built from this
            :class:`~repro.config.FleetConfig` instead of an in-process
            service.

    Raises:
        ConfigurationError: when an explicit entry is not a readable
            artifact, or the catalog would be empty-by-construction
            (neither ``models`` nor ``root`` given).
    """

    def __init__(
        self,
        models: dict[str, str | Path] | None = None,
        root: str | Path | None = None,
        service: ServiceConfig | None = None,
        fleet: FleetConfig | None = None,
    ) -> None:
        if not models and root is None:
            raise ConfigurationError(
                "a registry needs explicit models={...} entries or a root "
                "directory to scan"
            )
        self._service_config = service or ServiceConfig()
        self._fleet_config = fleet
        self._root = Path(root) if root is not None else None
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        self._generation = 0
        self._retiring: list[threading.Thread] = []
        self._closed = False
        for name, path in (models or {}).items():
            self.add(name, path)
        if self._root is not None:
            self.scan()

    # -- catalog ---------------------------------------------------------------

    def add(self, name: str, path: str | Path) -> ModelInfo:
        """Register (or re-point) a model name at an artifact directory."""
        if not name or "/" in name:
            raise ConfigurationError(
                f"model names must be non-empty and slash-free, got {name!r}"
            )
        info = describe_artifact(path, name=name)
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
            if entry is None:
                self._entries[name] = _Entry(info)
            else:
                entry.info = info
        return info

    def remove(self, name: str) -> None:
        """Drop a model from the catalog, retiring its pool gracefully."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is not None and entry.pool is not None:
            self._retire(entry.pool)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def models(self) -> list[dict]:
        """Catalog listing (manifest metadata; pools are not built)."""
        with self._lock:
            entries = [
                (entry.info, entry.pool) for entry in self._entries.values()
            ]
        listing = []
        for info, pool in sorted(entries, key=lambda pair: pair[0].name):
            row = info.listing()
            row["loaded"] = pool is not None
            row["generation"] = pool.generation if pool is not None else None
            row["serving"] = "fleet" if self._fleet_config else "service"
            listing.append(row)
        return listing

    def info(self, name: str) -> ModelInfo:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ModelNotFoundError(
                    f"no model named {name!r} in the registry "
                    f"(serving: {', '.join(sorted(self._entries)) or 'none'})",
                    model=name,
                )
            return entry.info

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- pools -----------------------------------------------------------------

    def pool(self, name: str) -> _ModelPool:
        """The model's live pool, built on first use.

        Raises:
            ModelNotFoundError: when ``name`` is not in the catalog.
        """
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
        if entry is None:
            raise ModelNotFoundError(
                f"no model named {name!r} in the registry "
                f"(serving: {', '.join(self.names()) or 'none'})",
                model=name,
            )
        pool = entry.pool
        if pool is not None:
            return pool
        with entry.lock:
            if entry.pool is None:
                entry.pool = self._build_pool(entry.info)
            return entry.pool

    def submit(self, name: str, images: np.ndarray, options=None):
        """Submit to the model's current pool; the future resolves to an
        :class:`~repro.serve.InferenceResponse`.

        A request can race a hot-reload: the looked-up pool may finish
        draining between the lookup and the submit.  That narrow window
        surfaces as "service is closed" / ``FleetError(reason=
        "draining")`` and is retried once against the freshly swapped
        pool -- callers never see a reload as an error.
        """
        last_error: Exception | None = None
        for attempt in range(2):
            pool = self.pool(name)
            try:
                return pool.submit(images, options)
            except (ConfigurationError, FleetError) as exc:
                with self._lock:
                    entry = self._entries.get(name)
                swapped = entry is not None and entry.pool is not pool
                if attempt == 0 and swapped:
                    last_error = exc
                    continue
                raise
        raise last_error  # pragma: no cover - loop always returns/raises

    # -- hot reload ------------------------------------------------------------

    def reload(self, name: str) -> ModelInfo:
        """Rebuild the model's pool from its artifact and swap atomically.

        The new pool is constructed *outside* the registry lock (weight
        loading is slow), then swapped in under it; the old pool -- with
        every request already submitted to it still in flight -- drains
        in a background retirement thread.
        """
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
        if entry is None:
            raise ModelNotFoundError(
                f"no model named {name!r} in the registry", model=name
            )
        with entry.lock:
            info = describe_artifact(entry.info.path, name=name)
            new_pool = self._build_pool(info)
            with self._lock:
                old_pool, entry.pool, entry.info = entry.pool, new_pool, info
        if old_pool is not None:
            logger.info(
                "registry: hot-reloaded %r (generation %d -> %d, sha %s)",
                name,
                old_pool.generation,
                new_pool.generation,
                info.sha256[:12],
                extra={
                    "obs_event": {
                        "kind": "model_reload",
                        "model": name,
                        "generation": new_pool.generation,
                        "sha256": info.sha256,
                    }
                },
            )
            self._retire(old_pool)
        return info

    def scan(self) -> dict[str, list[str]]:
        """Reconcile the catalog with the filesystem.

        Re-reads every entry's manifest digest and hot-reloads the
        changed ones; under a ``root`` directory, new artifact
        subdirectories are added and vanished ones removed.

        Returns:
            ``{"added": [...], "removed": [...], "reloaded": [...]}``.
        """
        added: list[str] = []
        removed: list[str] = []
        reloaded: list[str] = []
        if self._root is not None and self._root.is_dir():
            on_disk = {
                child.name: child
                for child in sorted(self._root.iterdir())
                if (child / _MANIFEST).is_file()
            }
            with self._lock:
                known = set(self._entries)
            for name, path in on_disk.items():
                if name not in known:
                    try:
                        self.add(name, path)
                        added.append(name)
                    except ConfigurationError as exc:
                        logger.warning(
                            "registry: skipping unreadable artifact %s: %s",
                            path,
                            exc,
                        )
            for name in known - set(on_disk):
                self.remove(name)
                removed.append(name)
        with self._lock:
            entries = {
                name: entry.info for name, entry in self._entries.items()
            }
        for name, info in entries.items():
            if name in added:
                continue
            try:
                current = describe_artifact(info.path, name=name)
            except ConfigurationError as exc:
                logger.warning(
                    "registry: %r became unreadable, keeping the loaded "
                    "generation: %s",
                    name,
                    exc,
                )
                continue
            if current.sha256 != info.sha256:
                self.reload(name)
                reloaded.append(name)
        return {"added": added, "removed": removed, "reloaded": reloaded}

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> dict[str, dict | None]:
        """Per-model pool snapshots (``None`` for never-used pools)."""
        with self._lock:
            entries = list(self._entries.items())
        out: dict[str, dict | None] = {}
        for name, entry in sorted(entries):
            pool = entry.pool
            if pool is None:
                out[name] = None
                continue
            try:
                snap = pool.snapshot()
            except Exception:  # pragma: no cover - draining race
                out[name] = None
                continue
            out[name] = {
                "kind": pool.kind,
                "generation": pool.generation,
                "snapshot": snap,
            }
        return out

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drain every pool (and every retiring pool) and close up."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            retiring = list(self._retiring)
        for entry in entries:
            if entry.pool is not None:
                try:
                    entry.pool.close()
                except Exception:  # pragma: no cover - best-effort drain
                    logger.exception("registry: pool close failed")
        for thread in retiring:
            thread.join()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _build_pool(self, info: ModelInfo) -> _ModelPool:
        with self._lock:
            self._check_open()
            self._generation += 1
            generation = self._generation
        return _ModelPool(
            info, self._service_config, self._fleet_config, generation
        )

    def _retire(self, pool: _ModelPool) -> None:
        """Drain a replaced pool off the caller's thread.

        ``close()`` blocks until every submitted request resolves -- the
        zero-drop half of the hot-reload contract -- so it must not run
        on the thread that swapped the pool (e.g. an HTTP scan tick).
        """
        thread = threading.Thread(
            target=pool.close,
            name=f"registry-retire-{pool.info.name}-g{pool.generation}",
            daemon=True,
        )
        thread.start()
        with self._lock:
            self._retiring = [
                t for t in self._retiring if t.is_alive()
            ] + [thread]

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("registry is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelRegistry(models={self.names()!r}, "
            f"serving={'fleet' if self._fleet_config else 'service'})"
        )
