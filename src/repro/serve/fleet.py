"""Worker-fleet serving: supervised worker processes behind a router.

:class:`FleetRouter` lifts PR 6's in-process replica supervision to
process granularity.  It spawns ``FleetConfig.num_workers`` worker
*processes* (:mod:`repro.serve.fleet_worker`), each hosting its own
:class:`~repro.serve.ScInferenceService` rehydrated bit-identically from
a shared :class:`~repro.api.ScModel` artifact directory -- the PR 5
cross-process mechanism -- and talks to them over a length-prefixed
pickle-frame RPC (:mod:`repro.serve.rpc`) on their stdin/stdout pipes.

The router owns the process-level robustness contract:

* **Health.**  A heartbeat thread pings every live worker each
  ``heartbeat_interval_ms``; ``heartbeat_misses`` consecutive silent
  intervals declare the worker hung and SIGKILL it.  A killed or crashed
  worker's pipe EOF funnels every failure mode -- crash, hang, kill -9
  from outside -- into one death path.
* **Supervision.**  A dead slot is respawned after exponential backoff
  (``restart_backoff_ms * 2**k``, capped at 5 s) within a per-slot
  budget of ``max_worker_restarts`` -- the process-granularity analogue
  of the service's replica supervision.  Requests that were in flight on
  the dead worker are re-dispatched to healthy workers (up to
  ``max_request_retries`` each); requests whose deadline already passed
  are failed instead of retried.  Bit-exact rehydration makes the retry
  *score-preserving*: the restarted worker answers identically.
* **Hedging.**  With ``hedge_after_ms`` set, a request still unanswered
  after that long is speculatively duplicated onto a second healthy
  worker; the first response wins and the loser is dropped.  Because
  every worker is bit-identical, the hedge can never change an answer.
* **Admission.**  With ``max_inflight`` set, a submit beyond that many
  unresolved requests raises
  :class:`~repro.errors.ServiceOverloadError` in the caller, mirroring
  the in-process service's bounded admission.
* **Drain.**  :meth:`FleetRouter.close` stops admitting, waits for
  in-flight work (bounded by ``drain_timeout_s``), then asks each worker
  to drain and exit -- the SIGTERM-graceful path.
  :meth:`FleetRouter.rolling_restart` replaces workers one at a time
  with zero dropped requests, for artifact/config rollouts.

Failures crossing the RPC stay *typed*: worker-side
:class:`~repro.errors.InferenceError` /
:class:`~repro.errors.ServiceOverloadError` come back as themselves
(``reason`` and cause chain preserved -- see
:func:`repro.serve.rpc.decode_error`), router-side failures are
:class:`~repro.errors.FleetError` with a ``reason`` category.

Deterministic chaos testing hooks in at dispatch: a
``FleetConfig.fault_plan`` (:class:`repro.serve.faults.FaultPlan` with
:class:`~repro.serve.faults.WorkerKill` /
:class:`~repro.serve.faults.WorkerHang` /
:class:`~repro.serve.faults.SlowWorker` injectors) is consulted before
every request send, so the chaos suite can assert router metrics against
the plan's ``fired`` accounting exactly.
"""

from __future__ import annotations

import logging
import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from repro.config import FleetConfig, PredictOptions
from repro.errors import (
    ConfigurationError,
    FleetError,
    ServiceOverloadError,
)
from repro.serve.rpc import FrameStream, RpcConnectionError, decode_error

__all__ = ["FleetRouter", "FleetMetrics"]

logger = logging.getLogger("repro.serve.fleet")

_BACKOFF_CAP_S = 5.0

# Worker lifecycle states (strings for cheap snapshot rendering).
SPAWNING = "spawning"
READY = "ready"
DRAINING = "draining"
DEAD = "dead"


class FleetMetrics:
    """Router-level counters (thread-safe, monotonic within one run).

    The process-granularity mirror of
    :class:`~repro.serve.metrics.ServiceMetrics`: everything the chaos
    suite asserts against a fault plan's ``fired`` accounting lives
    here.  Worker-*internal* metrics (batching, cache, latency
    histograms) stay in each worker's own service snapshot, aggregated
    by :meth:`FleetRouter.snapshot` under a ``worker`` label.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        #: Futures resolved with worker-side ``InferenceError``.
        self.failed = 0
        #: Futures resolved with ``ServiceOverloadError`` (either shed at
        #: the router's own admission gate or inside a worker's service).
        self.shed = 0
        #: Futures resolved with router-side ``FleetError``.
        self.router_errors = 0
        #: Requests re-dispatched after their worker died.
        self.retries = 0
        #: Speculative duplicate dispatches (tail-latency hedging).
        self.hedges = 0
        #: Hedged requests whose *duplicate* answered first.
        self.hedge_wins = 0
        #: Worker processes lost to crash or hang (not drains).
        self.worker_deaths = 0
        #: Supervision restarts charged against slot budgets.
        self.restarts = 0
        #: Planned replacements (rolling restart), not charged to budgets.
        self.replacements = 0

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "shed": self.shed,
                "router_errors": self.router_errors,
                "retries": self.retries,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "worker_deaths": self.worker_deaths,
                "restarts": self.restarts,
                "replacements": self.replacements,
            }


class _FleetRequest:
    """One routed request: a future plus its dispatch/retry state."""

    __slots__ = (
        "future",
        "images",
        "options",
        "submitted_at",
        "deadline_at",
        "retries",
        "attempts",
        "hedge_ids",
        "hedged",
        "resolved",
        "first_dispatch_at",
    )

    def __init__(
        self,
        images: np.ndarray,
        options: PredictOptions | None,
    ) -> None:
        self.future: Future = Future()
        self.images = images
        self.options = options
        self.submitted_at = time.perf_counter()
        deadline_ms = getattr(options, "deadline_ms", None)
        self.deadline_at = (
            None
            if deadline_ms is None
            else self.submitted_at + deadline_ms / 1e3
        )
        #: Death-path re-dispatches consumed so far.
        self.retries = 0
        #: Live dispatch attempts as ``(handle, rpc_id)`` pairs -- one
        #: normally, two while a hedge is outstanding.
        self.attempts: list[tuple["_WorkerHandle", int]] = []
        self.hedge_ids: set[int] = set()
        self.hedged = False
        self.resolved = False
        self.first_dispatch_at: float | None = None


class _WorkerHandle:
    """Router-side view of one worker process.

    Outbound frames go through a per-worker writer thread feeding off an
    in-memory outbox, never directly into the stdin pipe from router
    threads.  This is load-bearing for hang detection: a hung worker
    stops draining its stdin, the OS pipe buffer fills, and a direct
    write would block the sender *while holding the stream's write
    lock* -- wedging the dispatcher and then the health loop's ping on
    the same lock, so the very thread that should shoot the hung worker
    deadlocks on it.  With the outbox, ``send()`` never blocks;
    backpressure surfaces as missed pongs, the health loop SIGKILLs the
    worker, and the EPIPE unblocks the writer thread.
    """

    def __init__(self, slot: int, proc: subprocess.Popen) -> None:
        self.slot = slot
        self.proc = proc
        self.stream = FrameStream(proc.stdout, proc.stdin)
        self.state = SPAWNING
        self.ready = threading.Event()
        #: Requests dispatched to this worker awaiting a response,
        #: keyed by rpc id (guarded by the router lock).
        self.pending: dict[int, _FleetRequest] = {}
        #: Snapshot RPCs awaiting their ``snapshot_result`` frame.
        self.snap_waiters: dict[int, Future] = {}
        self.last_pong = time.perf_counter()
        #: True when the router itself asked this worker to exit (drain,
        #: rolling replacement): its EOF is not a death.
        self.expected_exit = False
        self.reader: threading.Thread | None = None
        self._outbox: queue.SimpleQueue = queue.SimpleQueue()
        self.writer = threading.Thread(
            target=self._writer_loop,
            name=f"fleet-writer-{slot}",
            daemon=True,
        )
        self.writer.start()

    @property
    def inflight(self) -> int:
        return len(self.pending)

    def kill(self) -> None:
        """SIGKILL the process (hang escalation and fault injection)."""
        try:
            self.proc.kill()
        except OSError:  # pragma: no cover - already gone
            pass

    def send(self, frame: dict) -> None:
        """Enqueue a frame for the worker; never blocks the caller."""
        self._outbox.put(frame)

    def retire_writer(self) -> None:
        """Stop the writer thread once the worker is gone."""
        self._outbox.put(None)

    def _writer_loop(self) -> None:
        while True:
            frame = self._outbox.get()
            if frame is None:
                return
            try:
                self.stream.send(frame)
            except RpcConnectionError:
                # Peer gone mid-write: EOF recovery owns the fallout;
                # drain sentinels so retire_writer() stays a no-op.
                return
            except Exception:  # pragma: no cover - defensive
                logger.exception(
                    "fleet worker %d writer failed; worker will be "
                    "heartbeat-reaped",
                    self.slot,
                )
                return

    def inject_hang(self, seconds: float) -> None:
        """Make the worker's reader loop sleep: alive but unresponsive."""
        self.send({"kind": "hang", "seconds": seconds})

    def inject_slow(self, seconds: float) -> None:
        """Delay the worker's subsequent request submissions."""
        self.send({"kind": "slow", "seconds": seconds})


class FleetRouter:
    """Spawn, supervise and route over a fleet of worker processes.

    Args:
        artifact_path: directory of a saved :class:`~repro.api.ScModel`
            artifact every worker rehydrates from (the bit-exactness
            anchor; an in-memory model must be ``save()``-d first).
        config: fleet knobs (:class:`~repro.config.FleetConfig`).

    Use as a context manager or call :meth:`close` -- close is a
    graceful drain.  The submit/infer surface mirrors
    :class:`~repro.serve.ScInferenceService`.
    """

    def __init__(
        self,
        artifact_path: str | Path,
        config: FleetConfig | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.artifact_path = Path(artifact_path)
        if not self.artifact_path.is_dir():
            raise ConfigurationError(
                f"artifact_path must be a saved ScModel directory, got "
                f"{str(self.artifact_path)!r}"
            )
        self.metrics = FleetMetrics()
        self._worker_window = self.config.worker_window

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque[_FleetRequest] = deque()
        self._slots: list[_WorkerHandle | None] = [None] * self.config.num_workers
        self._slot_restarts = [0] * self.config.num_workers
        self._pending_spawns = 0
        self._rpc_seq = 0
        self._ping_seq = 0
        self._snap_seq = 0
        self._inflight_total = 0
        self._draining = False
        self._closed = False
        self._stop = threading.Event()
        self._timers: set[threading.Timer] = set()

        try:
            for slot in range(self.config.num_workers):
                handle = self._spawn(slot)
                with self._lock:
                    self._slots[slot] = handle
        except BaseException:
            self._closed = True
            self._stop.set()
            for handle in self._slots:
                if handle is not None:
                    handle.kill()
            raise

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="fleet-dispatch", daemon=True
        )
        self._health = threading.Thread(
            target=self._health_loop, name="fleet-health", daemon=True
        )
        self._dispatcher.start()
        self._health.start()

    # -- spawning --------------------------------------------------------------

    def _spawn(self, slot: int) -> _WorkerHandle:
        """Start one worker process and block until it reports ready."""
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.fleet_worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker stderr (and stray prints) pass through
            env=env,
        )
        handle = _WorkerHandle(slot, proc)
        handle.reader = threading.Thread(
            target=self._reader_loop,
            args=(handle,),
            name=f"fleet-reader-{slot}",
            daemon=True,
        )
        handle.reader.start()
        try:
            handle.send(
                {
                    "kind": "init",
                    "artifact": str(self.artifact_path),
                    "config": self.config.worker_service,
                    "slot": slot,
                }
            )
        except RpcConnectionError as exc:
            handle.kill()
            raise FleetError(
                f"worker {slot} died before init: {exc}", reason="worker_lost"
            ) from exc
        if not handle.ready.wait(self.config.worker_start_timeout_s):
            handle.kill()
            raise FleetError(
                f"worker {slot} did not become ready within "
                f"{self.config.worker_start_timeout_s}s",
                reason="worker_lost",
            )
        with self._lock:
            if handle.state == DEAD:
                raise FleetError(
                    f"worker {slot} exited during startup",
                    reason="worker_lost",
                )
            handle.state = READY
            handle.last_pong = time.perf_counter()
        logger.info(
            "fleet worker %d ready (pid %d)",
            slot,
            proc.pid,
            extra={
                "obs_event": {
                    "kind": "fleet_worker_ready",
                    "worker": slot,
                    "pid": proc.pid,
                }
            },
        )
        return handle

    def _respawn(self, slot: int) -> None:
        """Backoff-timer target: rebuild a dead slot's worker."""
        try:
            handle = self._spawn(slot)
        except Exception:
            logger.warning(
                "fleet worker %d respawn failed", slot, exc_info=True
            )
            with self._cond:
                self._pending_spawns -= 1
                # A failed start burns another unit of the slot's budget
                # (with deeper backoff); only a spent budget gives up.
                if not self._closed and not self._draining:
                    self._schedule_restart_locked(slot)
                failures = self._fail_if_no_workers_locked()
                self._cond.notify_all()
            self._resolve_failures(failures)
            return
        with self._cond:
            self._pending_spawns -= 1
            if self._closed or self._draining:
                handle.expected_exit = True
                self._cond.notify_all()
            else:
                self._slots[slot] = handle
                self._cond.notify_all()
                return
        # Router went away while we were spawning: retire the newcomer.
        try:
            handle.send({"kind": "drain"})
        except RpcConnectionError:
            pass
        handle.kill()

    # -- per-worker reader thread ----------------------------------------------

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        """Demultiplex one worker's frames until EOF (its death or drain)."""
        while True:
            try:
                frame = handle.stream.recv()
            except RpcConnectionError:
                frame = None
            if frame is None:
                break
            kind = frame.get("kind")
            if kind == "response":
                self._resolve(handle, frame["id"], result=frame["response"])
            elif kind == "error":
                self._resolve(
                    handle, frame["id"], error=decode_error(frame["error"])
                )
            elif kind == "pong":
                with self._lock:
                    handle.last_pong = time.perf_counter()
            elif kind == "ready":
                handle.ready.set()
            elif kind == "snapshot_result":
                with self._lock:
                    waiter = handle.snap_waiters.pop(frame.get("id"), None)
                if waiter is not None:
                    try:
                        waiter.set_result(frame.get("snapshot") or {})
                    except Exception:  # pragma: no cover - already timed out
                        pass
            elif kind == "drained":
                handle.expected_exit = True
        self._on_worker_exit(handle)
        try:
            handle.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck exit
            handle.kill()
            handle.proc.wait()

    # -- request resolution ----------------------------------------------------

    def _resolve(
        self,
        handle: _WorkerHandle,
        rpc_id: int,
        result=None,
        error: BaseException | None = None,
    ) -> None:
        """First response wins; duplicates and stale attempts are dropped."""
        stale_attempts: list[tuple[_WorkerHandle, int]] = []
        with self._cond:
            request = handle.pending.pop(rpc_id, None)
            if request is None or request.resolved:
                return
            request.resolved = True
            won_by_hedge = rpc_id in request.hedge_ids
            stale_attempts = [
                (other, other_id)
                for other, other_id in request.attempts
                if other_id != rpc_id
            ]
            request.attempts = []
            for other, other_id in stale_attempts:
                other.pending.pop(other_id, None)
            if error is None:
                self.metrics.completed += 1
                if won_by_hedge:
                    self.metrics.hedge_wins += 1
            elif isinstance(error, ServiceOverloadError):
                self.metrics.shed += 1
            elif isinstance(error, FleetError):
                self.metrics.router_errors += 1
            else:
                self.metrics.failed += 1
            self._inflight_total -= 1
            self._cond.notify_all()
        # Resolve outside the lock: done-callbacks run inline.  A future
        # the caller already cancelled refuses the result; the request is
        # accounted either way.
        try:
            if error is None:
                request.future.set_result(result)
            else:
                request.future.set_exception(error)
        except Exception:  # pragma: no cover - future cancelled
            pass

    # -- death path ------------------------------------------------------------

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        """Reader hit EOF: crash/kill recovery, or an expected drain exit."""
        failures: list[tuple[_FleetRequest, BaseException]] = []
        with self._cond:
            if handle.state == DEAD:
                return
            was_spawning = handle.state == SPAWNING and not handle.ready.is_set()
            handle.state = DEAD
            handle.ready.set()  # unblock a _spawn() waiter, which sees DEAD
            orphans = list(handle.pending.items())
            handle.pending.clear()
            for waiter in handle.snap_waiters.values():
                try:
                    waiter.set_exception(
                        FleetError(
                            f"worker {handle.slot} exited mid-snapshot",
                            reason="worker_lost",
                        )
                    )
                except Exception:  # pragma: no cover
                    pass
            handle.snap_waiters.clear()
            expected = handle.expected_exit or was_spawning
            if not expected:
                self.metrics.worker_deaths += 1
                logger.warning(
                    "fleet worker %d (pid %d) died with %d request(s) "
                    "in flight",
                    handle.slot,
                    handle.proc.pid,
                    len(orphans),
                    extra={
                        "obs_event": {
                            "kind": "fleet_worker_death",
                            "worker": handle.slot,
                            "pid": handle.proc.pid,
                            "inflight": len(orphans),
                        }
                    },
                )
            now = time.perf_counter()
            requeue: list[_FleetRequest] = []
            for _rpc_id, request in orphans:
                request.attempts = [
                    (h, i) for h, i in request.attempts if h is not handle
                ]
                if request.resolved:
                    continue
                if request.attempts:
                    continue  # a hedge twin is still computing elsewhere
                if (
                    request.deadline_at is not None
                    and now > request.deadline_at
                ):
                    request.resolved = True
                    self.metrics.router_errors += 1
                    self._inflight_total -= 1
                    failures.append(
                        (
                            request,
                            FleetError(
                                "deadline expired while worker "
                                f"{handle.slot} was being replaced",
                                reason="deadline",
                            ),
                        )
                    )
                elif (
                    not self._draining
                    and request.retries < self.config.max_request_retries
                ):
                    request.retries += 1
                    self.metrics.retries += 1
                    requeue.append(request)
                else:
                    request.resolved = True
                    self.metrics.router_errors += 1
                    self._inflight_total -= 1
                    failures.append(
                        (
                            request,
                            FleetError(
                                f"worker {handle.slot} died and the retry "
                                f"budget "
                                f"({self.config.max_request_retries}) is "
                                "spent",
                                reason="worker_lost",
                            ),
                        )
                    )
            # Stranded requests go to the *front*, oldest first, so
            # failover preserves FIFO fairness.
            for request in reversed(requeue):
                self._queue.appendleft(request)
            if (
                not expected
                and not self._draining
                and not self._closed
            ):
                self._schedule_restart_locked(handle.slot)
            failures.extend(self._fail_if_no_workers_locked())
            self._cond.notify_all()
        handle.retire_writer()
        self._resolve_failures(failures)

    def _schedule_restart_locked(self, slot: int) -> None:
        if self._slot_restarts[slot] >= self.config.max_worker_restarts:
            logger.warning(
                "fleet worker %d restart budget (%d) exhausted; slot stays "
                "down",
                slot,
                self.config.max_worker_restarts,
            )
            return
        self._slot_restarts[slot] += 1
        self.metrics.restarts += 1
        attempt = self._slot_restarts[slot]
        backoff_s = min(
            self.config.restart_backoff_ms * (2 ** (attempt - 1)) / 1e3,
            _BACKOFF_CAP_S,
        )
        self._pending_spawns += 1
        timer = threading.Timer(backoff_s, self._respawn_from_timer, (slot,))
        timer.daemon = True
        self._timers.add(timer)
        timer.start()
        logger.info(
            "fleet worker %d restart %d/%d scheduled in %.0f ms",
            slot,
            attempt,
            self.config.max_worker_restarts,
            backoff_s * 1e3,
            extra={
                "obs_event": {
                    "kind": "fleet_worker_restart",
                    "worker": slot,
                    "attempt": attempt,
                    "backoff_ms": backoff_s * 1e3,
                }
            },
        )

    def _respawn_from_timer(self, slot: int) -> None:
        self._timers = {t for t in self._timers if t.is_alive()}
        if self._stop.is_set():
            with self._cond:
                self._pending_spawns -= 1
                self._cond.notify_all()
            return
        self._respawn(slot)

    def _fail_if_no_workers_locked(
        self,
    ) -> list[tuple[_FleetRequest, BaseException]]:
        """With no worker live or pending, queued requests cannot ever run.

        Returns the doomed requests for the caller to resolve *outside*
        the router lock (``set_exception`` runs done-callbacks inline).
        """
        if self._pending_spawns > 0:
            return []
        if any(
            h is not None and h.state in (SPAWNING, READY)
            for h in self._slots
        ):
            return []
        failures: list[tuple[_FleetRequest, BaseException]] = []
        stranded = list(self._queue)
        self._queue.clear()
        for request in stranded:
            if request.resolved:
                continue
            request.resolved = True
            self.metrics.router_errors += 1
            self._inflight_total -= 1
            failures.append(
                (
                    request,
                    FleetError(
                        "no live workers remain and every restart budget "
                        "is spent",
                        reason="no_workers",
                    ),
                )
            )
        return failures

    @staticmethod
    def _resolve_failures(
        failures: list[tuple[_FleetRequest, BaseException]]
    ) -> None:
        for request, error in failures:
            try:
                request.future.set_exception(error)
            except Exception:  # pragma: no cover - future cancelled
                pass

    # -- dispatch --------------------------------------------------------------

    def _pick_worker_locked(
        self, exclude: "_WorkerHandle | None" = None
    ) -> "_WorkerHandle | None":
        """Least-loaded READY worker with dispatch-window headroom.

        The per-worker window (:attr:`FleetConfig.max_worker_inflight`)
        is what keeps one fast (or lone) worker from swallowing the whole
        backlog while a fleet-mate restarts -- and what bounds how many
        requests a single death can strand.  Saturated workers are simply
        not candidates; the overflow stays queued.
        """
        best: _WorkerHandle | None = None
        for handle in self._slots:
            if handle is None or handle.state != READY:
                continue
            if handle is exclude:
                continue
            if handle.inflight >= self._worker_window:
                continue
            if best is None or handle.inflight < best.inflight:
                best = handle
        return best

    def _dispatch_loop(self) -> None:
        plan = self.config.fault_plan
        while True:
            with self._cond:
                while not self._stop.is_set():
                    if self._queue and self._pick_worker_locked() is not None:
                        break
                    self._cond.wait(timeout=0.05)
                if self._stop.is_set():
                    return
                request = self._queue.popleft()
                if request.resolved:
                    continue
                handle = self._pick_worker_locked()
                if handle is None:  # lost the race with a death
                    self._queue.appendleft(request)
                    continue
                rpc_id = self._register_attempt_locked(handle, request)
            # Injection and the send itself run outside the lock: a kill
            # injector's SIGKILL and the resulting EOF recovery must not
            # deadlock against the death path.
            if plan is not None:
                try:
                    plan.before_dispatch(handle.slot, handle)
                except Exception:  # pragma: no cover - injector bug
                    logger.warning("fault plan raised", exc_info=True)
            self._send_attempt(handle, request, rpc_id)

    def _register_attempt_locked(
        self, handle: _WorkerHandle, request: _FleetRequest, hedge: bool = False
    ) -> int:
        self._rpc_seq += 1
        rpc_id = self._rpc_seq
        handle.pending[rpc_id] = request
        request.attempts.append((handle, rpc_id))
        if hedge:
            request.hedge_ids.add(rpc_id)
        if request.first_dispatch_at is None:
            request.first_dispatch_at = time.perf_counter()
        return rpc_id

    def _send_attempt(
        self, handle: _WorkerHandle, request: _FleetRequest, rpc_id: int
    ) -> None:
        try:
            handle.send(
                {
                    "kind": "request",
                    "id": rpc_id,
                    "images": request.images,
                    "options": request.options,
                }
            )
        except RpcConnectionError:
            # The worker is already gone; its reader's EOF recovery will
            # requeue (or fail) this attempt like any other orphan.
            pass

    # -- health + hedging loop -------------------------------------------------

    def _health_loop(self) -> None:
        interval_s = self.config.heartbeat_interval_ms / 1e3
        budget_s = interval_s * self.config.heartbeat_misses
        while not self._stop.wait(interval_s):
            now = time.perf_counter()
            with self._lock:
                live = [
                    h
                    for h in self._slots
                    if h is not None and h.state == READY
                ]
                self._ping_seq += 1
                seq = self._ping_seq
                hung = [h for h in live if now - h.last_pong > budget_s]
                hedges = self._collect_hedges_locked(now)
            for handle in live:
                if handle in hung:
                    continue
                try:
                    handle.send({"kind": "ping", "seq": seq})
                except RpcConnectionError:
                    pass  # EOF recovery owns it
            for handle in hung:
                logger.warning(
                    "fleet worker %d missed %d heartbeats; killing",
                    handle.slot,
                    self.config.heartbeat_misses,
                    extra={
                        "obs_event": {
                            "kind": "fleet_worker_hung",
                            "worker": handle.slot,
                            "pid": handle.proc.pid,
                        }
                    },
                )
                handle.kill()
            for handle, request, rpc_id in hedges:
                self._send_attempt(handle, request, rpc_id)

    def _collect_hedges_locked(
        self, now: float
    ) -> list[tuple[_WorkerHandle, _FleetRequest, int]]:
        if self.config.hedge_after_ms is None or self._draining:
            return []
        threshold_s = self.config.hedge_after_ms / 1e3
        out: list[tuple[_WorkerHandle, _FleetRequest, int]] = []
        for handle in self._slots:
            if handle is None or handle.state != READY:
                continue
            for request in list(handle.pending.values()):
                if (
                    request.resolved
                    or request.hedged
                    or len(request.attempts) != 1
                    or request.first_dispatch_at is None
                    or now - request.first_dispatch_at < threshold_s
                ):
                    continue
                twin = self._pick_worker_locked(exclude=handle)
                if twin is None:
                    continue
                request.hedged = True
                self.metrics.hedges += 1
                rpc_id = self._register_attempt_locked(
                    twin, request, hedge=True
                )
                out.append((twin, request, rpc_id))
        return out

    # -- public surface --------------------------------------------------------

    def submit(
        self, images: np.ndarray, options: PredictOptions | None = None
    ) -> Future:
        """Route one request to the fleet; the future resolves to an
        :class:`~repro.serve.InferenceResponse`.

        Admission mirrors the in-process service: a closed/draining
        router raises :class:`~repro.errors.FleetError` (reason
        ``"draining"``); with ``max_inflight`` configured, a submit
        beyond it raises :class:`~repro.errors.ServiceOverloadError`
        (reason ``"queue_full"``) in the caller.  Image/option
        *validation* happens in the worker's service (fail-fast there,
        typed error back here).
        """
        images = np.asarray(images)
        request = _FleetRequest(images, options)
        with self._cond:
            if self._closed or self._draining:
                raise FleetError(
                    "fleet router is draining; not admitting requests",
                    reason="draining",
                )
            if self._pending_spawns == 0 and not any(
                h is not None and h.state in (SPAWNING, READY)
                for h in self._slots
            ):
                raise FleetError(
                    "no live workers remain and every restart budget is "
                    "spent",
                    reason="no_workers",
                )
            if (
                self.config.max_inflight is not None
                and self._inflight_total >= self.config.max_inflight
            ):
                self.metrics.shed += 1
                raise ServiceOverloadError(
                    f"fleet admission: {self._inflight_total} requests in "
                    f"flight >= max_inflight={self.config.max_inflight}",
                    reason="queue_full",
                )
            self.metrics.submitted += 1
            self._inflight_total += 1
            self._queue.append(request)
            self._cond.notify_all()
        return request.future

    def infer(
        self,
        images: np.ndarray,
        options: PredictOptions | None = None,
        timeout: float | None = None,
    ):
        """Synchronous convenience wrapper: submit and wait."""
        return self.submit(images, options).result(timeout=timeout)

    def rolling_restart(self) -> None:
        """Replace every worker, one at a time, dropping zero requests.

        Each slot in turn is fenced off from new dispatches, drained of
        its in-flight requests, asked to exit gracefully, and respawned
        (freshly rehydrated from the artifact) before the next slot is
        touched -- the config/artifact rollout path.  Replacements are
        counted in ``metrics.replacements``, not against restart
        budgets.
        """
        deadline = time.monotonic() + self.config.drain_timeout_s
        for slot in range(self.config.num_workers):
            with self._lock:
                handle = self._slots[slot]
                if handle is None or handle.state != READY:
                    continue
                handle.state = DRAINING
            # Wait out the in-flight requests this worker still owns.
            while time.monotonic() < deadline:
                with self._lock:
                    if not handle.pending:
                        break
                time.sleep(0.01)
            with self._lock:
                handle.expected_exit = True
            try:
                handle.send({"kind": "drain"})
            except RpcConnectionError:
                pass
            try:
                handle.proc.wait(
                    timeout=max(0.1, deadline - time.monotonic())
                )
            except subprocess.TimeoutExpired:
                handle.kill()
                handle.proc.wait()
            replacement = self._spawn(slot)
            with self._cond:
                self._slots[slot] = replacement
                self.metrics.replacements += 1
                self._cond.notify_all()
            logger.info(
                "fleet worker %d replaced (rolling restart)",
                slot,
                extra={
                    "obs_event": {
                        "kind": "fleet_worker_replaced",
                        "worker": slot,
                    }
                },
            )

    # -- observability ---------------------------------------------------------

    def snapshot(self, worker_timeout_s: float = 5.0) -> dict:
        """Fleet counters plus every live worker's service snapshot.

        The per-worker sections are full
        :meth:`~repro.serve.ScInferenceService.snapshot` dicts fetched
        over the RPC, keyed by slot; a worker that fails to answer
        within ``worker_timeout_s`` (dead, hung, mid-restart) is
        reported as ``None`` rather than blocking the scrape.  This is
        the dict :func:`repro.obs.fleet_prometheus_text` renders with a
        ``worker`` label.
        """
        waiters: list[tuple[int, Future]] = []
        with self._lock:
            states = {
                slot: (handle.state if handle is not None else DEAD)
                for slot, handle in enumerate(self._slots)
            }
            targets = [
                h for h in self._slots if h is not None and h.state == READY
            ]
            for handle in targets:
                self._snap_seq += 1
                waiter: Future = Future()
                handle.snap_waiters[self._snap_seq] = waiter
                waiters.append((handle.slot, waiter))
                snap_id = self._snap_seq
                try:
                    handle.send({"kind": "snapshot", "id": snap_id})
                except RpcConnectionError:
                    handle.snap_waiters.pop(snap_id, None)
                    waiter.set_exception(
                        FleetError("worker unreachable", reason="worker_lost")
                    )
            queue_depth = len(self._queue)
            inflight = self._inflight_total
        workers: dict[int, dict | None] = {
            slot: None for slot in states
        }
        for slot, waiter in waiters:
            try:
                workers[slot] = waiter.result(timeout=worker_timeout_s)
            except Exception:
                workers[slot] = None
        fleet = self.metrics.snapshot()
        fleet["queue_depth"] = queue_depth
        fleet["inflight"] = inflight
        fleet["workers_ready"] = sum(
            1 for state in states.values() if state == READY
        )
        fleet["worker_states"] = {
            str(slot): state for slot, state in states.items()
        }
        return {"fleet": fleet, "workers": workers}

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Graceful drain: stop admitting, finish in-flight work, exit all.

        Bounded by ``drain_timeout_s``: requests still unresolved when it
        elapses fail with :class:`~repro.errors.FleetError` (reason
        ``"draining"``) and stragglers are killed.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._draining = True
            self._cond.notify_all()
        deadline = time.monotonic() + self.config.drain_timeout_s
        with self._cond:
            while (self._queue or self._inflight_total > 0) and (
                time.monotonic() < deadline
            ):
                self._cond.wait(timeout=0.05)
        # Stop the control threads before tearing workers down so the
        # health checker cannot shoot a worker mid-drain.
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for timer in list(self._timers):
            timer.cancel()
        self._dispatcher.join(timeout=5)
        self._health.join(timeout=5)
        failures: list[tuple[_FleetRequest, FleetError]] = []
        with self._cond:
            self._closed = True
            leftovers = list(self._queue)
            self._queue.clear()
            for handle in self._slots:
                if handle is None:
                    continue
                leftovers.extend(
                    req
                    for req in handle.pending.values()
                    if req not in leftovers
                )
                handle.pending.clear()
                handle.expected_exit = True
            for request in leftovers:
                if request.resolved:
                    continue
                request.resolved = True
                self.metrics.router_errors += 1
                self._inflight_total -= 1
                failures.append(
                    (
                        request,
                        FleetError(
                            "request abandoned: drain timeout elapsed",
                            reason="draining",
                        ),
                    )
                )
            handles = [h for h in self._slots if h is not None]
        self._resolve_failures(failures)
        for handle in handles:
            if handle.state == DEAD:
                continue
            try:
                handle.send({"kind": "drain"})
            except RpcConnectionError:
                pass
        for handle in handles:
            if handle.proc.poll() is not None:
                continue
            try:
                handle.proc.wait(
                    timeout=max(0.1, deadline - time.monotonic())
                )
            except subprocess.TimeoutExpired:
                handle.kill()
                handle.proc.wait()
        for handle in handles:
            handle.retire_writer()
            if handle.reader is not None:
                handle.reader.join(timeout=5)
            handle.writer.join(timeout=5)
            handle.stream.close()
        logger.info(
            "fleet router closed (%d workers)", len(handles)
        )

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            ready = sum(
                1
                for h in self._slots
                if h is not None and h.state == READY
            )
        return (
            f"FleetRouter(workers={self.config.num_workers}, ready={ready}, "
            f"artifact={str(self.artifact_path)!r})"
        )
