"""Async HTTP/JSON front end streaming progressive stochastic-computing results.

The network surface over the serving stack: a stdlib-``asyncio`` HTTP/1.1
server (no web framework, no new dependency) fronting a
:class:`~repro.serve.registry.ModelRegistry` of artifact-backed replica
pools -- in-process :class:`~repro.serve.ScInferenceService` pools by
default, multi-process :class:`~repro.serve.FleetRouter` pools in fleet
mode.

Routes:

========================================  ====================================
``GET /healthz``                          liveness (200 even while draining)
``GET /readyz``                           readiness (503 draining / empty)
``GET /v1/models``                        registry catalog listing
``GET /metrics``                          Prometheus text exposition
``POST /v1/models/{name}/predict``        unary batch inference
``POST /v1/models/{name}/predict/stream`` SSE progressive checkpoint stream
========================================  ====================================

The streaming route is the paper's progressive-precision story on the
wire: each Server-Sent Event carries the class scores at one stream-length
checkpoint -- the client sees the ``N/8`` answer as soon as it lands, then
refinements until the stability + margin policy exits.  Every streamed
score plane is an **exact prefix evaluation**: checkpoint ``c`` is
submitted to the pool as its own single-point schedule
``PredictOptions(stream_length=c, checkpoints=(c,))``, which for the
bit-exact backends is literally a prefix popcount -- so streamed scores
are bit-identical to in-process :meth:`~repro.api.Session.predict`
prefixes (asserted in ``tests/test_http.py``), and the early-exit
decisions replicate :func:`~repro.serve.progressive.early_exit_from_scores`
checkpoint by checkpoint.

Typed failures keep their semantics across the wire: deadline-shed
requests return HTTP 504 with ``reason="deadline"`` (and, because a
deadline-budgeted request is never cacheable, they can never poison the
result cache); queue-full shedding is 429; a draining or worker-less
fleet is 503; malformed requests are 4xx with machine-readable ``type`` /
``reason`` fields.  Graceful drain extends through open connections:
keep-alive loops finish the request in flight and close, open checkpoint
streams emit a terminal ``{"kind": "done", "reason": "draining"}`` event
rather than dying mid-chunk.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import logging
import threading
import time

import numpy as np

from repro.config import HttpConfig, PredictOptions
from repro.errors import (
    ConfigurationError,
    EncodingError,
    FleetError,
    InferenceError,
    ModelNotFoundError,
    RemoteWorkerError,
    ReproError,
    ServiceOverloadError,
    ShapeError,
)
from repro.serve.registry import ModelRegistry

__all__ = ["HttpError", "ScHttpServer", "error_response"]

logger = logging.getLogger("repro.serve.http")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_OPTION_KEYS = (
    "stream_length",
    "checkpoints",
    "early_exit",
    "deadline_ms",
    "workers",
    "executor",
)


class HttpError(ReproError):
    """A request rejected at the HTTP layer with a definite status code."""

    def __init__(
        self, status: int, error_type: str, message: str, reason: str = ""
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.reason = reason


def error_response(exc: BaseException) -> tuple[int, dict]:
    """Map an exception to ``(status, error payload)``.

    The wire contract of the typed error hierarchy: shedding and deadline
    semantics must survive HTTP.  ``reason`` is copied from the exception
    when it carries one, so category-specific client backoff
    (``"queue_full"`` vs ``"deadline"`` vs ``"draining"``) works without
    string matching.
    """
    reason = getattr(exc, "reason", "")
    if isinstance(exc, HttpError):
        status, error_type = exc.status, exc.error_type
    elif isinstance(exc, ModelNotFoundError):
        status, error_type, reason = 404, "ModelNotFoundError", "unknown_model"
    elif isinstance(exc, ServiceOverloadError):
        status = 504 if reason == "deadline" else 429
        error_type = "ServiceOverloadError"
    elif isinstance(exc, FleetError):
        if reason == "deadline":
            status = 504
        elif reason in ("draining", "no_workers"):
            status = 503
        else:
            status = 502
        error_type = "FleetError"
    elif isinstance(exc, (ShapeError, EncodingError, ConfigurationError)):
        status, error_type = 400, type(exc).__name__
    elif isinstance(exc, (InferenceError, RemoteWorkerError)):
        status, error_type = 500, type(exc).__name__
    elif isinstance(exc, (TimeoutError, asyncio.TimeoutError)):
        status, error_type, reason = 504, "DeadlineExceeded", "deadline"
    else:
        status, error_type = 500, "InternalError"
    payload = {
        "error": {
            "type": error_type,
            "reason": reason,
            "message": str(exc) or error_type,
            "status": status,
        }
    }
    return status, payload


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _margins(scores: np.ndarray) -> np.ndarray:
    """Top-1/top-2 score gaps, exactly as ``early_exit_from_scores``."""
    if scores.shape[-1] >= 2:
        top2 = np.sort(scores, axis=-1)[..., -2:]
        return top2[..., 1] - top2[..., 0]
    return np.full(scores.shape[0], np.inf)


class ScHttpServer:
    """Asyncio HTTP front end over a :class:`ModelRegistry`.

    Two hosting modes:

    * **async-native** -- ``await server.start()`` inside a running event
      loop, later ``await server.drain()`` (the CLI's signal-driven
      path);
    * **background thread** -- :meth:`start_background` spins a private
      event loop in a daemon thread and returns once the port is bound;
      :meth:`close` drains and joins it (the tests' and benchmarks'
      path).  Also usable as a context manager.

    Args:
        registry: the model catalog to serve (closed by the caller, not
            by the server).
        config: :class:`~repro.config.HttpConfig` knobs (``None`` =
            defaults: loopback, ephemeral port).
    """

    def __init__(
        self, registry: ModelRegistry, config: HttpConfig | None = None
    ) -> None:
        self.registry = registry
        self.config = config or HttpConfig()
        self.host = self.config.host
        self.port = self.config.port
        self._server: asyncio.base_events.Server | None = None
        self._scan_task: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = asyncio.Event()
        self._thread: threading.Thread | None = None
        self._thread_loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "ScHttpServer":
        """Bind the listener; ``self.port`` holds the bound port after."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        if self.config.reload_interval_s:
            self._scan_task = asyncio.create_task(self._scan_loop())
        logger.info(
            "http: serving %d model(s) on %s:%d",
            len(self.registry),
            self.host,
            self.port,
        )
        return self

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish open connections.

        Sets the draining flag (keep-alive loops close after the request
        in flight; open checkpoint streams emit a terminal ``"draining"``
        event), closes the listener, then waits up to
        ``drain_timeout_s`` for connection handlers before cancelling
        stragglers.
        """
        self._draining.set()
        if self._scan_task is not None:
            self._scan_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._scan_task
            self._scan_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = [
            t
            for t in self._connections
            if t is not asyncio.current_task() and not t.done()
        ]
        if tasks:
            done, pending = await asyncio.wait(
                tasks, timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
            logger.info(
                "http: drained %d connection(s), cancelled %d",
                len(done),
                len(pending),
            )

    def start_background(self) -> "ScHttpServer":
        """Run the server in a private event loop on a daemon thread.

        Blocks until the port is bound (or startup failed, in which case
        the startup exception is re-raised here).
        """
        if self._thread is not None:
            raise ConfigurationError("server already started")
        started = threading.Event()
        failures: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # noqa: BLE001 - reraised in caller
                failures.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-http", daemon=True
        )
        self._thread.start()
        started.wait(timeout=60.0)
        if failures:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise failures[0]
        return self

    def close(self) -> None:
        """Drain and stop a :meth:`start_background` server."""
        thread, loop = self._thread, self._thread_loop
        if thread is None or loop is None:
            return
        self._thread = None
        try:
            future = asyncio.run_coroutine_threadsafe(self.drain(), loop)
            future.result(timeout=self.config.drain_timeout_s + 10.0)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)

    def __enter__(self) -> "ScHttpServer":
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    async def _scan_loop(self) -> None:
        """Poll the registry for artifact changes (hot reload)."""
        loop = asyncio.get_running_loop()
        while not self._draining.is_set():
            await asyncio.sleep(self.config.reload_interval_s)
            try:
                changes = await loop.run_in_executor(None, self.registry.scan)
            except Exception:  # pragma: no cover - scan must never kill serve
                logger.exception("http: registry scan failed")
                continue
            if any(changes.values()):
                logger.info("http: registry scan applied %s", changes)

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        except asyncio.CancelledError:  # drain timeout fired
            raise
        except Exception:  # pragma: no cover - handler bug backstop
            logger.exception("http: connection handler failed")
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            method, path, headers, body = request
            keep_alive = await self._dispatch(
                method, path, headers, body, writer
            )
            if not keep_alive or self._draining.is_set():
                return

    async def _read_request(self, reader, writer):
        """One request head + body, racing the drain flag while idle.

        Returns ``None`` on clean close (client EOF, drain, or an error
        already answered on ``writer``).
        """
        read = asyncio.ensure_future(reader.readuntil(b"\r\n\r\n"))
        drain_wait = asyncio.ensure_future(self._draining.wait())
        try:
            await asyncio.wait(
                {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            drain_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await drain_wait
        if not read.done():
            # Draining with no request in flight on this connection.
            read.cancel()
            with contextlib.suppress(
                asyncio.CancelledError, asyncio.IncompleteReadError
            ):
                await read
            return None
        try:
            head = read.result()
        except asyncio.IncompleteReadError:
            return None  # client closed between requests
        except asyncio.LimitOverrunError:
            await self._respond_error(
                writer,
                HttpError(431, "BadRequest", "request head too large"),
                keep_alive=False,
            )
            return None
        try:
            method, path, headers = self._parse_head(head)
        except HttpError as exc:
            await self._respond_error(writer, exc, keep_alive=False)
            return None
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
                if length < 0:
                    raise ValueError
            except ValueError:
                await self._respond_error(
                    writer,
                    HttpError(400, "BadRequest", "bad Content-Length"),
                    keep_alive=False,
                )
                return None
            if length > self.config.max_body_bytes:
                # Drain modest overshoots before answering so the close
                # is clean (unread bytes on close can RST the socket
                # under the client's 413 response); give up on reading
                # truly huge bodies.
                if length <= 8 * self.config.max_body_bytes:
                    await reader.readexactly(length)
                await self._respond_error(
                    writer,
                    HttpError(
                        413,
                        "BadRequest",
                        f"request body of {length} bytes exceeds the "
                        f"{self.config.max_body_bytes}-byte limit",
                        reason="oversized_body",
                    ),
                    keep_alive=False,
                )
                return None
            if length:
                if headers.get("expect", "").lower() == "100-continue":
                    writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                    await writer.drain()
                body = await reader.readexactly(length)
        elif "chunked" in headers.get("transfer-encoding", "").lower():
            await self._respond_error(
                writer,
                HttpError(
                    411, "BadRequest", "chunked request bodies not supported"
                ),
                keep_alive=False,
            )
            return None
        return method, path, headers, body

    @staticmethod
    def _parse_head(blob: bytes):
        try:
            text = blob.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise HttpError(400, "BadRequest", "undecodable head") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(
                400, "BadRequest", f"malformed request line {lines[0]!r}"
            )
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise HttpError(
                    400, "BadRequest", f"malformed header line {line!r}"
                )
            headers[name.strip().lower()] = value.strip()
        path = target.split("?", 1)[0]
        return method, path, headers

    # -- responses -------------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        keep_alive: bool = True,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _respond_json(
        self, writer, status: int, payload: dict, keep_alive: bool = True
    ) -> None:
        await self._respond(
            writer, status, _json_bytes(payload), keep_alive=keep_alive
        )

    async def _respond_error(
        self, writer, exc: BaseException, keep_alive: bool = True
    ) -> None:
        status, payload = error_response(exc)
        await self._respond_json(writer, status, payload, keep_alive=keep_alive)

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, method, path, headers, body, writer) -> bool:
        """Route one request; returns whether to keep the connection."""
        try:
            if path == "/healthz":
                self._require(method, "GET")
                await self._respond_json(
                    writer,
                    200,
                    {"status": "ok", "draining": self._draining.is_set()},
                )
                return True
            if path == "/readyz":
                self._require(method, "GET")
                if self._draining.is_set():
                    await self._respond_json(
                        writer, 503, {"status": "draining"}, keep_alive=False
                    )
                    return False
                if not len(self.registry):
                    await self._respond_json(writer, 503, {"status": "empty"})
                    return True
                await self._respond_json(
                    writer,
                    200,
                    {"status": "ready", "models": self.registry.names()},
                )
                return True
            if path == "/v1/models":
                self._require(method, "GET")
                loop = asyncio.get_running_loop()
                models = await loop.run_in_executor(None, self.registry.models)
                await self._respond_json(writer, 200, {"models": models})
                return True
            if path == "/metrics":
                self._require(method, "GET")
                text = await self._metrics_text()
                await self._respond(
                    writer,
                    200,
                    text.encode("utf-8"),
                    content_type="text/plain; version=0.0.4",
                )
                return True
            name, streaming = self._parse_predict_path(path)
            self._require(method, "POST")
            if self._draining.is_set():
                raise HttpError(
                    503,
                    "Draining",
                    "server is draining; no new requests",
                    reason="draining",
                )
            payload = self._parse_json_body(body)
            if streaming:
                return await self._predict_stream(name, payload, writer)
            response = await self._predict_unary(name, payload)
            await self._respond_json(writer, 200, response)
            return True
        except Exception as exc:  # noqa: BLE001 - typed mapping below
            if isinstance(
                exc,
                (
                    ConnectionResetError,
                    BrokenPipeError,
                    asyncio.IncompleteReadError,
                ),
            ):
                raise
            status, _ = error_response(exc)
            if status >= 500 and not isinstance(
                exc, (ReproError, TimeoutError, asyncio.TimeoutError)
            ):
                logger.exception("http: %s %s failed", method, path)
            await self._respond_error(writer, exc)
            return True

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(
                405, "MethodNotAllowed", f"use {expected}, not {method}"
            )

    @staticmethod
    def _parse_predict_path(path: str) -> tuple[str, bool]:
        parts = path.strip("/").split("/")
        if len(parts) >= 4 and parts[0] == "v1" and parts[1] == "models":
            if parts[3] == "predict" and len(parts) == 4:
                return parts[2], False
            if parts[3] == "predict" and len(parts) == 5 and parts[4] == "stream":
                return parts[2], True
        raise HttpError(404, "NotFound", f"no route for {path}")

    @staticmethod
    def _parse_json_body(body: bytes) -> dict:
        if not body:
            raise HttpError(
                400, "BadRequest", "empty request body", reason="malformed_json"
            )
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                400,
                "BadRequest",
                f"request body is not valid JSON ({exc})",
                reason="malformed_json",
            ) from exc
        if not isinstance(payload, dict):
            raise HttpError(
                400,
                "BadRequest",
                "request body must be a JSON object",
                reason="malformed_json",
            )
        return payload

    # -- prediction ------------------------------------------------------------

    @staticmethod
    def _parse_predict_payload(
        payload: dict,
    ) -> tuple[np.ndarray, PredictOptions | None]:
        unknown = set(payload) - {"images", "options"}
        if unknown:
            raise HttpError(
                400,
                "BadRequest",
                f"unknown request fields {sorted(unknown)}",
                reason="bad_request_fields",
            )
        if "images" not in payload:
            raise HttpError(
                400,
                "BadRequest",
                'request needs an "images" field',
                reason="missing_images",
            )
        try:
            images = np.asarray(payload["images"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise HttpError(
                400,
                "BadRequest",
                f"images are not a numeric array ({exc})",
                reason="bad_images",
            ) from exc
        if images.size == 0:
            raise HttpError(
                400, "BadRequest", "images are empty", reason="bad_images"
            )
        raw_options = payload.get("options")
        if raw_options is None:
            return images, None
        if not isinstance(raw_options, dict):
            raise HttpError(
                400,
                "BadRequest",
                '"options" must be a JSON object',
                reason="bad_options",
            )
        unknown = set(raw_options) - set(_OPTION_KEYS)
        if unknown:
            raise HttpError(
                400,
                "BadRequest",
                f"unknown options {sorted(unknown)} "
                f"(known: {list(_OPTION_KEYS)})",
                reason="bad_options",
            )
        fields = dict(raw_options)
        if fields.get("checkpoints") is not None:
            try:
                fields["checkpoints"] = tuple(
                    int(c) for c in fields["checkpoints"]
                )
            except (TypeError, ValueError) as exc:
                raise HttpError(
                    400,
                    "BadRequest",
                    f"checkpoints are not an integer list ({exc})",
                    reason="bad_options",
                ) from exc
        try:
            options = PredictOptions(**fields)
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise HttpError(
                400,
                "BadRequest",
                f"invalid options: {exc}",
                reason="bad_options",
            ) from exc
        return images, options

    def _timeout_for(self, options: PredictOptions | None) -> float:
        timeout = self.config.request_timeout_s
        if options is not None and options.deadline_ms is not None:
            budget = (
                options.deadline_ms + self.config.deadline_grace_ms
            ) / 1000.0
            timeout = min(timeout, budget)
        return timeout

    async def _await_future(self, name: str, future, timeout: float):
        """Await a pool future, cancelling it on server-side timeout."""
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future), timeout)
        except (TimeoutError, asyncio.TimeoutError):
            with contextlib.suppress(Exception):
                self.registry.pool(name).cancel(future)
            raise HttpError(
                504,
                "DeadlineExceeded",
                f"request exceeded its {timeout * 1000:.0f} ms budget",
                reason="deadline",
            ) from None

    async def _predict_unary(self, name: str, payload: dict) -> dict:
        images, options = self._parse_predict_payload(payload)
        loop = asyncio.get_running_loop()
        future = await loop.run_in_executor(
            None,
            functools.partial(self.registry.submit, name, images, options),
        )
        response = await self._await_future(
            name, future, self._timeout_for(options)
        )
        pool = self.registry.pool(name)
        return {
            "model": name,
            "generation": pool.generation,
            "scores": response.scores.tolist(),
            "predictions": response.predictions.tolist(),
            "exit_checkpoints": response.exit_checkpoints.tolist(),
            "cached": response.cached.tolist(),
            "stream_length": response.stream_length,
            "latency_ms": response.latency_seconds * 1000.0,
            "degraded": response.degraded,
        }

    async def _predict_stream(self, name, payload, writer) -> bool:
        """SSE stream of progressive checkpoints; always closes the
        connection when done (the stream body is EOF-delimited chunked
        encoding, so reuse is not worth the bookkeeping)."""
        images, options = self._parse_predict_payload(payload)
        loop = asyncio.get_running_loop()
        pool = await loop.run_in_executor(None, self.registry.pool, name)
        opts = options or PredictOptions()
        resolved = opts.resolve(
            pool.stream_length,
            pool.service_config.checkpoint_fractions,
            pool.service_config.early_exit,
        )
        schedule = resolved.checkpoints
        margin = pool.service_config.margin
        stable = pool.service_config.stable_checkpoints
        start = time.monotonic()

        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()

        batch = images.shape[0]
        n_points = len(schedule)
        active = np.arange(batch)
        checkpoint_preds = np.full((n_points, batch), -1, dtype=np.int64)
        final_scores: np.ndarray | None = None
        final_preds = np.zeros(batch, dtype=np.int64)
        exit_checkpoints = np.zeros(batch, dtype=np.int64)
        reason = "complete"
        try:
            for k, point in enumerate(schedule):
                if self._draining.is_set():
                    reason = "draining"
                    break
                remaining_ms: float | None = None
                if opts.deadline_ms is not None:
                    elapsed_ms = (time.monotonic() - start) * 1000.0
                    remaining_ms = opts.deadline_ms - elapsed_ms
                    if remaining_ms <= 0:
                        reason = "deadline"
                        break
                step_options = PredictOptions(
                    stream_length=point,
                    checkpoints=(point,),
                    early_exit=False,
                    deadline_ms=remaining_ms,
                    workers=opts.workers,
                    executor=opts.executor,
                )
                try:
                    future = await loop.run_in_executor(
                        None,
                        functools.partial(
                            self.registry.submit,
                            name,
                            images[active],
                            step_options,
                        ),
                    )
                    response = await self._await_future(
                        name, future, self._timeout_for(step_options)
                    )
                except (ServiceOverloadError, FleetError, HttpError) as exc:
                    shed_reason = getattr(exc, "reason", "")
                    if shed_reason in ("deadline", "draining"):
                        reason = shed_reason
                        break
                    raise
                scores = np.asarray(response.scores)
                if final_scores is None:
                    final_scores = np.zeros(
                        (batch, scores.shape[-1]), dtype=scores.dtype
                    )
                checkpoint_preds[k, active] = response.predictions
                final_scores[active] = scores
                final_preds[active] = response.predictions
                exit_checkpoints[active] = point

                # Replicate early_exit_from_scores incrementally: an image
                # exits at the first non-final checkpoint where the last
                # `stable` predictions agree and the top-1/top-2 gap
                # clears `margin`; the final checkpoint needs no check.
                exited: np.ndarray = np.array([], dtype=np.int64)
                if (
                    resolved.early_exit
                    and k < n_points - 1
                    and k >= stable - 1
                ):
                    stable_mask = np.ones(len(active), dtype=bool)
                    for j in range(k - stable + 1, k):
                        stable_mask &= (
                            checkpoint_preds[j, active]
                            == checkpoint_preds[k, active]
                        )
                    exits = stable_mask & (_margins(scores) >= margin)
                    exited = active[exits]
                await self._sse_event(
                    writer,
                    {
                        "kind": "checkpoint",
                        "index": k,
                        "checkpoint": int(point),
                        "images": active.tolist(),
                        "scores": scores.tolist(),
                        "predictions": response.predictions.tolist(),
                        "cached": response.cached.tolist(),
                        "exited": exited.tolist(),
                    },
                )
                if len(exited):
                    keep = ~np.isin(active, exited)
                    active = active[keep]
                if not len(active):
                    reason = "early_exit" if k < n_points - 1 else "complete"
                    break
        except Exception as exc:  # noqa: BLE001 - typed error event
            if isinstance(exc, (ConnectionResetError, BrokenPipeError)):
                raise
            status, payload = error_response(exc)
            if status >= 500 and not isinstance(exc, ReproError):
                logger.exception("http: stream for %r failed", name)
            payload["kind"] = "error"
            await self._sse_event(writer, payload)
            await self._end_chunks(writer)
            return False
        if final_scores is None:
            # Not a single checkpoint landed (immediate drain/deadline).
            status, payload = error_response(
                ServiceOverloadError(
                    f"stream ended before any checkpoint ({reason})",
                    reason=reason,
                )
                if reason == "deadline"
                else FleetError(
                    f"stream ended before any checkpoint ({reason})",
                    reason="draining",
                )
            )
            payload["kind"] = "error"
            await self._sse_event(writer, payload)
            await self._end_chunks(writer)
            return False
        evaluated = exit_checkpoints > 0
        await self._sse_event(
            writer,
            {
                "kind": "done",
                "reason": reason,
                "model": name,
                "generation": pool.generation,
                "scores": final_scores.tolist(),
                "predictions": final_preds.tolist(),
                "exit_checkpoints": exit_checkpoints.tolist(),
                "evaluated": evaluated.tolist(),
                "stream_length": int(resolved.stream_length),
                "latency_ms": (time.monotonic() - start) * 1000.0,
            },
        )
        await self._end_chunks(writer)
        return False

    @staticmethod
    async def _sse_event(writer: asyncio.StreamWriter, payload: dict) -> None:
        data = b"data: " + _json_bytes(payload) + b"\n\n"
        writer.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
        await writer.drain()

    @staticmethod
    async def _end_chunks(writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- metrics ---------------------------------------------------------------

    async def _metrics_text(self) -> str:
        from repro.obs import (
            fleet_prometheus_text,
            prometheus_text,
            registry_prometheus_text,
        )

        loop = asyncio.get_running_loop()
        snapshots = await loop.run_in_executor(None, self.registry.snapshot)
        loaded = {name: snap for name, snap in snapshots.items() if snap}
        if len(snapshots) == 1 and len(loaded) == 1:
            # Single-model process: keep the established exposition shape
            # (no model label) so existing dashboards and goldens hold.
            (entry,) = loaded.values()
            if entry["kind"] == "fleet":
                return fleet_prometheus_text(entry["snapshot"])
            return prometheus_text(entry["snapshot"])
        return registry_prometheus_text(snapshots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScHttpServer(host={self.host!r}, port={self.port})"
