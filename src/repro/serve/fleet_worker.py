"""Fleet worker process: one :class:`ScInferenceService` behind pipe RPC.

Spawned by :class:`repro.serve.fleet.FleetRouter` as
``python -m repro.serve.fleet_worker``.  The process rehydrates a
bit-exact :class:`~repro.api.ScModel` from the shared artifact directory
named in the router's ``init`` frame (the PR 5 cross-process mechanism),
stands up an embedded inference service on it, and then serves frames
until the router drains it or the pipe closes.

Stream discipline: the RPC owns the *original* stdout file descriptor --
it is dup'ed away at startup and fd 1 is redirected onto stderr, so a
stray ``print()`` anywhere in the worker (user code, a library, a
warning) lands in the router's log stream instead of corrupting the
length-prefixed framing.

The reader loop must stay responsive while batches compute, because
heartbeat ``ping`` frames are answered inline: the embedded service does
its work on its own scheduler/worker threads (and NumPy releases the GIL
in the kernels), so the loop is effectively always ready to pong --
unless a ``hang`` control frame deliberately puts it to sleep, which is
exactly how :class:`~repro.serve.faults.WorkerHang` simulates a live but
unresponsive process.

Shutdown paths:

* ``drain`` frame or ``SIGTERM`` -- stop reading new frames, wait for
  every in-flight request future, close the service, send ``drained``,
  exit 0 (the router's graceful-drain and rolling-replacement path).
* stdin EOF / broken pipe -- the router died; close the service and
  exit without ceremony.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time

__all__ = ["main"]


class _DrainRequested(Exception):
    """Raised by the SIGTERM handler to interrupt the blocking read."""


class _Worker:
    def __init__(self, stream) -> None:
        self._stream = stream
        self._service = None
        self._slot = -1
        # Request futures still in flight, keyed by rpc id; guarded by
        # ``_lock`` against the done-callback threads that retire them.
        self._inflight: dict[int, object] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        # Seconds of artificial latency applied to subsequently arriving
        # requests (the SlowWorker injector); 0.0 = no delay.
        self._slow_s = 0.0

    # -- frame handlers --------------------------------------------------------

    def handle_init(self, frame: dict) -> None:
        from repro.api import ScModel
        from repro.serve.service import ScInferenceService

        self._slot = int(frame.get("slot", -1))
        artifact = frame["artifact"]
        model = ScModel.load(artifact)
        self._service = ScInferenceService(
            model.mapper(),
            frame["config"],
            artifact_path=artifact,
            **(frame.get("backend_options") or {}),
        )
        self._stream.send(
            {"kind": "ready", "slot": self._slot, "pid": os.getpid()}
        )

    def handle_request(self, frame: dict) -> None:
        rpc_id = frame["id"]
        delay = self._slow_s
        if delay > 0.0:
            # SlowWorker: the process stays live (pings keep flowing; the
            # delay runs on a timer thread, not the reader loop) but the
            # answer is late.
            threading.Timer(
                delay, self._submit, args=(rpc_id, frame)
            ).start()
            return
        self._submit(rpc_id, frame)

    def _submit(self, rpc_id: int, frame: dict) -> None:
        from repro.serve.rpc import encode_error

        try:
            future = self._service.submit(
                frame["images"], frame.get("options")
            )
        except Exception as exc:
            # Fail-fast submit errors (shape/options/overload) answer
            # immediately, typed, without ever occupying a slot.
            self._stream.send(
                {"kind": "error", "id": rpc_id, "error": encode_error(exc)}
            )
            return
        with self._lock:
            self._inflight[rpc_id] = future
        future.add_done_callback(
            lambda fut, rpc_id=rpc_id: self._finish(rpc_id, fut)
        )

    def _finish(self, rpc_id: int, future) -> None:
        from repro.serve.rpc import RpcConnectionError, encode_error

        try:
            exc = future.exception()
            if exc is None:
                payload = {
                    "kind": "response",
                    "id": rpc_id,
                    "response": future.result(),
                }
            else:
                payload = {
                    "kind": "error",
                    "id": rpc_id,
                    "error": encode_error(exc),
                }
            self._stream.send(payload)
        except RpcConnectionError:
            pass  # router is gone; the EOF path will shut us down
        finally:
            with self._lock:
                self._inflight.pop(rpc_id, None)
                if not self._inflight:
                    self._idle.notify_all()

    def handle_control(self, frame: dict) -> None:
        kind = frame["kind"]
        if kind == "ping":
            self._stream.send({"kind": "pong", "seq": frame.get("seq")})
        elif kind == "snapshot":
            snap = self._service.snapshot() if self._service else {}
            self._stream.send(
                {"kind": "snapshot_result", "id": frame.get("id"), "snapshot": snap}
            )
        elif kind == "hang":
            # Simulated hang: the reader loop -- the only thread that can
            # pong -- sleeps, so the router's heartbeat misses accumulate
            # and it SIGKILLs us.  In-flight work may still complete.
            time.sleep(float(frame.get("seconds", 3600.0)))
        elif kind == "slow":
            self._slow_s = float(frame.get("seconds", 0.0))

    # -- lifecycle -------------------------------------------------------------

    def drain(self, notify: bool) -> None:
        from repro.serve.rpc import RpcConnectionError

        with self._lock:
            while self._inflight:
                self._idle.wait(timeout=0.1)
        if self._service is not None:
            self._service.close()
        if notify:
            try:
                self._stream.send({"kind": "drained", "slot": self._slot})
            except RpcConnectionError:
                pass

    def run(self) -> int:
        from repro.serve.rpc import RpcConnectionError

        try:
            while True:
                frame = self._stream.recv()
                if frame is None:
                    # Router closed our stdin: abandon in-flight work
                    # (nobody is listening) and die quickly so a kill -9
                    # of the router doesn't leave orphans computing.
                    if self._service is not None:
                        self._service.close()
                    return 0
                kind = frame.get("kind")
                if kind == "init":
                    self.handle_init(frame)
                elif kind == "request":
                    self.handle_request(frame)
                elif kind == "drain":
                    self.drain(notify=True)
                    return 0
                else:
                    self.handle_control(frame)
        except _DrainRequested:
            self.drain(notify=True)
            return 0
        except RpcConnectionError:
            if self._service is not None:
                self._service.close()
            return 0


def main() -> int:
    # Claim the real stdout for RPC frames before anything can print to
    # it, then point fd 1 at stderr so stray writes stay out of band.
    rpc_fd = os.dup(1)
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    from repro.serve.rpc import FrameStream

    stream = FrameStream(
        os.fdopen(0, "rb", buffering=0),
        os.fdopen(rpc_fd, "wb", buffering=0),
    )

    def _on_sigterm(signum, sig_frame):
        raise _DrainRequested()

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # router Ctrl-C is not ours

    return _Worker(stream).run()


if __name__ == "__main__":
    sys.exit(main())
