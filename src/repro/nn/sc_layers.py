"""Mapping of trained float networks onto the SC/AQFP blocks.

:class:`ScNetworkMapper` takes a trained :class:`~repro.nn.layers.Network`
and executes it in the stochastic-computing domain in two ways:

* **fast statistical model** -- the forward pass stays in float but uses the
  quantised weights, the hardware transfer curve of the feature-extraction
  block as activation, exact averaging for pooling, and (optionally) the
  stochastic decoding noise of finite streams.  This is the model used to
  evaluate accuracy on the full test set.
* **bit-exact simulation** -- every layer is executed on actual bit streams
  through the block implementations in :mod:`repro.blocks`.  This is orders
  of magnitude slower and is used on a handful of images to validate the
  fast model.

The mapper also produces the per-layer block inventory (how many feature
extraction / pooling / categorization / SNG blocks of which size), which the
network-level hardware report (Table 9) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks.categorization import (
    MajorityChainCategorizationBlock,
    chain_output_probability,
)
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock, SorterTransferCurve
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    LogitScale,
    Network,
    im2col,
)
from repro.nn.quantization import quantize_weights

__all__ = ["LayerInventory", "ScNetworkMapper"]


@dataclass(frozen=True)
class LayerInventory:
    """Block inventory of one mapped layer.

    Attributes:
        name: layer description.
        block_kind: ``"feature_extraction"``, ``"pooling"`` or
            ``"categorization"``.
        block_inputs: input size ``M`` of each block instance.
        block_count: number of parallel block instances (output neurons /
            pooled pixels).
        sng_inputs: number of SNG conversions feeding the layer (weights plus
            bias per block).
    """

    name: str
    block_kind: str
    block_inputs: int
    block_count: int
    sng_inputs: int


class ScNetworkMapper:
    """Execute a trained float network in the SC domain.

    Args:
        network: trained float network (weights inside ``[-1, 1]``).
        weight_bits: stored binary precision used for quantisation.
        stream_length: stochastic stream length ``N``.
        seed: seed for stream generation / noise injection.
    """

    def __init__(
        self,
        network: Network,
        weight_bits: int = 10,
        stream_length: int = 1024,
        seed: int = 2019,
    ) -> None:
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        self.network = network
        self.weight_bits = int(weight_bits)
        self.stream_length = int(stream_length)
        self.seed = int(seed)

    # -- inventory -------------------------------------------------------------

    def layer_inventories(
        self, input_shape: tuple[int, int, int] = (1, 28, 28)
    ) -> list[LayerInventory]:
        """Per-layer block inventory for the hardware roll-up (Table 9)."""
        inventories: list[LayerInventory] = []
        channels, height, width = input_shape
        dense_seen = 0
        dense_layers = [l for l in self.network.layers if isinstance(l, Dense)]
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                out_h = height if layer.padding == "same" else height - layer.kernel_size + 1
                out_w = width if layer.padding == "same" else width - layer.kernel_size + 1
                count = layer.out_channels * out_h * out_w
                inventories.append(
                    LayerInventory(
                        name=f"conv{layer.kernel_size}x{layer.kernel_size}x{layer.out_channels}",
                        block_kind="feature_extraction",
                        block_inputs=layer.fan_in + 1,
                        block_count=count,
                        sng_inputs=(layer.fan_in + 1) * layer.out_channels,
                    )
                )
                channels, height, width = layer.out_channels, out_h, out_w
            elif isinstance(layer, AvgPool2D):
                out_h, out_w = height // layer.pool_size, width // layer.pool_size
                count = channels * out_h * out_w
                inventories.append(
                    LayerInventory(
                        name=f"avgpool{layer.pool_size}x{layer.pool_size}",
                        block_kind="pooling",
                        block_inputs=layer.pool_size * layer.pool_size,
                        block_count=count,
                        sng_inputs=0,
                    )
                )
                height, width = out_h, out_w
            elif isinstance(layer, Dense):
                dense_seen += 1
                is_output = dense_seen == len(dense_layers)
                kind = "categorization" if is_output else "feature_extraction"
                inventories.append(
                    LayerInventory(
                        name=f"fc{layer.out_features}",
                        block_kind=kind,
                        block_inputs=layer.in_features + (0 if is_output else 1),
                        block_count=layer.out_features,
                        sng_inputs=layer.in_features * layer.out_features,
                    )
                )
        return inventories

    # -- fast statistical model -------------------------------------------------

    def fast_forward(
        self,
        images: np.ndarray,
        inject_noise: bool = True,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Fast SC inference over a batch of images.

        Args:
            images: ``(batch, channels, height, width)`` images in ``[0, 1]``.
            inject_noise: add the stochastic decoding noise of finite streams
                (variance ``(1 - y^2) / N``) after every block.
            rng: noise generator; defaults to a seeded generator.

        Returns:
            ``(batch, n_classes)`` class scores (decoded categorization-block
            outputs).
        """
        rng = rng or np.random.default_rng(self.seed)
        value = np.asarray(images, dtype=np.float64) * 2.0 - 1.0  # bipolar inputs
        value = self._quantize_activations(value)
        dense_layers = [l for l in self.network.layers if isinstance(l, Dense)]
        dense_seen = 0
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                w = quantize_weights(layer.weights, self.weight_bits)
                b = quantize_weights(layer.bias, self.weight_bits)
                patches, out_h, out_w = im2col(
                    value, layer.kernel_size, layer.stride,
                    (layer.kernel_size - 1) // 2 if layer.padding == "same" else 0,
                )
                z = patches @ w.T + b
                z = z.transpose(0, 2, 1).reshape(
                    value.shape[0], layer.out_channels, out_h, out_w
                )
                z = self._maybe_inner_product_noise(z, layer.fan_in + 1, inject_noise, rng)
                curve = SorterTransferCurve.cached(layer.fan_in + 1, stream_length=4096)
                value = self._maybe_noise(curve(z), inject_noise, rng)
            elif isinstance(layer, AvgPool2D):
                p = layer.pool_size
                batch, channels, height, width = value.shape
                out_h, out_w = height // p, width // p
                pooled = value[:, :, : out_h * p, : out_w * p].reshape(
                    batch, channels, out_h, p, out_w, p
                ).mean(axis=(3, 5))
                value = self._maybe_noise(pooled, inject_noise, rng)
            elif isinstance(layer, Flatten):
                value = value.reshape(value.shape[0], -1)
            elif isinstance(layer, Dense):
                dense_seen += 1
                w = quantize_weights(layer.weights, self.weight_bits)
                b = quantize_weights(layer.bias, self.weight_bits)
                is_output = dense_seen == len(dense_layers)
                if is_output:
                    # Categorization block: the chain's output value is a
                    # steep monotone function of the mean product value
                    # (bias included as one extra product stream), which is
                    # what preserves the ranking of the inner products.
                    mean_product = (value @ w.T + b) / (layer.in_features + 1)
                    probability = chain_output_probability(
                        (mean_product + 1.0) / 2.0, layer.in_features + 1
                    )
                    scores = 2.0 * probability - 1.0
                    value = self._maybe_noise(scores, inject_noise, rng)
                else:
                    z = value @ w.T + b
                    z = self._maybe_inner_product_noise(
                        z, layer.in_features + 1, inject_noise, rng
                    )
                    curve = SorterTransferCurve.cached(
                        layer.in_features + 1, stream_length=4096
                    )
                    value = self._maybe_noise(curve(z), inject_noise, rng)
            elif isinstance(layer, (HardwareActivation, ClipActivation, LogitScale)):
                continue  # activation/margin scaling is folded into the blocks
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"cannot map layer {type(layer).__name__} to SC hardware"
                )
        return value

    def _quantize_activations(self, value: np.ndarray) -> np.ndarray:
        """Quantise bipolar values to the SNG comparator levels."""
        return quantize_weights(value, self.weight_bits)

    def _maybe_noise(
        self, value: np.ndarray, inject_noise: bool, rng: np.random.Generator
    ) -> np.ndarray:
        """Stream-decoding noise of a single output stream of length N."""
        if not inject_noise:
            return value
        variance = np.clip(1.0 - value ** 2, 0.0, 1.0) / self.stream_length
        noisy = value + rng.normal(0.0, 1.0, size=value.shape) * np.sqrt(variance)
        return np.clip(noisy, -1.0, 1.0)

    def _maybe_inner_product_noise(
        self,
        z: np.ndarray,
        fan_in: int,
        inject_noise: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Stochastic inner-product noise of a feature-extraction block.

        Summing ``M`` independent bipolar product streams of length ``N``
        carries a variance of at most ``M / N`` on the pre-activation value;
        this is the dominant SC error source for wide layers and the reason
        the SC-aware training pushes pre-activations into saturation.
        """
        if not inject_noise:
            return z
        return z + rng.normal(0.0, np.sqrt(fan_in / self.stream_length), size=z.shape)

    def fast_predict(self, images: np.ndarray, inject_noise: bool = True) -> np.ndarray:
        """Predicted classes under the fast SC model."""
        scores = self.fast_forward(images, inject_noise)
        return np.argmax(scores, axis=1)

    def fast_accuracy(
        self, images: np.ndarray, labels: np.ndarray, inject_noise: bool = True,
        batch_size: int = 256,
    ) -> float:
        """Accuracy of the fast SC model over a labelled set."""
        correct = 0
        labels = np.asarray(labels)
        for start in range(0, images.shape[0], batch_size):
            preds = self.fast_predict(images[start : start + batch_size], inject_noise)
            correct += int((preds == labels[start : start + batch_size]).sum())
        return correct / images.shape[0]

    # -- bit-exact simulation ---------------------------------------------------

    def bit_exact_forward(
        self, image: np.ndarray, rng: np.random.Generator | None = None,
        position_chunk: int = 32,
    ) -> np.ndarray:
        """Run a single image through actual bit streams and the blocks.

        Args:
            image: ``(channels, height, width)`` image in ``[0, 1]``.
            rng: stream-generation random generator.
            position_chunk: how many output positions to process at a time
                (memory / speed trade-off).

        Returns:
            ``(n_classes,)`` decoded class scores.
        """
        rng = rng or np.random.default_rng(self.seed)
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 3:
            raise ShapeError(f"expected (channels, height, width), got {image.shape}")
        n = self.stream_length
        value = self._quantize_activations(image * 2.0 - 1.0)
        # Feature map as bit streams: (channels, height, width, N).
        bits = (rng.random(value.shape + (n,)) < ((value + 1.0) / 2.0)[..., None]).astype(
            np.uint8
        )
        dense_layers = [l for l in self.network.layers if isinstance(l, Dense)]
        dense_seen = 0
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                bits = self._bit_exact_conv(bits, layer, rng, position_chunk)
            elif isinstance(layer, AvgPool2D):
                bits = self._bit_exact_pool(bits, layer)
            elif isinstance(layer, Flatten):
                bits = bits.reshape(-1, n)
            elif isinstance(layer, Dense):
                dense_seen += 1
                is_output = dense_seen == len(dense_layers)
                bits = self._bit_exact_dense(bits, layer, rng, is_output, position_chunk)
            elif isinstance(layer, (HardwareActivation, ClipActivation, LogitScale)):
                continue
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"cannot map layer {type(layer).__name__} to SC hardware"
                )
        return 2.0 * bits.mean(axis=-1) - 1.0

    def _weight_streams(
        self, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Generate bipolar streams for quantised weights (shape + (N,))."""
        q = quantize_weights(weights, self.weight_bits)
        p = (q + 1.0) / 2.0
        return (rng.random(q.shape + (self.stream_length,)) < p[..., None]).astype(np.uint8)

    def _bit_exact_conv(
        self,
        bits: np.ndarray,
        layer: Conv2D,
        rng: np.random.Generator,
        position_chunk: int,
    ) -> np.ndarray:
        n = self.stream_length
        channels, height, width, _ = bits.shape
        pad = (layer.kernel_size - 1) // 2 if layer.padding == "same" else 0
        # im2col over the stream axis: treat N as extra trailing axes by
        # moving it into the batch dimension of im2col's channel layout.
        stacked = bits.transpose(3, 0, 1, 2)  # (N, C, H, W)
        patches, out_h, out_w = im2col(stacked, layer.kernel_size, layer.stride, pad)
        # patches: (N, positions, fan_in) -> (positions, fan_in, N)
        patches = patches.transpose(1, 2, 0).astype(np.uint8)
        weight_bits = self._weight_streams(layer.weights, rng)  # (out_ch, fan_in, N)
        bias_bits = self._weight_streams(layer.bias, rng)  # (out_ch, N)
        block = SorterFeatureExtractionBlock(layer.fan_in + 1)
        n_positions = patches.shape[0]
        output = np.empty((layer.out_channels, n_positions, n), dtype=np.uint8)
        for start in range(0, n_positions, position_chunk):
            chunk = patches[start : start + position_chunk]  # (chunk, fan_in, N)
            products = np.logical_not(
                np.logical_xor(chunk[:, None, :, :], weight_bits[None, :, :, :])
            ).astype(np.uint8)  # (chunk, out_ch, fan_in, N)
            bias = np.broadcast_to(
                bias_bits[None, :, None, :], products.shape[:2] + (1, n)
            )
            products = np.concatenate([products, bias], axis=2)
            activated = block.forward_products(products)  # (chunk, out_ch, N)
            output[:, start : start + chunk.shape[0]] = activated.transpose(1, 0, 2)
        return output.reshape(layer.out_channels, out_h, out_w, n)

    def _bit_exact_pool(self, bits: np.ndarray, layer: AvgPool2D) -> np.ndarray:
        channels, height, width, n = bits.shape
        p = layer.pool_size
        out_h, out_w = height // p, width // p
        trimmed = bits[:, : out_h * p, : out_w * p]
        grouped = trimmed.reshape(channels, out_h, p, out_w, p, n)
        grouped = grouped.transpose(0, 1, 3, 2, 4, 5).reshape(
            channels * out_h * out_w, p * p, n
        )
        block = SorterAveragePoolingBlock(p * p)
        pooled = block.forward_bits(grouped)
        return pooled.reshape(channels, out_h, out_w, n)

    def _bit_exact_dense(
        self,
        bits: np.ndarray,
        layer: Dense,
        rng: np.random.Generator,
        is_output: bool,
        neuron_chunk: int,
    ) -> np.ndarray:
        n = self.stream_length
        if bits.shape != (layer.in_features, n):
            raise ShapeError(
                f"dense layer expects ({layer.in_features}, {n}) streams, got {bits.shape}"
            )
        weight_bits = self._weight_streams(layer.weights, rng)  # (out, in, N)
        bias_bits = self._weight_streams(layer.bias, rng)  # (out, N)
        outputs = np.empty((layer.out_features, n), dtype=np.uint8)
        if is_output:
            block = MajorityChainCategorizationBlock(layer.in_features)
        else:
            block = SorterFeatureExtractionBlock(layer.in_features + 1)
        for start in range(0, layer.out_features, neuron_chunk):
            w_chunk = weight_bits[start : start + neuron_chunk]
            products = np.logical_not(
                np.logical_xor(bits[None, :, :], w_chunk)
            ).astype(np.uint8)  # (chunk, in, N)
            if is_output:
                outputs[start : start + w_chunk.shape[0]] = block.forward_products(products)
            else:
                bias = bias_bits[start : start + w_chunk.shape[0], None, :]
                products = np.concatenate([products, bias], axis=1)
                outputs[start : start + w_chunk.shape[0]] = block.forward_products(products)
        return outputs
