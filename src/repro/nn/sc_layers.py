"""Mapping of trained float networks onto the SC/AQFP blocks.

:class:`ScNetworkMapper` takes a trained :class:`~repro.nn.layers.Network`
and executes it in the stochastic-computing domain in two ways:

* **fast statistical model** -- the forward pass stays in float but uses the
  quantised weights, the hardware transfer curve of the feature-extraction
  block as activation, exact averaging for pooling, and (optionally) the
  stochastic decoding noise of finite streams.  This is the model used to
  evaluate accuracy on the full test set.
* **bit-exact simulation** -- every layer is executed on actual bit streams
  through the block implementations in :mod:`repro.blocks`.  The batched
  path (:meth:`ScNetworkMapper.bit_exact_forward_batch`) advances **all**
  block instances of a layer -- every output pixel and neuron, across a
  whole batch of images -- through the counter recurrences in one
  vectorised call per layer, which makes bit-exact validation of dozens of
  images routine.  A literal per-image, small-chunk implementation is kept
  as :meth:`ScNetworkMapper.bit_exact_forward_legacy` for equivalence
  testing and as the perf baseline of ``benchmarks/bench_perf.py``.

The mapper also produces the per-layer block inventory (how many feature
extraction / pooling / categorization / SNG blocks of which size), which the
network-level hardware report (Table 9) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks.categorization import (
    MajorityChainCategorizationBlock,
    chain_output_probability,
)
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock, SorterTransferCurve
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    LogitScale,
    Network,
    im2col,
)
from repro.nn.quantization import quantize_weights

__all__ = ["LayerInventory", "ScNetworkMapper"]


@dataclass(frozen=True)
class LayerInventory:
    """Block inventory of one mapped layer.

    Attributes:
        name: layer description.
        block_kind: ``"feature_extraction"``, ``"pooling"`` or
            ``"categorization"``.
        block_inputs: input size ``M`` of each block instance.
        block_count: number of parallel block instances (output neurons /
            pooled pixels).
        sng_inputs: number of SNG conversions feeding the layer (weights plus
            bias per block).
    """

    name: str
    block_kind: str
    block_inputs: int
    block_count: int
    sng_inputs: int


class ScNetworkMapper:
    """Execute a trained float network in the SC domain.

    Args:
        network: trained float network (weights inside ``[-1, 1]``).
        weight_bits: stored binary precision used for quantisation.
        stream_length: stochastic stream length ``N``.
        seed: seed for stream generation / noise injection.
        quantized_params: optional precomputed quantised values, one per
            ``network.parameters()`` entry in order (the dequantised
            comparator codes a model artifact stores natively).  When
            given, :meth:`quantized_weights` serves these instead of
            re-quantising the floats on every call; the values must be
            what ``quantize_weights(param, weight_bits)`` would produce,
            which :func:`repro.nn.quantization.dequantize_weights` of the
            stored codes guarantees exactly.
    """

    def __init__(
        self,
        network: Network,
        weight_bits: int = 10,
        stream_length: int = 1024,
        seed: int = 2019,
        quantized_params: list[np.ndarray] | None = None,
    ) -> None:
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        self.network = network
        self.weight_bits = int(weight_bits)
        self.stream_length = int(stream_length)
        self.seed = int(seed)
        self._quantized_params: list[np.ndarray] | None = None
        if quantized_params is not None:
            params = network.parameters()
            if len(quantized_params) != len(params):
                raise ConfigurationError(
                    f"expected {len(params)} quantized parameter arrays "
                    f"(one per network parameter), got {len(quantized_params)}"
                )
            stored = []
            for param, q in zip(params, quantized_params):
                q = np.asarray(q, dtype=np.float64)
                if q.shape != param.shape:
                    raise ShapeError(
                        f"quantized parameter shape {q.shape} does not match "
                        f"network parameter shape {param.shape}"
                    )
                stored.append(q)
            self._quantized_params = stored

    def quantized_weights(self, weights: np.ndarray) -> np.ndarray:
        """Quantised values of a network parameter array.

        Serves the precomputed values when the model artifact stored its
        comparator codes natively (identity-matched against
        ``network.parameters()``), falling back to
        :func:`~repro.nn.quantization.quantize_weights` for parameters
        without a preload -- the two are bit-identical by construction,
        so every execution backend sees the same quantised network either
        way.
        """
        if self._quantized_params is not None:
            for param, q in zip(self.network.parameters(), self._quantized_params):
                if param is weights:
                    return q
        return quantize_weights(weights, self.weight_bits)

    # -- inventory -------------------------------------------------------------

    def layer_inventories(
        self, input_shape: tuple[int, int, int] = (1, 28, 28)
    ) -> list[LayerInventory]:
        """Per-layer block inventory for the hardware roll-up (Table 9)."""
        inventories: list[LayerInventory] = []
        channels, height, width = input_shape
        dense_seen = 0
        dense_layers = [l for l in self.network.layers if isinstance(l, Dense)]
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                out_h = height if layer.padding == "same" else height - layer.kernel_size + 1
                out_w = width if layer.padding == "same" else width - layer.kernel_size + 1
                count = layer.out_channels * out_h * out_w
                inventories.append(
                    LayerInventory(
                        name=f"conv{layer.kernel_size}x{layer.kernel_size}x{layer.out_channels}",
                        block_kind="feature_extraction",
                        block_inputs=layer.fan_in + 1,
                        block_count=count,
                        sng_inputs=(layer.fan_in + 1) * layer.out_channels,
                    )
                )
                channels, height, width = layer.out_channels, out_h, out_w
            elif isinstance(layer, AvgPool2D):
                out_h, out_w = height // layer.pool_size, width // layer.pool_size
                count = channels * out_h * out_w
                inventories.append(
                    LayerInventory(
                        name=f"avgpool{layer.pool_size}x{layer.pool_size}",
                        block_kind="pooling",
                        block_inputs=layer.pool_size * layer.pool_size,
                        block_count=count,
                        sng_inputs=0,
                    )
                )
                height, width = out_h, out_w
            elif isinstance(layer, Dense):
                dense_seen += 1
                is_output = dense_seen == len(dense_layers)
                kind = "categorization" if is_output else "feature_extraction"
                inventories.append(
                    LayerInventory(
                        name=f"fc{layer.out_features}",
                        block_kind=kind,
                        block_inputs=layer.in_features + (0 if is_output else 1),
                        block_count=layer.out_features,
                        sng_inputs=layer.in_features * layer.out_features,
                    )
                )
        return inventories

    # -- fast statistical model -------------------------------------------------

    def fast_forward(
        self,
        images: np.ndarray,
        inject_noise: bool = True,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Fast SC inference over a batch of images.

        Args:
            images: ``(batch, channels, height, width)`` images in ``[0, 1]``.
            inject_noise: add the stochastic decoding noise of finite streams
                (variance ``(1 - y^2) / N``) after every block.
            rng: noise generator; defaults to a seeded generator.

        Returns:
            ``(batch, n_classes)`` class scores (decoded categorization-block
            outputs).
        """
        rng = rng or np.random.default_rng(self.seed)
        value = np.asarray(images, dtype=np.float64) * 2.0 - 1.0  # bipolar inputs
        value = self._quantize_activations(value)
        dense_layers = [l for l in self.network.layers if isinstance(l, Dense)]
        dense_seen = 0
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                w = self.quantized_weights(layer.weights)
                b = self.quantized_weights(layer.bias)
                patches, out_h, out_w = im2col(
                    value, layer.kernel_size, layer.stride,
                    (layer.kernel_size - 1) // 2 if layer.padding == "same" else 0,
                )
                z = patches @ w.T + b
                z = z.transpose(0, 2, 1).reshape(
                    value.shape[0], layer.out_channels, out_h, out_w
                )
                z = self._maybe_inner_product_noise(z, layer.fan_in + 1, inject_noise, rng)
                curve = SorterTransferCurve.cached(layer.fan_in + 1, stream_length=4096)
                value = self._maybe_noise(curve(z), inject_noise, rng)
            elif isinstance(layer, AvgPool2D):
                p = layer.pool_size
                batch, channels, height, width = value.shape
                out_h, out_w = height // p, width // p
                pooled = value[:, :, : out_h * p, : out_w * p].reshape(
                    batch, channels, out_h, p, out_w, p
                ).mean(axis=(3, 5))
                value = self._maybe_noise(pooled, inject_noise, rng)
            elif isinstance(layer, Flatten):
                value = value.reshape(value.shape[0], -1)
            elif isinstance(layer, Dense):
                dense_seen += 1
                w = self.quantized_weights(layer.weights)
                b = self.quantized_weights(layer.bias)
                is_output = dense_seen == len(dense_layers)
                if is_output:
                    # Categorization block: the chain's output value is a
                    # steep monotone function of the mean product value
                    # (bias included as one extra product stream), which is
                    # what preserves the ranking of the inner products.
                    mean_product = (value @ w.T + b) / (layer.in_features + 1)
                    probability = chain_output_probability(
                        (mean_product + 1.0) / 2.0, layer.in_features + 1
                    )
                    scores = 2.0 * probability - 1.0
                    value = self._maybe_noise(scores, inject_noise, rng)
                else:
                    z = value @ w.T + b
                    z = self._maybe_inner_product_noise(
                        z, layer.in_features + 1, inject_noise, rng
                    )
                    curve = SorterTransferCurve.cached(
                        layer.in_features + 1, stream_length=4096
                    )
                    value = self._maybe_noise(curve(z), inject_noise, rng)
            elif isinstance(layer, (HardwareActivation, ClipActivation, LogitScale)):
                continue  # activation/margin scaling is folded into the blocks
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"cannot map layer {type(layer).__name__} to SC hardware"
                )
        return value

    def _quantize_activations(self, value: np.ndarray) -> np.ndarray:
        """Quantise bipolar values to the SNG comparator levels."""
        return quantize_weights(value, self.weight_bits)

    def _maybe_noise(
        self, value: np.ndarray, inject_noise: bool, rng: np.random.Generator
    ) -> np.ndarray:
        """Stream-decoding noise of a single output stream of length N."""
        if not inject_noise:
            return value
        variance = np.clip(1.0 - value ** 2, 0.0, 1.0) / self.stream_length
        noisy = value + rng.normal(0.0, 1.0, size=value.shape) * np.sqrt(variance)
        return np.clip(noisy, -1.0, 1.0)

    def _maybe_inner_product_noise(
        self,
        z: np.ndarray,
        fan_in: int,
        inject_noise: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Stochastic inner-product noise of a feature-extraction block.

        Summing ``M`` independent bipolar product streams of length ``N``
        carries a variance of at most ``M / N`` on the pre-activation value;
        this is the dominant SC error source for wide layers and the reason
        the SC-aware training pushes pre-activations into saturation.
        """
        if not inject_noise:
            return z
        return z + rng.normal(0.0, np.sqrt(fan_in / self.stream_length), size=z.shape)

    def fast_predict(self, images: np.ndarray, inject_noise: bool = True) -> np.ndarray:
        """Predicted classes under the fast SC model."""
        scores = self.fast_forward(images, inject_noise)
        return np.argmax(scores, axis=1)

    def fast_accuracy(
        self, images: np.ndarray, labels: np.ndarray, inject_noise: bool = True,
        batch_size: int = 256,
    ) -> float:
        """Accuracy of the fast SC model over a labelled set."""
        correct = 0
        labels = np.asarray(labels)
        for start in range(0, images.shape[0], batch_size):
            preds = self.fast_predict(images[start : start + batch_size], inject_noise)
            correct += int((preds == labels[start : start + batch_size]).sum())
        return correct / images.shape[0]

    # -- bit-exact simulation ---------------------------------------------------

    #: Target size (bytes) for the transient XNOR-product tensors of the
    #: batched bit-exact path.  Empirically the sweet spot: large enough
    #: that the per-cycle recurrence advances thousands of block instances
    #: per NumPy call, small enough that the product tensor stays
    #: cache/bandwidth friendly instead of thrashing main memory.
    _PRODUCT_BYTES_BUDGET = 12 * 1024 * 1024

    def _auto_chunk(self, bytes_per_item: int) -> int:
        """Positions/neurons per chunk so products stay near the budget.

        Floors at 1: when a single position/neuron already exceeds the
        budget, the chunk must not multiply that oversized tensor further.
        """
        return max(1, self._PRODUCT_BYTES_BUDGET // max(1, bytes_per_item))

    def input_stream_bits(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """SNG conversion of a batch of images to input bit streams.

        This is the shared stream-generation preamble of every bit-exact
        execution path (batched and packed): quantise to the SNG
        comparator levels, then compare against **one** draw tensor shared
        across the batch -- mirroring the legacy path, where every image
        re-seeded the generator and therefore compared against the same
        draws.  Keeping it in one place is what guarantees the backends
        consume the RNG identically and stay bit-for-bit interchangeable.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (a single ``(channels, height, width)`` image
                is also accepted).
            rng: stream-generation random generator.

        Returns:
            0/1 ``uint8`` array of shape ``(batch, channels, height,
            width, N)``.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4:
            raise ShapeError(
                f"expected (batch, channels, height, width), got {images.shape}"
            )
        value = self._quantize_activations(images * 2.0 - 1.0)
        draws = rng.random(value.shape[1:] + (self.stream_length,))
        return (draws[None, ...] < ((value + 1.0) / 2.0)[..., None]).astype(np.uint8)

    #: Target bytes of live SNG comparison draws when streams are packed
    #: directly (the draws are float64 -- eight bytes per stream cycle --
    #: so bounding them is what keeps the packed data plane's stream
    #: generation an order of magnitude below the byte-per-bit paths).
    _DRAWS_BYTES_BUDGET = 16 * 1024 * 1024

    def _stream_value_chunk(self) -> int:
        """Values whose full-stream draws fit the draw-bytes budget."""
        return max(1, self._DRAWS_BYTES_BUDGET // (8 * self.stream_length))

    def _packed_comparator_streams(
        self, p: np.ndarray, rng: np.random.Generator, packer=None
    ) -> np.ndarray:
        """Chunked draw -> compare -> pack core of the word-direct paths.

        One comparison-draw row is consumed per value (last axis of
        ``p``), in C order, exactly as the byte-per-bit paths consume
        them -- this single loop is what keeps the RNG-consumption
        contract of :meth:`input_stream_words` and
        :meth:`weight_stream_words` in one place.  Leading axes of ``p``
        share the draws (the batch axis of the input SNG).

        Args:
            p: ones-probabilities of shape ``(..., V)``.
            rng: stream-generation random generator.
            packer: optional word-direct comparator kernel with the
                signature of
                :func:`repro.sc.native.pack_comparator_floats`; the draws
                come from the same RNG stream either way, so the packed
                words are bit-identical.  A packer returning ``None``
                (shape outside its fast path) falls back to the NumPy
                compare-and-pack for that chunk.

        Returns:
            ``uint64`` packed words of shape ``(..., V, ceil(N / 64))``.
        """
        from repro.sc.packed import pack_bits, words_for_length

        n = self.stream_length
        n_values = p.shape[-1]
        out = np.empty(
            p.shape + (words_for_length(n),), dtype=np.uint64
        )
        # The comparison and packing transients scale with the leading
        # (draw-sharing) axes, so the chunk shrinks by their size to keep
        # the *total* live transient near the budget, not just the draws.
        lead = max(1, int(np.prod(p.shape[:-1], dtype=np.int64)))
        chunk = max(1, self._stream_value_chunk() // lead)
        for start in range(0, n_values, chunk):
            stop = min(n_values, start + chunk)
            draws = rng.random((stop - start, n))
            if packer is not None and packer(
                draws, p[..., start:stop], out[..., start:stop, :]
            ) is not None:
                continue
            out[..., start:stop, :] = pack_bits(
                draws < p[..., start:stop, None]
            )
        return out

    def input_stream_words(
        self, images: np.ndarray, rng: np.random.Generator, packer=None
    ) -> np.ndarray:
        """Word-packed SNG conversion of a batch of images.

        Bit-identical to ``pack_bits(self.input_stream_bits(images, rng))``
        -- same quantisation, same RNG consumption order (one draw tensor
        shared across the batch, values in C order) -- but the comparison
        draws are generated in bounded chunks along the value axis and
        packed immediately, so the full-stream ``float64`` draw tensor and
        the byte-per-bit stream tensor never exist.  This is the packed
        backend's input preamble.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (a single ``(channels, height, width)`` image
                is also accepted).
            rng: stream-generation random generator.

        Returns:
            ``uint64`` array of shape ``(batch, channels, height, width,
            ceil(N / 64))``.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4:
            raise ShapeError(
                f"expected (batch, channels, height, width), got {images.shape}"
            )
        value = self._quantize_activations(images * 2.0 - 1.0)
        p = ((value + 1.0) / 2.0).reshape(value.shape[0], -1)
        words = self._packed_comparator_streams(p, rng, packer=packer)
        return words.reshape(value.shape + (words.shape[-1],))

    def weight_stream_words(
        self, weights: np.ndarray, rng: np.random.Generator, packer=None
    ) -> np.ndarray:
        """Word-packed bipolar weight streams (shape + ``(ceil(N/64),)``).

        Bit-identical to ``pack_bits(self.weight_stream_bits(weights,
        rng))`` with identical RNG consumption, generated in bounded
        chunks like :meth:`input_stream_words` -- for a wide FC layer at
        long stream lengths this removes what used to be the single
        largest allocation of a packed forward pass (the ``float64`` draw
        tensor over every weight).
        """
        q = self.quantized_weights(weights)
        words = self._packed_comparator_streams(
            ((q + 1.0) / 2.0).reshape(-1), rng, packer=packer
        )
        return words.reshape(np.shape(q) + (words.shape[-1],))

    def bit_exact_forward_batch(
        self,
        images: np.ndarray,
        rng: np.random.Generator | None = None,
        position_chunk: int | None = None,
        return_streams: bool = False,
    ) -> np.ndarray:
        """Run a batch of images through actual bit streams and the blocks.

        One call advances every block instance of a layer (every output
        pixel / neuron, for all images) through the counter recurrences
        simultaneously.  The stream randomness is drawn exactly as the
        single-image path always did -- one comparison-draw tensor shared
        by all images, then per-layer weight and bias streams -- so each
        image's scores are bit-identical to running
        :meth:`bit_exact_forward_legacy` on it alone.

        Args:
            images: ``(batch, channels, height, width)`` images in
                ``[0, 1]`` (a single ``(channels, height, width)`` image is
                also accepted).
            rng: stream-generation random generator.
            position_chunk: optional cap on CONV output positions / FC
                neurons processed per product tensor; defaults to an
                automatic choice fitting the memory budget.
            return_streams: return the raw categorization-output bit
                streams instead of their decoded means.  Any prefix of
                these streams is exactly what the hardware would have
                produced had it stopped that many cycles in (every block
                is causal in the stream axis), which is what the
                progressive checkpoints of the batched backend decode.

        Returns:
            ``(batch, n_classes)`` decoded class scores, or -- with
            ``return_streams`` -- the 0/1 ``uint8`` output streams of
            shape ``(batch, n_classes, N)``.
        """
        rng = rng or np.random.default_rng(self.seed)
        n = self.stream_length
        bits = self.input_stream_bits(images, rng)
        dense_layers = [l for l in self.network.layers if isinstance(l, Dense)]
        dense_seen = 0
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                bits = self._batched_conv(bits, layer, rng, position_chunk)
            elif isinstance(layer, AvgPool2D):
                bits = self._batched_pool(bits, layer)
            elif isinstance(layer, Flatten):
                bits = bits.reshape(bits.shape[0], -1, n)
            elif isinstance(layer, Dense):
                dense_seen += 1
                is_output = dense_seen == len(dense_layers)
                bits = self._batched_dense(bits, layer, rng, is_output, position_chunk)
            elif isinstance(layer, (HardwareActivation, ClipActivation, LogitScale)):
                continue
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"cannot map layer {type(layer).__name__} to SC hardware"
                )
        if return_streams:
            return bits
        return 2.0 * bits.mean(axis=-1) - 1.0

    def bit_exact_forward(
        self, image: np.ndarray, rng: np.random.Generator | None = None,
        position_chunk: int | None = None,
    ) -> np.ndarray:
        """Run a single image through actual bit streams and the blocks.

        Args:
            image: ``(channels, height, width)`` image in ``[0, 1]``.
            rng: stream-generation random generator.
            position_chunk: how many output positions to process at a time
                (memory / speed trade-off); ``None`` picks automatically.

        Returns:
            ``(n_classes,)`` decoded class scores.
        """
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 3:
            raise ShapeError(f"expected (channels, height, width), got {image.shape}")
        return self.bit_exact_forward_batch(
            image[None], rng=rng, position_chunk=position_chunk
        )[0]

    def _batched_conv(
        self,
        bits: np.ndarray,
        layer: Conv2D,
        rng: np.random.Generator,
        position_chunk: int | None,
    ) -> np.ndarray:
        n = self.stream_length
        batch, channels, height, width, _ = bits.shape
        kernel = layer.kernel_size
        stride = layer.stride
        pad = (kernel - 1) // 2 if layer.padding == "same" else 0
        if pad:
            padded = np.pad(
                bits, ((0, 0), (0, 0), (pad, pad), (pad, pad), (0, 0))
            )
        else:
            padded = bits
        out_h = (height + 2 * pad - kernel) // stride + 1
        out_w = (width + 2 * pad - kernel) // stride + 1
        # Zero-copy sliding windows over (H, W); patches are materialised
        # only one position chunk at a time, so peak memory is bounded by
        # the chunk, never by the whole im2col tensor.
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kernel, kernel), axis=(2, 3)
        )[:, :, ::stride, ::stride]  # (B, C, out_h, out_w, N, k, k)
        weight_bits = self.weight_stream_bits(layer.weights, rng)  # (out_ch, fan_in, N)
        bias_bits = self.weight_stream_bits(layer.bias, rng)  # (out_ch, N)
        out_ch = layer.out_channels
        fan_in = layer.fan_in
        block = SorterFeatureExtractionBlock(fan_in + 1)
        chunk = position_chunk or self._auto_chunk(batch * out_ch * (fan_in + 2) * n)
        row_chunk = max(1, chunk // out_w)
        output = np.empty((batch, out_ch, out_h * out_w, n), dtype=np.uint8)
        for row_start in range(0, out_h, row_chunk):
            row_end = min(out_h, row_start + row_chunk)
            # (B, C, rows, out_w, N, k, k) -> (B, rows*out_w, fan_in, N),
            # with the im2col channel-major (C, kh, kw) patch layout.
            p_chunk = np.ascontiguousarray(
                windows[:, :, row_start:row_end].transpose(0, 2, 3, 1, 5, 6, 4)
            ).reshape(batch, (row_end - row_start) * out_w, fan_in, n)
            pc = p_chunk.shape[1]
            products = np.empty((batch, pc, out_ch, fan_in + 1, n), dtype=np.uint8)
            np.bitwise_xor(
                p_chunk[:, :, None, :, :],
                weight_bits[None, None, :, :, :],
                out=products[..., :fan_in, :],
            )
            np.bitwise_xor(
                products[..., :fan_in, :], 1, out=products[..., :fan_in, :]
            )
            products[..., fan_in, :] = bias_bits[None, None, :, :]
            activated = block.forward_products(products)  # (B, pc, out_ch, N)
            start = row_start * out_w
            output[:, :, start : start + pc] = activated.transpose(0, 2, 1, 3)
        return output.reshape(batch, out_ch, out_h, out_w, n)

    def _batched_pool(self, bits: np.ndarray, layer: AvgPool2D) -> np.ndarray:
        batch, channels, height, width, n = bits.shape
        p = layer.pool_size
        out_h, out_w = height // p, width // p
        trimmed = bits[:, :, : out_h * p, : out_w * p]
        grouped = trimmed.reshape(batch, channels, out_h, p, out_w, p, n)
        grouped = grouped.transpose(0, 1, 2, 4, 3, 5, 6).reshape(
            batch, channels, out_h, out_w, p * p, n
        )
        block = SorterAveragePoolingBlock(p * p)
        return block.forward_bits(grouped)  # closed form: (B, C, out_h, out_w, N)

    def _batched_dense(
        self,
        bits: np.ndarray,
        layer: Dense,
        rng: np.random.Generator,
        is_output: bool,
        neuron_chunk: int | None,
    ) -> np.ndarray:
        n = self.stream_length
        batch = bits.shape[0]
        if bits.shape[1:] != (layer.in_features, n):
            raise ShapeError(
                f"dense layer expects (batch, {layer.in_features}, {n}) streams, "
                f"got {bits.shape}"
            )
        in_features = layer.in_features
        weight_bits = self.weight_stream_bits(layer.weights, rng)  # (out, in, N)
        bias_bits = self.weight_stream_bits(layer.bias, rng)  # (out, N)
        chunk = neuron_chunk or self._auto_chunk(batch * (in_features + 1) * n)
        outputs = np.empty((batch, layer.out_features, n), dtype=np.uint8)
        if is_output:
            block = MajorityChainCategorizationBlock(in_features)
        else:
            block = SorterFeatureExtractionBlock(in_features + 1)
        for start in range(0, layer.out_features, chunk):
            w_chunk = weight_bits[start : start + chunk]  # (oc, in, N)
            oc = w_chunk.shape[0]
            if is_output:
                products = np.bitwise_xor(bits[:, None, :, :], w_chunk[None, :, :, :])
                np.bitwise_xor(products, 1, out=products)
            else:
                products = np.empty((batch, oc, in_features + 1, n), dtype=np.uint8)
                np.bitwise_xor(
                    bits[:, None, :, :],
                    w_chunk[None, :, :, :],
                    out=products[..., :in_features, :],
                )
                np.bitwise_xor(
                    products[..., :in_features, :],
                    1,
                    out=products[..., :in_features, :],
                )
                products[..., in_features, :] = bias_bits[None, start : start + oc, :]
            outputs[:, start : start + oc] = block.forward_products(products)
        return outputs

    # -- legacy bit-exact reference ---------------------------------------------

    def bit_exact_forward_legacy(
        self, image: np.ndarray, rng: np.random.Generator | None = None,
        position_chunk: int = 32, return_streams: bool = False,
    ) -> np.ndarray:
        """Per-image, small-chunk bit-exact simulation (legacy reference).

        Kept verbatim as the equivalence oracle for
        :meth:`bit_exact_forward_batch` and as the "legacy" end-to-end
        baseline timed by ``benchmarks/bench_perf.py``.

        Args:
            image: ``(channels, height, width)`` image in ``[0, 1]``.
            rng: stream-generation random generator.
            position_chunk: how many output positions to process at a time.
            return_streams: return the raw ``(n_classes, N)`` output bit
                streams instead of the decoded scores (see
                :meth:`bit_exact_forward_batch`).

        Returns:
            ``(n_classes,)`` decoded class scores (or the output streams).
        """
        rng = rng or np.random.default_rng(self.seed)
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 3:
            raise ShapeError(f"expected (channels, height, width), got {image.shape}")
        n = self.stream_length
        value = self._quantize_activations(image * 2.0 - 1.0)
        # Feature map as bit streams: (channels, height, width, N).
        bits = (rng.random(value.shape + (n,)) < ((value + 1.0) / 2.0)[..., None]).astype(
            np.uint8
        )
        dense_layers = [l for l in self.network.layers if isinstance(l, Dense)]
        dense_seen = 0
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                bits = self._bit_exact_conv(bits, layer, rng, position_chunk)
            elif isinstance(layer, AvgPool2D):
                bits = self._bit_exact_pool(bits, layer)
            elif isinstance(layer, Flatten):
                bits = bits.reshape(-1, n)
            elif isinstance(layer, Dense):
                dense_seen += 1
                is_output = dense_seen == len(dense_layers)
                bits = self._bit_exact_dense(bits, layer, rng, is_output, position_chunk)
            elif isinstance(layer, (HardwareActivation, ClipActivation, LogitScale)):
                continue
            else:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"cannot map layer {type(layer).__name__} to SC hardware"
                )
        if return_streams:
            return bits
        return 2.0 * bits.mean(axis=-1) - 1.0

    def weight_stream_bits(
        self, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Bipolar bit streams for quantised weights (shape + ``(N,)``).

        Part of the shared stream-generation contract (see
        :meth:`input_stream_bits`): every bit-exact execution backend
        draws its weight and bias streams through this method, in layer
        order, so the RNG consumption -- and therefore the simulated
        streams -- are identical across backends.
        """
        q = self.quantized_weights(weights)
        p = (q + 1.0) / 2.0
        return (rng.random(q.shape + (self.stream_length,)) < p[..., None]).astype(np.uint8)

    def _bit_exact_conv(
        self,
        bits: np.ndarray,
        layer: Conv2D,
        rng: np.random.Generator,
        position_chunk: int,
    ) -> np.ndarray:
        n = self.stream_length
        channels, height, width, _ = bits.shape
        pad = (layer.kernel_size - 1) // 2 if layer.padding == "same" else 0
        # im2col over the stream axis: treat N as extra trailing axes by
        # moving it into the batch dimension of im2col's channel layout.
        stacked = bits.transpose(3, 0, 1, 2)  # (N, C, H, W)
        patches, out_h, out_w = im2col(stacked, layer.kernel_size, layer.stride, pad)
        # patches: (N, positions, fan_in) -> (positions, fan_in, N)
        patches = patches.transpose(1, 2, 0).astype(np.uint8)
        weight_bits = self.weight_stream_bits(layer.weights, rng)  # (out_ch, fan_in, N)
        bias_bits = self.weight_stream_bits(layer.bias, rng)  # (out_ch, N)
        block = SorterFeatureExtractionBlock(layer.fan_in + 1)
        n_positions = patches.shape[0]
        output = np.empty((layer.out_channels, n_positions, n), dtype=np.uint8)
        for start in range(0, n_positions, position_chunk):
            chunk = patches[start : start + position_chunk]  # (chunk, fan_in, N)
            products = np.logical_not(
                np.logical_xor(chunk[:, None, :, :], weight_bits[None, :, :, :])
            ).astype(np.uint8)  # (chunk, out_ch, fan_in, N)
            bias = np.broadcast_to(
                bias_bits[None, :, None, :], products.shape[:2] + (1, n)
            )
            products = np.concatenate([products, bias], axis=2)
            activated = block.forward_products(products)  # (chunk, out_ch, N)
            output[:, start : start + chunk.shape[0]] = activated.transpose(1, 0, 2)
        return output.reshape(layer.out_channels, out_h, out_w, n)

    def _bit_exact_pool(self, bits: np.ndarray, layer: AvgPool2D) -> np.ndarray:
        channels, height, width, n = bits.shape
        p = layer.pool_size
        out_h, out_w = height // p, width // p
        trimmed = bits[:, : out_h * p, : out_w * p]
        grouped = trimmed.reshape(channels, out_h, p, out_w, p, n)
        grouped = grouped.transpose(0, 1, 3, 2, 4, 5).reshape(
            channels * out_h * out_w, p * p, n
        )
        block = SorterAveragePoolingBlock(p * p)
        pooled = block.forward_bits_reference(grouped)
        return pooled.reshape(channels, out_h, out_w, n)

    def _bit_exact_dense(
        self,
        bits: np.ndarray,
        layer: Dense,
        rng: np.random.Generator,
        is_output: bool,
        neuron_chunk: int,
    ) -> np.ndarray:
        n = self.stream_length
        if bits.shape != (layer.in_features, n):
            raise ShapeError(
                f"dense layer expects ({layer.in_features}, {n}) streams, got {bits.shape}"
            )
        weight_bits = self.weight_stream_bits(layer.weights, rng)  # (out, in, N)
        bias_bits = self.weight_stream_bits(layer.bias, rng)  # (out, N)
        outputs = np.empty((layer.out_features, n), dtype=np.uint8)
        if is_output:
            block = MajorityChainCategorizationBlock(layer.in_features)
        else:
            block = SorterFeatureExtractionBlock(layer.in_features + 1)
        for start in range(0, layer.out_features, neuron_chunk):
            w_chunk = weight_bits[start : start + neuron_chunk]
            products = np.logical_not(
                np.logical_xor(bits[None, :, :], w_chunk)
            ).astype(np.uint8)  # (chunk, in, N)
            if is_output:
                outputs[start : start + w_chunk.shape[0]] = block.forward_products(products)
            else:
                bias = bias_bits[start : start + w_chunk.shape[0], None, :]
                products = np.concatenate([products, bias], axis=1)
                outputs[start : start + w_chunk.shape[0]] = block.forward_products(products)
        return outputs
