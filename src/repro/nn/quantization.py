"""SC-aware weight quantization.

In the proposed hardware, weights are stored on chip as ``n``-bit binary
magnitudes and converted to bipolar streams by the SNG block, so the values
the inference actually uses are quantised to the ``2**n`` comparator levels
of the bipolar range ``[-1, 1]``.  These helpers perform that quantisation
(and its inverse) on arrays and on whole networks, so the fast SC inference
model and the bit-exact simulation both see the stored precision.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Conv2D, Dense, Network

__all__ = [
    "quantize_weights",
    "quantization_codes",
    "dequantize_weights",
    "quantize_network",
]


def quantize_weights(weights: np.ndarray, n_bits: int = 10) -> np.ndarray:
    """Quantise bipolar weights to the SNG's ``2**n_bits`` comparator levels.

    Values are clipped to ``[-1, 1]`` first (the SC representable range) and
    then rounded to the nearest level.

    Args:
        weights: arbitrary-shape float array.
        n_bits: stored binary precision.

    Returns:
        Float array of the same shape containing the quantised values.
    """
    if n_bits < 1 or n_bits > 31:
        raise ConfigurationError(f"n_bits must be in [1, 31], got {n_bits}")
    levels = 1 << n_bits
    clipped = np.clip(np.asarray(weights, dtype=np.float64), -1.0, 1.0)
    codes = np.rint((clipped + 1.0) / 2.0 * levels)
    codes = np.clip(codes, 0, levels)
    return codes / levels * 2.0 - 1.0


def quantization_codes(weights: np.ndarray, n_bits: int = 10) -> np.ndarray:
    """Integer comparator codes of bipolar weights (the on-chip storage).

    ``dequantize_weights(quantization_codes(w, n), n)`` reproduces
    ``quantize_weights(w, n)`` exactly (same clip/round, same final
    division), which is what lets model artifacts store the codes
    natively and still yield bit-identical streams on load.
    """
    if n_bits < 1 or n_bits > 31:
        raise ConfigurationError(f"n_bits must be in [1, 31], got {n_bits}")
    levels = 1 << n_bits
    clipped = np.clip(np.asarray(weights, dtype=np.float64), -1.0, 1.0)
    codes = np.rint((clipped + 1.0) / 2.0 * levels)
    return np.clip(codes, 0, levels).astype(np.int64)


def dequantize_weights(codes: np.ndarray, n_bits: int = 10) -> np.ndarray:
    """Map integer comparator codes back to bipolar values."""
    if n_bits < 1 or n_bits > 31:
        raise ConfigurationError(f"n_bits must be in [1, 31], got {n_bits}")
    levels = 1 << n_bits
    codes = np.asarray(codes, dtype=np.float64)
    return codes / levels * 2.0 - 1.0


def quantize_network(network: Network, n_bits: int = 10) -> Network:
    """Quantise every Conv2D/Dense weight (and bias) of a network in place.

    Returns the same network object for chaining.
    """
    for layer in network.layers:
        if isinstance(layer, (Conv2D, Dense)):
            layer.weights[...] = quantize_weights(layer.weights, n_bits)
            layer.bias[...] = quantize_weights(layer.bias, n_bits)
    return network
