"""Neural-network layer of the framework.

``repro.nn`` provides the float reference network (layers with
backpropagation, SC-aware training), the Table 8 architectures (SNN and
DNN), and the SC-domain inference engine that maps every layer onto the
proposed AQFP blocks.  Training happens in float with the hardware transfer
curve as activation and weights constrained to ``[-1, 1]``; inference can
run either in a fast statistical SC model or bit-exactly through the block
implementations.
"""

from repro.nn.architectures import (
    LayerSpec,
    build_dnn,
    build_network,
    build_snn,
    dnn_layer_specs,
    snn_layer_specs,
)
from repro.nn.inference import ScInferenceEngine
from repro.nn.layers import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    Network,
    softmax_cross_entropy,
)
from repro.nn.quantization import dequantize_weights, quantize_network, quantize_weights
from repro.nn.sc_layers import ScNetworkMapper
from repro.nn.training import Trainer, TrainingConfig

__all__ = [
    "Conv2D",
    "Dense",
    "AvgPool2D",
    "Flatten",
    "ClipActivation",
    "HardwareActivation",
    "Network",
    "softmax_cross_entropy",
    "quantize_weights",
    "dequantize_weights",
    "quantize_network",
    "Trainer",
    "TrainingConfig",
    "LayerSpec",
    "snn_layer_specs",
    "dnn_layer_specs",
    "build_network",
    "build_snn",
    "build_dnn",
    "ScNetworkMapper",
    "ScInferenceEngine",
]
