"""Float reference layers with backpropagation.

A deliberately small, dependency-free layer zoo sufficient for the paper's
two architectures: same-padded 2-D convolutions (via im2col), average
pooling, dense layers, the hardware-matched activation, and a softmax
cross-entropy loss.  All layers operate on ``(batch, channels, height,
width)`` or ``(batch, features)`` arrays and implement ``forward`` /
``backward`` plus parameter/gradient accessors for the optimiser.

Weights are trained with SC in mind: layers clip their weights to
``[-1, 1]`` after every update (see :class:`~repro.nn.training.Trainer`),
and activations use the measured transfer curve of the sorter-based
feature-extraction block so that quantised SC inference sees the function it
was trained for.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.blocks.feature_extraction import SorterTransferCurve, sorter_activation
from repro.errors import ConfigurationError, ShapeError

__all__ = [
    "Layer",
    "Conv2D",
    "AvgPool2D",
    "Dense",
    "Flatten",
    "ClipActivation",
    "HardwareActivation",
    "LogitScale",
    "Network",
    "softmax_cross_entropy",
    "im2col",
]


class Layer(abc.ABC):
    """Base class: a differentiable module with optional parameters."""

    @abc.abstractmethod
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the input gradient."""

    def parameters(self) -> list[np.ndarray]:
        """Trainable parameter arrays (shared references)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :meth:`parameters` order."""
        return []

    def clip_parameters(self, limit: float = 1.0) -> None:
        """Clip parameters into ``[-limit, limit]`` (SC weight constraint)."""
        for param in self.parameters():
            np.clip(param, -limit, limit, out=param)


def im2col(
    images: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> tuple[np.ndarray, int, int]:
    """Extract convolution patches.

    Args:
        images: ``(batch, channels, height, width)`` input.
        kernel: square kernel size.
        stride: convolution stride.
        padding: symmetric zero padding.

    Returns:
        ``(patches, out_h, out_w)`` where patches has shape
        ``(batch, out_h * out_w, channels * kernel * kernel)``.
    """
    if images.ndim != 4:
        raise ShapeError(f"expected 4-D input, got shape {images.shape}")
    batch, channels, height, width = images.shape
    if padding:
        images = np.pad(
            images, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError("kernel larger than padded input")
    strides = images.strides
    window_view = np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    patches = window_view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(patches), out_h, out_w


class Conv2D(Layer):
    """Same- or valid-padded 2-D convolution.

    Args:
        in_channels: input channel count.
        out_channels: number of filters.
        kernel_size: square kernel size.
        stride: convolution stride.
        padding: ``"same"`` or ``"valid"``.
        rng: generator used for weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: str = "same",
        rng: np.random.Generator | None = None,
    ) -> None:
        if padding not in ("same", "valid"):
            raise ConfigurationError(f"padding must be 'same' or 'valid', got {padding!r}")
        if kernel_size < 1 or stride < 1:
            raise ConfigurationError("kernel_size and stride must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        scale = min(1.0, np.sqrt(2.0 / fan_in))
        self.weights = rng.normal(0.0, scale, size=(out_channels, fan_in))
        self.bias = np.zeros(out_channels)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: tuple[np.ndarray, int, int, tuple[int, ...]] | None = None

    @property
    def fan_in(self) -> int:
        """Products per output neuron (the SC block input size ``M``)."""
        return self.in_channels * self.kernel_size * self.kernel_size

    def _pad_amount(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        patches, out_h, out_w = im2col(
            inputs, self.kernel_size, self.stride, self._pad_amount()
        )
        output = patches @ self.weights.T + self.bias
        if training:
            self._cache = (patches, out_h, out_w, inputs.shape)
        return output.transpose(0, 2, 1).reshape(
            inputs.shape[0], self.out_channels, out_h, out_w
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(training=True)")
        patches, out_h, out_w, input_shape = self._cache
        batch = grad_output.shape[0]
        grad_flat = grad_output.reshape(batch, self.out_channels, out_h * out_w)
        grad_flat = grad_flat.transpose(0, 2, 1)  # (batch, positions, out_channels)

        self.grad_weights = np.einsum("bpo,bpf->of", grad_flat, patches) / batch
        self.grad_bias = grad_flat.sum(axis=(0, 1)) / batch

        grad_patches = grad_flat @ self.weights  # (batch, positions, fan_in)
        return self._col2im(grad_patches, input_shape, out_h, out_w)

    def _col2im(
        self,
        grad_patches: np.ndarray,
        input_shape: tuple[int, ...],
        out_h: int,
        out_w: int,
    ) -> np.ndarray:
        batch, channels, height, width = input_shape
        pad = self._pad_amount()
        padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad))
        k = self.kernel_size
        grad_patches = grad_patches.reshape(batch, out_h, out_w, channels, k, k)
        for ky in range(k):
            for kx in range(k):
                padded[
                    :,
                    :,
                    ky : ky + out_h * self.stride : self.stride,
                    kx : kx + out_w * self.stride : self.stride,
                ] += grad_patches[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
        if pad:
            return padded[:, :, pad:-pad, pad:-pad]
        return padded

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]


class AvgPool2D(Layer):
    """Non-overlapping average pooling (the paper uses 2x2, stride 2)."""

    def __init__(self, pool_size: int = 2) -> None:
        if pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if inputs.ndim != 4:
            raise ShapeError(f"expected 4-D input, got {inputs.shape}")
        batch, channels, height, width = inputs.shape
        p = self.pool_size
        out_h, out_w = height // p, width // p
        if out_h == 0 or out_w == 0:
            raise ShapeError("input smaller than the pooling window")
        trimmed = inputs[:, :, : out_h * p, : out_w * p]
        if training:
            self._input_shape = inputs.shape
        return trimmed.reshape(batch, channels, out_h, p, out_w, p).mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("backward called before forward(training=True)")
        batch, channels, height, width = self._input_shape
        p = self.pool_size
        grad = np.repeat(np.repeat(grad_output, p, axis=2), p, axis=3) / (p * p)
        padded = np.zeros(self._input_shape)
        padded[:, :, : grad.shape[2], : grad.shape[3]] = grad
        return padded


class Flatten(Layer):
    """Flatten spatial maps to feature vectors."""

    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("backward called before forward(training=True)")
        return grad_output.reshape(self._input_shape)


class Dense(Layer):
    """Fully connected layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ConfigurationError("feature counts must be >= 1")
        rng = rng or np.random.default_rng(0)
        scale = min(1.0, np.sqrt(2.0 / in_features))
        self.in_features = in_features
        self.out_features = out_features
        self.weights = rng.normal(0.0, scale, size=(out_features, in_features))
        self.bias = np.zeros(out_features)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: np.ndarray | None = None

    @property
    def fan_in(self) -> int:
        """Products per output neuron (the SC block input size)."""
        return self.in_features

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"expected input of shape (batch, {self.in_features}), got {inputs.shape}"
            )
        if training:
            self._inputs = inputs
        return inputs @ self.weights.T + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ShapeError("backward called before forward(training=True)")
        batch = grad_output.shape[0]
        self.grad_weights = grad_output.T @ self._inputs / batch
        self.grad_bias = grad_output.sum(axis=0) / batch
        return grad_output @ self.weights

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]


class ClipActivation(Layer):
    """Ideal activation of equation (1): ``clip(x, -1, 1)``."""

    def __init__(self) -> None:
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._inputs = inputs
        return sorter_activation(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ShapeError("backward called before forward(training=True)")
        mask = (self._inputs > -1.0) & (self._inputs < 1.0)
        return grad_output * mask


class HardwareActivation(Layer):
    """Measured transfer curve of the sorter-based feature-extraction block.

    When ``stream_length`` is given, the layer also injects the stochastic
    inner-product noise of finite streams (standard deviation
    ``sqrt(fan_in / stream_length)`` on the pre-activation) during training
    forward passes.  This is the SC-aware training the paper refers to: the
    network learns to push pre-activations into the saturated region where
    stream noise cannot flip the activation, which is what lets the
    quantised stochastic inference retain the float accuracy.

    Args:
        fan_in: SC block input size ``M`` whose curve should be used.
        curve: optionally a pre-built :class:`SorterTransferCurve` (shared
            across layers in tests to avoid re-estimation).
        stream_length: stochastic stream length assumed for noise-aware
            training; ``None`` disables noise injection.
        seed: noise generator seed.
    """

    def __init__(
        self,
        fan_in: int,
        curve: SorterTransferCurve | None = None,
        stream_length: int | None = None,
        seed: int = 0,
    ) -> None:
        if fan_in < 1:
            raise ConfigurationError("fan_in must be >= 1")
        if stream_length is not None and stream_length <= 0:
            raise ConfigurationError("stream_length must be positive when given")
        self.fan_in = fan_in
        self.stream_length = stream_length
        self._curve = curve or SorterTransferCurve.cached(fan_in, stream_length=4096)
        self._rng = np.random.default_rng(seed)
        self._inputs: np.ndarray | None = None

    @property
    def curve(self) -> SorterTransferCurve:
        """The transfer curve backing this activation."""
        return self._curve

    @property
    def training_noise_std(self) -> float:
        """Pre-activation noise injected during SC-aware training."""
        if self.stream_length is None:
            return 0.0
        return float(np.sqrt(self.fan_in / self.stream_length))

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._inputs = inputs
            noise_std = self.training_noise_std
            if noise_std > 0.0:
                inputs = inputs + self._rng.normal(0.0, noise_std, size=inputs.shape)
        return self._curve(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ShapeError("backward called before forward(training=True)")
        return grad_output * self._curve.derivative(self._inputs)


class LogitScale(Layer):
    """Divide logits by a constant margin scale.

    Appended after the output layer during SC-aware training: the softmax
    loss then only saturates once the *raw* logit differences reach roughly
    ``scale``, which forces the network to learn class margins large enough
    to survive the stochastic noise of the categorization block (whose score
    resolution is about ``fan_in / sqrt(N)`` in raw inner-product units).
    The argmax (and therefore accuracy) is unaffected.
    """

    def __init__(self, scale: float) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        self.scale = float(scale)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return inputs / self.scale

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output / self.scale


class Network:
    """A simple sequential network.

    Args:
        layers: ordered layer list.
        name: label used in reports.
    """

    def __init__(self, layers: Sequence[Layer], name: str = "network") -> None:
        if not layers:
            raise ConfigurationError("a network needs at least one layer")
        self.layers = list(layers)
        self.name = name

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers in sequence."""
        value = inputs
        for layer in self.layers:
            value = layer.forward(value, training=training)
        return value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers in reverse order."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        """All trainable parameters in layer order."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        """All gradients in the same order as :meth:`parameters`."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def clip_parameters(self, limit: float = 1.0) -> None:
        """Clip every parameter into ``[-limit, limit]``."""
        for layer in self.layers:
            layer.clip_parameters(limit)

    def predict(self, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions for a batch of images."""
        outputs = []
        for start in range(0, inputs.shape[0], batch_size):
            logits = self.forward(inputs[start : start + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray, batch_size: int = 256) -> float:
        """Classification accuracy on the given set."""
        predictions = self.predict(inputs, batch_size)
        return float((predictions == np.asarray(labels)).mean())


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient w.r.t. the logits."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ShapeError("labels and logits batch sizes differ")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probabilities = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    loss = float(-np.log(probabilities[np.arange(batch), labels] + 1e-12).mean())
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad
