"""SC-aware training loop.

The paper trains its networks "taking all limitations of AQFP and SC into
consideration": weights are kept inside the bipolar range, activations use
the hardware transfer curve, and pooling is averaging.  The trainer here
implements exactly that -- plain SGD with momentum (or Adam) plus a weight
clip after every step -- on the float reference network, which is then
quantised and handed to the SC inference engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.nn.layers import Network, softmax_cross_entropy

__all__ = ["TrainingConfig", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of a training run.

    Attributes:
        epochs: passes over the training set.
        batch_size: minibatch size.
        learning_rate: optimiser step size (the default suits Adam).
        momentum: SGD momentum (ignored by Adam).
        optimizer: ``"sgd"`` or ``"adam"``.
        weight_limit: post-step clip applied to all parameters (the SC
            representable range); ``None`` disables clipping.
        seed: shuffling seed.
    """

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 0.002
    momentum: float = 0.9
    optimizer: str = "adam"
    weight_limit: float | None = 1.0
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise TrainingError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if self.optimizer not in ("sgd", "adam"):
            raise TrainingError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected during training."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    test_accuracies: list[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        """Accuracy on the held-out set after the last epoch."""
        if not self.test_accuracies:
            raise TrainingError("no test accuracy recorded")
        return self.test_accuracies[-1]


class Trainer:
    """Minibatch trainer for :class:`~repro.nn.layers.Network`.

    Args:
        network: the network to train (modified in place).
        config: training hyper-parameters.
    """

    def __init__(self, network: Network, config: TrainingConfig | None = None) -> None:
        self.network = network
        self.config = config or TrainingConfig()
        self._velocity: list[np.ndarray] | None = None
        self._adam_m: list[np.ndarray] | None = None
        self._adam_v: list[np.ndarray] | None = None
        self._adam_t = 0

    def _step(self, learning_rate: float) -> None:
        params = self.network.parameters()
        grads = self.network.gradients()
        if len(params) != len(grads):
            raise TrainingError("parameter/gradient count mismatch")
        if self.config.optimizer == "sgd":
            if self._velocity is None:
                self._velocity = [np.zeros_like(p) for p in params]
            for param, grad, velocity in zip(params, grads, self._velocity):
                velocity *= self.config.momentum
                velocity -= learning_rate * grad
                param += velocity
        else:  # adam
            if self._adam_m is None:
                self._adam_m = [np.zeros_like(p) for p in params]
                self._adam_v = [np.zeros_like(p) for p in params]
            self._adam_t += 1
            beta1, beta2, eps = 0.9, 0.999, 1e-8
            for param, grad, m, v in zip(params, grads, self._adam_m, self._adam_v):
                m *= beta1
                m += (1 - beta1) * grad
                v *= beta2
                v += (1 - beta2) * grad * grad
                m_hat = m / (1 - beta1 ** self._adam_t)
                v_hat = v / (1 - beta2 ** self._adam_t)
                param -= learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        if self.config.weight_limit is not None:
            self.network.clip_parameters(self.config.weight_limit)

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        test_images: np.ndarray | None = None,
        test_labels: np.ndarray | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train the network and return per-epoch metrics.

        Args:
            train_images: ``(n, channels, height, width)`` or ``(n, features)``.
            train_labels: integer class labels.
            test_images / test_labels: optional held-out set evaluated after
                every epoch.
            verbose: print a one-line summary per epoch.
        """
        train_images = np.asarray(train_images, dtype=np.float64)
        train_labels = np.asarray(train_labels)
        if train_images.shape[0] != train_labels.shape[0]:
            raise TrainingError("image/label count mismatch")
        history = TrainingHistory()
        rng = np.random.default_rng(self.config.seed)
        n = train_images.shape[0]
        for epoch in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_losses = []
            correct = 0
            for start in range(0, n, self.config.batch_size):
                batch_idx = order[start : start + self.config.batch_size]
                images = train_images[batch_idx]
                labels = train_labels[batch_idx]
                logits = self.network.forward(images, training=True)
                loss, grad = softmax_cross_entropy(logits, labels)
                self.network.backward(grad)
                self._step(self.config.learning_rate)
                epoch_losses.append(loss)
                correct += int((np.argmax(logits, axis=1) == labels).sum())
            history.losses.append(float(np.mean(epoch_losses)))
            history.train_accuracies.append(correct / n)
            if test_images is not None and test_labels is not None:
                history.test_accuracies.append(
                    self.network.accuracy(np.asarray(test_images, dtype=np.float64), test_labels)
                )
            if verbose:
                test_acc = history.test_accuracies[-1] if history.test_accuracies else float("nan")
                print(
                    f"epoch {epoch + 1}/{self.config.epochs} "
                    f"loss={history.losses[-1]:.4f} "
                    f"train_acc={history.train_accuracies[-1]:.4f} "
                    f"test_acc={test_acc:.4f}"
                )
        return history
