"""High-level SC inference engine (a thin facade over execution backends).

:class:`ScInferenceEngine` is the user-facing entry point: give it a
trained float network and evaluate it under any registered execution
backend -- ``engine.evaluate(images, labels, backend="bit-exact-packed")``
-- or construct backends directly with :meth:`ScInferenceEngine.backend`.
The historical mode-specific methods (``evaluate_float``,
``evaluate_sc_fast``, ``evaluate_sc_bit_exact``) remain as thin wrappers
over the corresponding backends, and the engine still exposes the block
inventory used for the network-level hardware roll-up (Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import default_config
from repro.errors import ConfigurationError
from repro.nn.layers import Network
from repro.nn.sc_layers import LayerInventory, ScNetworkMapper

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.backends.base import Backend

__all__ = ["InferenceResult", "ScInferenceEngine"]


@dataclass(frozen=True)
class InferenceResult:
    """Accuracy summary of one evaluation.

    Attributes:
        accuracy: fraction of correctly classified images.
        n_images: number of images evaluated.
        stream_length: stochastic stream length used.
        mode: name of the execution backend that produced the scores
            (``"float"``, ``"sc-fast"``, ``"bit-exact-packed"``, ...; the
            legacy ``evaluate_sc_bit_exact`` wrapper reports its
            historical ``"sc-bit-exact"`` label).
    """

    accuracy: float
    n_images: int
    stream_length: int
    mode: str


class ScInferenceEngine:
    """Evaluate a trained network through pluggable execution backends.

    Args:
        network: trained float network.
        weight_bits: stored weight precision for SC conversion.
        stream_length: stochastic stream length ``N``.
        seed: randomness seed for stream generation and noise.
        default_backend: registry name used when :meth:`evaluate` is called
            without an explicit backend; ``None`` falls back to
            :attr:`repro.config.ExperimentConfig.default_backend`.
    """

    def __init__(
        self,
        network: Network,
        weight_bits: int = 10,
        stream_length: int = 1024,
        seed: int = 2019,
        default_backend: str | None = None,
    ) -> None:
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        self.network = network
        self.mapper = ScNetworkMapper(network, weight_bits, stream_length, seed)
        self.stream_length = int(stream_length)
        # Imported lazily: repro.backends imports the mapper layer, so a
        # module-level import here would be circular.
        from repro.backends import backend_class

        name = default_backend or default_config().default_backend
        backend_class(name)  # fail fast on unknown names
        self.default_backend = name

    # -- backend facade --------------------------------------------------------

    def backend(self, name: str | None = None, **options: object) -> Backend:
        """Construct an execution backend for this engine's mapper.

        Args:
            name: registry name; ``None`` uses :attr:`default_backend`.
            **options: backend-specific constructor options (e.g.
                ``inject_noise``, ``position_chunk``).
        """
        from repro.backends import create_backend

        return create_backend(name or self.default_backend, self.mapper, **options)

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        backend: str | None = None,
        max_images: int | None = None,
        **options: object,
    ) -> InferenceResult:
        """Accuracy of the network under the named execution backend.

        Args:
            images: ``(batch, channels, height, width)`` images in ``[0, 1]``.
            labels: integer class labels.
            backend: registry name; ``None`` uses :attr:`default_backend`.
            max_images: optional cap on the number of images evaluated
                (bounds the memory of the bit-exact backends).
            **options: forwarded to the backend constructor.

        Returns:
            The accuracy summary; ``mode`` is the backend name.
        """
        if max_images is not None and max_images < 1:
            raise ConfigurationError("max_images must be >= 1")
        images = np.asarray(images)[:max_images]
        labels = np.asarray(labels)[:max_images]
        executor = self.backend(backend, **options)
        accuracy = executor.accuracy(images, labels)
        return InferenceResult(
            accuracy, len(labels), self.stream_length, executor.name
        )

    # -- historical mode-specific wrappers --------------------------------------

    def evaluate_float(self, images: np.ndarray, labels: np.ndarray) -> InferenceResult:
        """Software (floating-point) accuracy of the trained network."""
        return self.evaluate(images, labels, backend="float")

    def evaluate_sc_fast(
        self, images: np.ndarray, labels: np.ndarray, inject_noise: bool = True
    ) -> InferenceResult:
        """Accuracy under the fast statistical SC model."""
        return self.evaluate(
            images, labels, backend="sc-fast", inject_noise=inject_noise
        )

    def evaluate_sc_bit_exact(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        max_images: int = 32,
        position_chunk: int | None = None,
        backend: str = "bit-exact-batched",
    ) -> InferenceResult:
        """Accuracy of a bit-exact block simulation on a batch of images.

        All ``bit-exact-*`` backends produce identical scores; ``backend``
        selects the implementation speed (``"bit-exact-packed"`` is the
        fastest).  Reports the historical ``"sc-bit-exact"`` mode label.
        """
        result = self.evaluate(
            images,
            labels,
            backend=backend,
            max_images=max_images,
            position_chunk=position_chunk,
        )
        return InferenceResult(
            result.accuracy, result.n_images, result.stream_length, "sc-bit-exact"
        )

    def classify_bit_exact(self, image: np.ndarray) -> tuple[int, np.ndarray]:
        """Bit-exact class prediction and scores for a single image."""
        scores = self.mapper.bit_exact_forward(np.asarray(image, dtype=np.float64))
        return int(np.argmax(scores)), scores

    def layer_inventories(
        self, input_shape: tuple[int, int, int] = (1, 28, 28)
    ) -> list[LayerInventory]:
        """Per-layer block inventory (for the hardware roll-up)."""
        return self.mapper.layer_inventories(input_shape)
