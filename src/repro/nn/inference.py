"""High-level SC inference engine.

:class:`ScInferenceEngine` is the user-facing entry point: give it a trained
float network and it evaluates accuracy under the fast statistical SC model,
validates individual images bit-exactly through the blocks, and exposes the
block inventory used for the network-level hardware roll-up (Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Network
from repro.nn.sc_layers import LayerInventory, ScNetworkMapper

__all__ = ["InferenceResult", "ScInferenceEngine"]


@dataclass(frozen=True)
class InferenceResult:
    """Accuracy summary of one evaluation.

    Attributes:
        accuracy: fraction of correctly classified images.
        n_images: number of images evaluated.
        stream_length: stochastic stream length used.
        mode: ``"float"``, ``"sc-fast"`` or ``"sc-bit-exact"``.
    """

    accuracy: float
    n_images: int
    stream_length: int
    mode: str


class ScInferenceEngine:
    """Evaluate a trained network in float and in the SC domain.

    Args:
        network: trained float network.
        weight_bits: stored weight precision for SC conversion.
        stream_length: stochastic stream length ``N``.
        seed: randomness seed for stream generation and noise.
    """

    def __init__(
        self,
        network: Network,
        weight_bits: int = 10,
        stream_length: int = 1024,
        seed: int = 2019,
    ) -> None:
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        self.network = network
        self.mapper = ScNetworkMapper(network, weight_bits, stream_length, seed)
        self.stream_length = int(stream_length)

    def evaluate_float(self, images: np.ndarray, labels: np.ndarray) -> InferenceResult:
        """Software (floating-point) accuracy of the trained network."""
        images = np.asarray(images, dtype=np.float64) * 2.0 - 1.0
        accuracy = self.network.accuracy(images, labels)
        return InferenceResult(accuracy, len(labels), self.stream_length, "float")

    def evaluate_sc_fast(
        self, images: np.ndarray, labels: np.ndarray, inject_noise: bool = True
    ) -> InferenceResult:
        """Accuracy under the fast statistical SC model."""
        accuracy = self.mapper.fast_accuracy(
            np.asarray(images, dtype=np.float64), labels, inject_noise
        )
        return InferenceResult(accuracy, len(labels), self.stream_length, "sc-fast")

    def evaluate_sc_bit_exact(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        max_images: int = 32,
        position_chunk: int | None = None,
    ) -> InferenceResult:
        """Accuracy of the bit-exact block simulation on a batch of images.

        The batched engine advances every block instance of a layer (all
        images, all output pixels / neurons) through the counter
        recurrences in one vectorised call per layer, so dozens of images
        are practical; ``max_images`` only bounds memory.
        """
        if max_images < 1:
            raise ConfigurationError("max_images must be >= 1")
        images = np.asarray(images, dtype=np.float64)[:max_images]
        labels = np.asarray(labels)[:max_images]
        scores = self.mapper.bit_exact_forward_batch(
            images, position_chunk=position_chunk
        )
        correct = int((np.argmax(scores, axis=1) == labels).sum())
        return InferenceResult(
            correct / len(labels), len(labels), self.stream_length, "sc-bit-exact"
        )

    def classify_bit_exact(self, image: np.ndarray) -> tuple[int, np.ndarray]:
        """Bit-exact class prediction and scores for a single image."""
        scores = self.mapper.bit_exact_forward(np.asarray(image, dtype=np.float64))
        return int(np.argmax(scores)), scores

    def layer_inventories(
        self, input_shape: tuple[int, int, int] = (1, 28, 28)
    ) -> list[LayerInventory]:
        """Per-layer block inventory (for the hardware roll-up)."""
        return self.mapper.layer_inventories(input_shape)
