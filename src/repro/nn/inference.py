"""High-level SC inference engine (a thin wrapper over `repro.api.Session`).

:class:`ScInferenceEngine` is the historical training-side entry point:
give it a trained float network and evaluate it under any registered
execution backend -- ``engine.evaluate(images, labels,
backend="bit-exact-packed")``.  Since the public API landed it delegates
everything to a :class:`~repro.api.Session` (the load-and-serve facade);
new code should use sessions directly -- ``Session.from_network`` for
freshly trained networks, ``Session.from_artifact`` for saved models --
and :meth:`ScInferenceEngine.session` / :meth:`ScInferenceEngine.save`
bridge existing engine users onto that path.  The historical
mode-specific methods (``evaluate_float``, ``evaluate_sc_fast``,
``evaluate_sc_bit_exact``) remain as thin wrappers, and the engine still
exposes the block inventory used for the network-level hardware roll-up
(Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import default_config
from repro.errors import ConfigurationError
from repro.nn.layers import Network
from repro.nn.sc_layers import LayerInventory, ScNetworkMapper

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from pathlib import Path

    from repro.api.session import Session
    from repro.backends.base import Backend

__all__ = ["InferenceResult", "ScInferenceEngine"]


@dataclass(frozen=True)
class InferenceResult:
    """Accuracy summary of one evaluation.

    Attributes:
        accuracy: fraction of correctly classified images.
        n_images: number of images evaluated.
        stream_length: stochastic stream length used.
        mode: name of the execution backend that produced the scores
            (``"float"``, ``"sc-fast"``, ``"bit-exact-packed"``, ...; the
            legacy ``evaluate_sc_bit_exact`` wrapper reports its
            historical ``"sc-bit-exact"`` label).
    """

    accuracy: float
    n_images: int
    stream_length: int
    mode: str


class ScInferenceEngine:
    """Evaluate a trained network through pluggable execution backends.

    Args:
        network: trained float network.
        weight_bits: stored weight precision for SC conversion.
        stream_length: stochastic stream length ``N``.
        seed: randomness seed for stream generation and noise.
        default_backend: registry name used when :meth:`evaluate` is called
            without an explicit backend; ``None`` falls back to
            :attr:`repro.config.ExperimentConfig.default_backend`.
    """

    def __init__(
        self,
        network: Network,
        weight_bits: int = 10,
        stream_length: int = 1024,
        seed: int = 2019,
        default_backend: str | None = None,
    ) -> None:
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        # Imported lazily: repro.api sits above the nn layer (its Session
        # imports the backends and serving packages, which import this
        # package), so a module-level import here would be circular.
        from repro.api.session import Session

        name = default_backend or default_config().default_backend
        self._session = Session.from_network(
            network,
            weight_bits=weight_bits,
            stream_length=stream_length,
            seed=seed,
            backend=name,  # fails fast on unknown names
        )
        self.network = network
        self.mapper = self._session.mapper
        self.stream_length = int(stream_length)
        self.default_backend = name

    # -- session facade --------------------------------------------------------

    @property
    def session(self) -> "Session":
        """The :class:`~repro.api.Session` this engine delegates to."""
        return self._session

    def save(self, path: "str | Path") -> "Path":
        """Export the engine's model as a versioned artifact directory.

        The bridge from training-side code onto the train-once /
        deploy-forever path: the artifact reloads (in any process) into a
        bit-identical mapper via :meth:`repro.api.Session.from_artifact`.
        """
        return self._session.save(path)

    def backend(self, name: str | None = None, **options: object) -> Backend:
        """An execution backend for this engine's mapper (session-cached).

        Args:
            name: registry name; ``None`` uses :attr:`default_backend`.
            **options: backend-specific constructor options (e.g.
                ``inject_noise``, ``position_chunk``).
        """
        return self._session.backend(name or self.default_backend, **options)

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        backend: str | None = None,
        max_images: int | None = None,
        **options: object,
    ) -> InferenceResult:
        """Accuracy of the network under the named execution backend.

        Args:
            images: ``(batch, channels, height, width)`` images in ``[0, 1]``.
            labels: integer class labels.
            backend: registry name; ``None`` uses :attr:`default_backend`.
            max_images: optional cap on the number of images evaluated
                (bounds the memory of the bit-exact backends).
            **options: forwarded to the backend constructor.

        Returns:
            The accuracy summary; ``mode`` is the backend name.
        """
        return self._session.evaluate(
            images,
            labels,
            backend=backend or self.default_backend,
            max_images=max_images,
            **options,
        )

    # -- historical mode-specific wrappers --------------------------------------

    def evaluate_float(self, images: np.ndarray, labels: np.ndarray) -> InferenceResult:
        """Software (floating-point) accuracy of the trained network."""
        return self.evaluate(images, labels, backend="float")

    def evaluate_sc_fast(
        self, images: np.ndarray, labels: np.ndarray, inject_noise: bool = True
    ) -> InferenceResult:
        """Accuracy under the fast statistical SC model."""
        return self.evaluate(
            images, labels, backend="sc-fast", inject_noise=inject_noise
        )

    def evaluate_sc_bit_exact(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        max_images: int = 32,
        position_chunk: int | None = None,
        backend: str = "bit-exact-batched",
    ) -> InferenceResult:
        """Accuracy of a bit-exact block simulation on a batch of images.

        All ``bit-exact-*`` backends produce identical scores; ``backend``
        selects the implementation speed (``"bit-exact-packed"`` is the
        fastest).  Reports the historical ``"sc-bit-exact"`` mode label.
        """
        result = self.evaluate(
            images,
            labels,
            backend=backend,
            max_images=max_images,
            position_chunk=position_chunk,
        )
        return InferenceResult(
            result.accuracy, result.n_images, result.stream_length, "sc-bit-exact"
        )

    def classify_bit_exact(self, image: np.ndarray) -> tuple[int, np.ndarray]:
        """Bit-exact class prediction and scores for a single image."""
        scores = self.mapper.bit_exact_forward(np.asarray(image, dtype=np.float64))
        return int(np.argmax(scores)), scores

    def layer_inventories(
        self, input_shape: tuple[int, int, int] = (1, 28, 28)
    ) -> list[LayerInventory]:
        """Per-layer block inventory (for the hardware roll-up)."""
        return self.mapper.layer_inventories(input_shape)
