"""The paper's network architectures (Table 8).

Two networks are evaluated:

* **SNN** (shallow): ``Conv3_x - AvgPool - Conv3_x - AvgPool - FC500 -
  FC800 - OutLayer``
* **DNN** (deep): ``Conv3_x - Conv3_x - AvgPool - Conv5_x - Conv5_x -
  AvgPool - Conv7_x - FC500 - FC800 - OutLayer``

with the per-layer configuration of Table 8 (Conv3_x = 3x3/32, Conv5_x =
5x5/32, Conv7_x = 7x7/64, Conv9_x = 9x9/128, AvgPool = 2x2 stride 2).
Convolutions use same padding so the deep network still has spatial extent
left when the 7x7 kernels arrive.  The CONV and FC500/FC800 layers map onto
feature-extraction blocks in hardware; the output layer maps onto the
majority-chain categorization block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import (
    AvgPool2D,
    ClipActivation,
    Conv2D,
    Dense,
    Flatten,
    HardwareActivation,
    Layer,
    LogitScale,
    Network,
)

__all__ = [
    "LayerSpec",
    "TABLE8_CONFIG",
    "snn_layer_specs",
    "dnn_layer_specs",
    "build_network",
    "build_snn",
    "build_dnn",
]


@dataclass(frozen=True)
class LayerSpec:
    """One row of the architecture description.

    Attributes:
        kind: ``"conv"``, ``"pool"``, ``"fc"`` or ``"output"``.
        name: Table 8 layer name (e.g. ``"Conv3_x"``).
        kernel: kernel size for conv layers, pool size for pooling.
        channels: output channels for conv layers.
        units: output units for fc/output layers.
        stride: stride (1 for conv, equals kernel for pooling).
    """

    kind: str
    name: str
    kernel: int = 0
    channels: int = 0
    units: int = 0
    stride: int = 1


#: Kernel shapes / strides exactly as listed in Table 8.
TABLE8_CONFIG: dict[str, dict[str, int]] = {
    "Conv3_x": {"kernel": 3, "channels": 32, "stride": 1},
    "Conv5_x": {"kernel": 5, "channels": 32, "stride": 1},
    "Conv7_x": {"kernel": 7, "channels": 64, "stride": 1},
    "Conv9_x": {"kernel": 9, "channels": 128, "stride": 1},
    "AvgPool": {"kernel": 2, "stride": 2},
    "FC500": {"units": 500},
    "FC800": {"units": 800},
}


def _conv_spec(name: str) -> LayerSpec:
    cfg = TABLE8_CONFIG[name]
    return LayerSpec(
        kind="conv",
        name=name,
        kernel=cfg["kernel"],
        channels=cfg["channels"],
        stride=cfg["stride"],
    )


def _pool_spec() -> LayerSpec:
    cfg = TABLE8_CONFIG["AvgPool"]
    return LayerSpec(kind="pool", name="AvgPool", kernel=cfg["kernel"], stride=cfg["stride"])


def snn_layer_specs(n_classes: int = 10) -> list[LayerSpec]:
    """Layer list of the shallow network (SNN)."""
    return [
        _conv_spec("Conv3_x"),
        _pool_spec(),
        _conv_spec("Conv3_x"),
        _pool_spec(),
        LayerSpec(kind="fc", name="FC500", units=TABLE8_CONFIG["FC500"]["units"]),
        LayerSpec(kind="fc", name="FC800", units=TABLE8_CONFIG["FC800"]["units"]),
        LayerSpec(kind="output", name="OutLayer", units=n_classes),
    ]


def dnn_layer_specs(n_classes: int = 10) -> list[LayerSpec]:
    """Layer list of the deep network (DNN)."""
    return [
        _conv_spec("Conv3_x"),
        _conv_spec("Conv3_x"),
        _pool_spec(),
        _conv_spec("Conv5_x"),
        _conv_spec("Conv5_x"),
        _pool_spec(),
        _conv_spec("Conv7_x"),
        LayerSpec(kind="fc", name="FC500", units=TABLE8_CONFIG["FC500"]["units"]),
        LayerSpec(kind="fc", name="FC800", units=TABLE8_CONFIG["FC800"]["units"]),
        LayerSpec(kind="output", name="OutLayer", units=n_classes),
    ]


def build_network(
    specs: list[LayerSpec],
    input_shape: tuple[int, int, int] = (1, 28, 28),
    activation: str = "hardware",
    seed: int = 2019,
    name: str = "network",
    training_stream_length: int | None = 1024,
) -> Network:
    """Instantiate a float reference network from layer specs.

    Args:
        specs: layer specification list (see :func:`snn_layer_specs`).
        input_shape: ``(channels, height, width)`` of the input images.
        activation: ``"hardware"`` (measured transfer curve, the paper's
            SC-aware training) or ``"clip"`` (ideal clip of equation (1)).
        seed: weight initialisation seed.
        name: network name used in reports.
        training_stream_length: stream length assumed by the noise-aware
            training of the hardware activation (``None`` disables noise
            injection; ignored for ``activation="clip"``).

    Returns:
        A :class:`~repro.nn.layers.Network` ready for training.
    """
    if activation not in ("hardware", "clip"):
        raise ConfigurationError(
            f"activation must be 'hardware' or 'clip', got {activation!r}"
        )
    rng = np.random.default_rng(seed)
    channels, height, width = input_shape
    layers: list[Layer] = []
    flattened = False
    for spec in specs:
        if spec.kind == "conv":
            conv = Conv2D(
                channels, spec.channels, spec.kernel, spec.stride, "same", rng
            )
            layers.append(conv)
            layers.append(
                _make_activation(activation, conv.fan_in, training_stream_length, seed)
            )
            channels = spec.channels
        elif spec.kind == "pool":
            layers.append(AvgPool2D(spec.kernel))
            height //= spec.kernel
            width //= spec.kernel
        elif spec.kind in ("fc", "output"):
            if not flattened:
                layers.append(Flatten())
                flattened = True
                in_features = channels * height * width
            dense = Dense(in_features, spec.units, rng)
            layers.append(dense)
            if spec.kind == "fc":
                layers.append(
                    _make_activation(
                        activation, dense.fan_in, training_stream_length, seed
                    )
                )
            elif activation == "hardware" and training_stream_length is not None:
                # SC-aware margin: the categorization block resolves raw
                # inner-product differences of about fan_in / sqrt(N), so the
                # loss should not saturate before margins reach that scale.
                layers.append(
                    LogitScale(max(1.0, dense.fan_in / np.sqrt(training_stream_length)))
                )
            in_features = spec.units
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown layer kind {spec.kind!r}")
    return Network(layers, name=name)


def _make_activation(
    activation: str, fan_in: int, training_stream_length: int | None, seed: int
) -> Layer:
    if activation == "clip":
        return ClipActivation()
    return HardwareActivation(fan_in, stream_length=training_stream_length, seed=seed)


def build_snn(
    input_shape: tuple[int, int, int] = (1, 28, 28),
    n_classes: int = 10,
    activation: str = "hardware",
    seed: int = 2019,
    training_stream_length: int | None = 1024,
) -> Network:
    """Build the shallow network of Table 9 ("SNN")."""
    return build_network(
        snn_layer_specs(n_classes),
        input_shape,
        activation,
        seed,
        name="SNN",
        training_stream_length=training_stream_length,
    )


def build_dnn(
    input_shape: tuple[int, int, int] = (1, 28, 28),
    n_classes: int = 10,
    activation: str = "hardware",
    seed: int = 2019,
    training_stream_length: int | None = 1024,
) -> Network:
    """Build the deep network of Table 9 ("DNN")."""
    return build_network(
        dnn_layer_specs(n_classes),
        input_shape,
        activation,
        seed,
        name="DNN",
        training_stream_length=training_stream_length,
    )
