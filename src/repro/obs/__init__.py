"""Observability: request tracing, kernel-tier counters, metrics export.

The measurement substrate under the serving layer (:mod:`repro.serve`)
and the packed backends (:mod:`repro.backends`):

* :mod:`~repro.obs.trace` -- a sampling span tracer
  (:class:`~repro.obs.trace.Tracer`) with contextvar-propagated
  parent/child nesting, a bounded ring buffer of completed traces, and
  a per-request :class:`~repro.obs.trace.TraceSummary` carried on every
  :class:`~repro.serve.InferenceResponse` of a sampled request.
* :mod:`~repro.obs.counters` -- per-kernel, per-tier
  (native vs NumPy) invocation counters
  (:class:`~repro.obs.counters.KernelCounters`) hooked into the packed
  backend's kernel seam, surfaced via ``Backend.kernel_snapshot()``,
  ``ScInferenceService.snapshot()["kernels"]`` and the registry's
  ``describe_backends()`` notes.
* :mod:`~repro.obs.export` -- the Prometheus text-exposition writer
  (:func:`~repro.obs.export.prometheus_text` /
  :func:`~repro.obs.export.validate_exposition`) and the JSONL
  structured event log (:class:`~repro.obs.export.JsonlEventLog`) that
  also mirrors the stdlib ``repro`` package logger.

This package sits *below* the backends and serving layer in the import
graph (it imports neither), so every layer can record into it without
cycles.
"""

from repro.obs.counters import (
    GLOBAL_COUNTERS,
    KernelCounters,
    kernel_note,
    merge_kernel_snapshots,
)
from repro.obs.export import (
    JsonlEventLog,
    fleet_prometheus_text,
    prometheus_text,
    registry_prometheus_text,
    validate_exposition,
)
from repro.obs.trace import Span, Trace, Tracer, TraceSummary, current_span

__all__ = [
    "Tracer",
    "Trace",
    "Span",
    "TraceSummary",
    "current_span",
    "KernelCounters",
    "GLOBAL_COUNTERS",
    "kernel_note",
    "merge_kernel_snapshots",
    "prometheus_text",
    "fleet_prometheus_text",
    "registry_prometheus_text",
    "validate_exposition",
    "JsonlEventLog",
]
