"""Metrics export: Prometheus text exposition and a JSONL event log.

Two sinks over the same observability data:

* :func:`prometheus_text` renders a service snapshot
  (:meth:`repro.serve.ScInferenceService.snapshot`, a superset of the
  plain :meth:`~repro.serve.metrics.ServiceMetrics.snapshot` dict) in the
  Prometheus text exposition format (version 0.0.4): ``# HELP`` /
  ``# TYPE`` comment pairs followed by samples, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
  :func:`validate_exposition` parses the text back and checks the format
  invariants -- the golden-parse guard of the CI ``obs-smoke`` job.
* :class:`JsonlEventLog` appends structured JSON lines (sampled traces,
  fault events, mirrored log records) to a file; its
  :meth:`~JsonlEventLog.logging_handler` bridges the stdlib ``repro``
  package logger into the same file, so replica restarts, circuit-breaker
  trips and overload degradations land in one machine-readable stream.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
from pathlib import Path

__all__ = [
    "prometheus_text",
    "fleet_prometheus_text",
    "registry_prometheus_text",
    "validate_exposition",
    "JsonlEventLog",
]


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


class _Writer:
    """Accumulates exposition lines with HELP/TYPE headers per family."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, value: float, labels: dict | None = None
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(val)}"'
                for key, val in labels.items()
            )
            self.lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            self.lines.append(f"{name} {_format_value(value)}")

    def counter(
        self, name: str, value: float, help_text: str
    ) -> None:
        self.family(name, "counter", help_text)
        self.sample(name, value)

    def gauge(self, name: str, value: float, help_text: str) -> None:
        self.family(name, "gauge", help_text)
        self.sample(name, value)

    def histogram(self, name: str, hist: dict, help_text: str) -> None:
        """Render a ``{"le", "counts", "sum", "count"}`` histogram.

        ``le`` holds the finite upper bounds; ``counts`` the per-bucket
        (non-cumulative) observation counts with one extra overflow
        bucket.  Prometheus buckets are cumulative and end at ``+Inf``.
        """
        self.family(name, "histogram", help_text)
        cumulative = 0
        bounds = list(hist["le"]) + [math.inf]
        for bound, count in zip(bounds, hist["counts"]):
            cumulative += int(count)
            self.sample(
                f"{name}_bucket",
                cumulative,
                {"le": _format_value(bound)},
            )
        self.sample(f"{name}_sum", hist["sum"])
        self.sample(f"{name}_count", hist["count"])

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def prometheus_text(snapshot: dict, prefix: str = "repro") -> str:
    """Render a service snapshot in the Prometheus text exposition format.

    Accepts both the plain :class:`~repro.serve.metrics.ServiceMetrics`
    snapshot and the service-level superset
    (:meth:`~repro.serve.ScInferenceService.snapshot`) carrying
    ``kernels`` / ``workspaces`` / ``tracing`` sections; absent sections
    are simply not rendered.

    Args:
        snapshot: the snapshot dict.
        prefix: metric-name prefix (default ``repro``).

    Returns:
        Exposition text (one trailing newline), parseable by
        :func:`validate_exposition`.
    """
    w = _Writer()
    w.counter(
        f"{prefix}_requests_total",
        snapshot.get("requests", 0),
        "Completed inference requests.",
    )
    w.counter(
        f"{prefix}_images_total",
        snapshot.get("images", 0),
        "Images answered (computed + cache hits).",
    )
    w.counter(
        f"{prefix}_cache_hits_total",
        snapshot.get("cache_hits", 0),
        "Images answered from the LRU result cache.",
    )
    w.counter(
        f"{prefix}_batches_total",
        snapshot.get("batches", 0),
        "Merged micro-batches dispatched to workers.",
    )
    w.gauge(
        f"{prefix}_cache_hit_rate",
        snapshot.get("cache_hit_rate", 0.0),
        "Fraction of images answered from the cache.",
    )
    w.gauge(
        f"{prefix}_mean_batch_size",
        snapshot.get("mean_batch_size", 0.0),
        "Mean images per merged micro-batch (sliding window).",
    )
    throughput = snapshot.get("throughput_images_per_sec")
    if throughput is not None:
        w.gauge(
            f"{prefix}_throughput_images_per_sec",
            throughput,
            "Images per second over the completion window.",
        )
    mean_exit = snapshot.get("mean_exit_checkpoint")
    if mean_exit is not None:
        w.gauge(
            f"{prefix}_mean_exit_checkpoint",
            mean_exit,
            "Mean early-exit stream-cycle checkpoint.",
        )
    reduction = snapshot.get("cycle_reduction")
    if reduction is not None:
        w.gauge(
            f"{prefix}_cycle_reduction",
            reduction,
            "Mean stream-cycle reduction from progressive early exit.",
        )
    latency = snapshot.get("latency_ms")
    if latency:
        w.family(
            f"{prefix}_latency_ms",
            "summary",
            "Request latency quantiles over the sliding window (ms).",
        )
        for quantile in ("p50", "p95", "p99"):
            w.sample(
                f"{prefix}_latency_ms",
                latency[quantile],
                {"quantile": f"0.{quantile[1:]}"},
            )
        w.gauge(
            f"{prefix}_latency_ms_mean",
            latency["mean"],
            "Mean request latency over the sliding window (ms).",
        )
    for key, help_text in (
        ("queue_time_ms", "Submit-to-execution queueing time (ms)."),
        ("service_time_ms", "Execution-to-response service time (ms)."),
    ):
        series = snapshot.get(key)
        if series and series.get("histogram"):
            w.histogram(f"{prefix}_{key}", series["histogram"], help_text)
    faults = snapshot.get("faults")
    if faults:
        shed = {k: v for k, v in faults["shed"].items() if k != "total"}
        w.family(
            f"{prefix}_shed_requests_total",
            "counter",
            "Requests rejected by admission control, by reason.",
        )
        if shed:
            for reason, count in sorted(shed.items()):
                w.sample(
                    f"{prefix}_shed_requests_total",
                    count,
                    {"reason": reason},
                )
        else:
            w.sample(
                f"{prefix}_shed_requests_total", 0, {"reason": "none"}
            )
        w.counter(
            f"{prefix}_degraded_requests_total",
            faults["degraded_requests"],
            "Requests answered from an overload-truncated schedule.",
        )
        w.counter(
            f"{prefix}_batch_retries_total",
            faults["retries"],
            "Merged-batch buckets re-executed after a replica failure.",
        )
        w.counter(
            f"{prefix}_replica_restarts_total",
            faults["restarts"],
            "Backend replicas rebuilt by the supervision path.",
        )
        w.counter(
            f"{prefix}_failed_requests_total",
            faults["failed_requests"],
            "Requests resolved with a typed inference error.",
        )
        w.counter(
            f"{prefix}_cancelled_requests_total",
            faults["cancelled_requests"],
            "Requests cancelled before a worker picked them up.",
        )
    kernels = snapshot.get("kernels")
    if kernels:
        w.family(
            f"{prefix}_kernel_calls_total",
            "counter",
            "Packed-data-plane kernel invocations by kernel and tier.",
        )
        for kernel, tiers in sorted(kernels.items()):
            for tier, cell in sorted(tiers.items()):
                w.sample(
                    f"{prefix}_kernel_calls_total",
                    cell["calls"],
                    {"kernel": kernel, "tier": tier},
                )
        w.family(
            f"{prefix}_kernel_seconds_total",
            "counter",
            "Wall seconds spent inside kernels by kernel and tier.",
        )
        for kernel, tiers in sorted(kernels.items()):
            for tier, cell in sorted(tiers.items()):
                w.sample(
                    f"{prefix}_kernel_seconds_total",
                    cell["seconds"],
                    {"kernel": kernel, "tier": tier},
                )
        w.family(
            f"{prefix}_kernel_bytes_total",
            "counter",
            "Output bytes produced by kernels by kernel and tier.",
        )
        for kernel, tiers in sorted(kernels.items()):
            for tier, cell in sorted(tiers.items()):
                w.sample(
                    f"{prefix}_kernel_bytes_total",
                    cell["bytes"],
                    {"kernel": kernel, "tier": tier},
                )
    workspaces = snapshot.get("workspaces")
    if workspaces:
        w.family(
            f"{prefix}_workspace_bytes",
            "gauge",
            "Bytes currently retained by each replica's buffer arena.",
        )
        for entry in workspaces:
            w.sample(
                f"{prefix}_workspace_bytes",
                entry["nbytes"],
                {"worker": entry["worker"]},
            )
        w.family(
            f"{prefix}_workspace_peak_bytes",
            "gauge",
            "High-water arena bytes per replica.",
        )
        for entry in workspaces:
            w.sample(
                f"{prefix}_workspace_peak_bytes",
                entry["peak_nbytes"],
                {"worker": entry["worker"]},
            )
        w.family(
            f"{prefix}_workspace_buffers",
            "gauge",
            "Live buffers in each replica's arena.",
        )
        for entry in workspaces:
            w.sample(
                f"{prefix}_workspace_buffers",
                entry["buffers"],
                {"worker": entry["worker"]},
            )
    tracing = snapshot.get("tracing")
    if tracing:
        w.gauge(
            f"{prefix}_trace_sample_rate",
            tracing["sample_rate"],
            "Configured request-trace sampling rate.",
        )
        w.counter(
            f"{prefix}_traces_sampled_total",
            tracing["sampled"],
            "Requests that carried a trace.",
        )
        w.gauge(
            f"{prefix}_traces_buffered",
            tracing["buffered"],
            "Completed traces currently in the ring buffer.",
        )
    return w.text()


def fleet_prometheus_text(snapshot: dict, prefix: str = "repro") -> str:
    """Render a fleet snapshot as one exposition with a ``worker`` label.

    Accepts :meth:`repro.serve.fleet.FleetRouter.snapshot` output:
    ``{"fleet": <router counters>, "workers": {slot: <service snapshot
    or None>}}``.  Router-level supervision counters become
    ``{prefix}_fleet_*`` families; the headline series of every live
    worker's embedded-service snapshot are re-emitted under a
    ``worker="<slot>"`` label so one scrape shows the whole fleet.
    Workers that did not answer the snapshot RPC (dead, restarting)
    appear only in ``{prefix}_fleet_worker_up`` as ``0``.

    Returns:
        Exposition text parseable by :func:`validate_exposition`.
    """
    w = _Writer()
    fleet = snapshot.get("fleet") or {}
    for key, help_text in (
        ("submitted", "Requests admitted by the fleet router."),
        ("completed", "Requests resolved with a successful response."),
        ("failed", "Requests resolved with a worker-side inference error."),
        ("shed", "Requests shed by admission control (router or worker)."),
        ("router_errors", "Requests failed with a router-side FleetError."),
        ("retries", "Requests re-dispatched after their worker died."),
        ("hedges", "Speculative duplicate dispatches (tail hedging)."),
        ("hedge_wins", "Hedged requests whose duplicate answered first."),
        ("worker_deaths", "Worker processes lost to crash or hang."),
        ("restarts", "Supervision restarts charged to slot budgets."),
        ("replacements", "Planned rolling-restart worker replacements."),
    ):
        w.counter(
            f"{prefix}_fleet_{key}_total", fleet.get(key, 0), help_text
        )
    w.gauge(
        f"{prefix}_fleet_queue_depth",
        fleet.get("queue_depth", 0),
        "Requests waiting in the router dispatch queue.",
    )
    w.gauge(
        f"{prefix}_fleet_inflight",
        fleet.get("inflight", 0),
        "Admitted requests not yet resolved.",
    )
    w.gauge(
        f"{prefix}_fleet_workers_ready",
        fleet.get("workers_ready", 0),
        "Worker processes currently accepting dispatches.",
    )
    states = fleet.get("worker_states") or {}
    if states:
        w.family(
            f"{prefix}_fleet_worker_up",
            "gauge",
            "Per-slot worker liveness (1 = ready).",
        )
        for slot in sorted(states, key=str):
            w.sample(
                f"{prefix}_fleet_worker_up",
                1 if states[slot] == "ready" else 0,
                {"worker": slot, "state": states[slot]},
            )
    workers = {
        str(slot): snap
        for slot, snap in (snapshot.get("workers") or {}).items()
        if snap
    }
    if workers:
        for key, help_text in (
            ("requests", "Completed requests inside each worker's service."),
            ("images", "Images answered by each worker."),
            ("cache_hits", "Cache-served images per worker."),
            ("batches", "Merged micro-batches dispatched per worker."),
        ):
            w.family(
                f"{prefix}_worker_{key}_total",
                "counter",
                help_text,
            )
            for slot in sorted(workers, key=str):
                w.sample(
                    f"{prefix}_worker_{key}_total",
                    workers[slot].get(key, 0),
                    {"worker": slot},
                )
        for fault_key, name, help_text in (
            ("retries", "batch_retries", "In-process batch retries per worker."),
            (
                "restarts",
                "replica_restarts",
                "In-process replica restarts per worker.",
            ),
            (
                "failed_requests",
                "failed_requests",
                "Requests failed inside each worker's service.",
            ),
            (
                "degraded_requests",
                "degraded_requests",
                "Overload-degraded requests per worker.",
            ),
        ):
            w.family(
                f"{prefix}_worker_{name}_total",
                "counter",
                help_text,
            )
            for slot in sorted(workers, key=str):
                faults = workers[slot].get("faults") or {}
                w.sample(
                    f"{prefix}_worker_{name}_total",
                    faults.get(fault_key, 0),
                    {"worker": slot},
                )
        if any(workers[slot].get("latency_ms") for slot in workers):
            w.family(
                f"{prefix}_worker_latency_ms",
                "summary",
                "Per-worker request latency quantiles (ms).",
            )
            for slot in sorted(workers, key=str):
                latency = workers[slot].get("latency_ms")
                if not latency:
                    continue
                for quantile in ("p50", "p95", "p99"):
                    w.sample(
                        f"{prefix}_worker_latency_ms",
                        latency[quantile],
                        {"worker": slot, "quantile": f"0.{quantile[1:]}"},
                    )
    return w.text()


def _model_counter(entry: dict, key: str) -> float:
    """One headline counter of a registry pool entry, service or fleet.

    Service pools report the counter directly; fleet pools aggregate the
    per-worker embedded-service snapshots (``requests`` additionally
    falls back to the router's ``completed`` count when no worker
    answered the snapshot RPC).
    """
    inner = entry.get("snapshot") or {}
    if entry.get("kind") == "fleet":
        workers = [w for w in (inner.get("workers") or {}).values() if w]
        if workers:
            return sum(w.get(key, 0) for w in workers)
        if key == "requests":
            return (inner.get("fleet") or {}).get("completed", 0)
        return 0
    return inner.get(key, 0)


def registry_prometheus_text(snapshots: dict, prefix: str = "repro") -> str:
    """Render a multi-model registry snapshot with a ``model`` label.

    Accepts :meth:`repro.serve.registry.ModelRegistry.snapshot` output:
    ``{name: {"kind", "generation", "snapshot"} | None}`` (``None`` for
    catalog entries whose pool was never built).  Catalog-level gauges
    come first; the headline series of every live pool are re-emitted
    under a ``model="<name>"`` label, so one scrape covers every model a
    process serves.  Single-model processes keep the unlabeled
    :func:`prometheus_text` / :func:`fleet_prometheus_text` shape
    instead (the HTTP front end picks per scrape).

    Returns:
        Exposition text parseable by :func:`validate_exposition`.
    """
    w = _Writer()
    loaded = {name: snap for name, snap in snapshots.items() if snap}
    w.gauge(
        f"{prefix}_registry_models",
        len(snapshots),
        "Models in the serving catalog.",
    )
    w.gauge(
        f"{prefix}_registry_loaded",
        len(loaded),
        "Models with a live replica pool.",
    )
    if snapshots:
        w.family(
            f"{prefix}_model_up",
            "gauge",
            "Per-model pool liveness (1 = replica pool built).",
        )
        for name in sorted(snapshots, key=str):
            w.sample(
                f"{prefix}_model_up",
                1 if snapshots[name] else 0,
                {"model": name},
            )
    if not loaded:
        return w.text()
    w.family(
        f"{prefix}_model_generation",
        "gauge",
        "Pool generation of each model (bumps on hot reload).",
    )
    for name in sorted(loaded, key=str):
        w.sample(
            f"{prefix}_model_generation",
            loaded[name].get("generation", 0),
            {"model": name},
        )
    for key, help_text in (
        ("requests", "Completed requests per model."),
        ("images", "Images answered per model."),
        ("cache_hits", "Cache-served images per model."),
        ("batches", "Merged micro-batches dispatched per model."),
    ):
        w.family(f"{prefix}_model_{key}_total", "counter", help_text)
        for name in sorted(loaded, key=str):
            w.sample(
                f"{prefix}_model_{key}_total",
                _model_counter(loaded[name], key),
                {"model": name},
            )
    latencies = {
        name: (entry.get("snapshot") or {}).get("latency_ms")
        for name, entry in loaded.items()
        if entry.get("kind") != "fleet"
    }
    latencies = {name: lat for name, lat in latencies.items() if lat}
    if latencies:
        w.family(
            f"{prefix}_model_latency_ms",
            "summary",
            "Per-model request latency quantiles (ms).",
        )
        for name in sorted(latencies, key=str):
            for quantile in ("p50", "p95", "p99"):
                w.sample(
                    f"{prefix}_model_latency_ms",
                    latencies[name][quantile],
                    {"model": name, "quantile": f"0.{quantile[1:]}"},
                )
    return w.text()


def validate_exposition(text: str) -> dict[str, str]:
    """Parse Prometheus exposition text, checking the format invariants.

    Checks: every sample belongs to a declared ``# TYPE`` family (with
    the ``_bucket`` / ``_sum`` / ``_count`` suffixes allowed for
    histograms), values parse as floats, label syntax is well formed,
    histogram buckets are cumulative (non-decreasing) and end at
    ``le="+Inf"`` with the ``+Inf`` bucket equal to ``_count``.

    Args:
        text: exposition text (e.g. the output of
            :func:`prometheus_text` or a ``--metrics-file``).

    Returns:
        ``{family_name: type}`` for every declared family.

    Raises:
        ValueError: on the first format violation, naming the line.
    """
    families: dict[str, str] = {}
    bucket_state: dict[str, list] = {}  # family -> [last_le, last_cum]
    hist_counts: dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {lineno}: malformed comment {raw!r}"
                )
            if parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                families[parts[2]] = kind
            continue
        # Sample line: name[{labels}] value [timestamp]
        if "{" in line:
            name, rest = line.split("{", 1)
            if "}" not in rest:
                raise ValueError(f"line {lineno}: unterminated labels")
            labels_text, value_text = rest.rsplit("}", 1)
            labels = _parse_labels(labels_text, lineno)
        else:
            pieces = line.split()
            if len(pieces) < 2:
                raise ValueError(f"line {lineno}: malformed sample {raw!r}")
            name, value_text = pieces[0], " ".join(pieces[1:])
            labels = {}
        name = name.strip()
        value_text = value_text.strip().split()[0]
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {value_text!r}"
            ) from None
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and families.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
        if families[family] == "histogram":
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    raise ValueError(
                        f"line {lineno}: histogram bucket without 'le'"
                    )
                bound = math.inf if le == "+Inf" else float(le)
                state = bucket_state.setdefault(family, [-math.inf, -1.0])
                if bound <= state[0]:
                    raise ValueError(
                        f"line {lineno}: bucket bounds not increasing"
                    )
                if value < state[1]:
                    raise ValueError(
                        f"line {lineno}: bucket counts not cumulative"
                    )
                state[0], state[1] = bound, value
            elif name.endswith("_count"):
                hist_counts[family] = value
    for family, (last_le, last_cum) in bucket_state.items():
        if not math.isinf(last_le):
            raise ValueError(
                f"histogram {family!r} has no le=\"+Inf\" bucket"
            )
        count = hist_counts.get(family)
        if count is not None and count != last_cum:
            raise ValueError(
                f"histogram {family!r}: +Inf bucket {last_cum} != "
                f"_count {count}"
            )
    return families


def _parse_labels(labels_text: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    text = labels_text.strip()
    while text:
        if "=" not in text:
            raise ValueError(f"line {lineno}: malformed label in {text!r}")
        key, rest = text.split("=", 1)
        if not rest.startswith('"'):
            raise ValueError(f"line {lineno}: unquoted label value")
        value = []
        i = 1
        while i < len(rest):
            ch = rest[i]
            if ch == "\\" and i + 1 < len(rest):
                value.append(rest[i + 1])
                i += 2
                continue
            if ch == '"':
                break
            value.append(ch)
            i += 1
        else:
            raise ValueError(f"line {lineno}: unterminated label value")
        labels[key.strip()] = "".join(value)
        text = rest[i + 1 :].lstrip().lstrip(",").lstrip()
    return labels


class _EventLogHandler(logging.Handler):
    """Mirrors ``repro`` logger records into a :class:`JsonlEventLog`.

    Log calls may attach ``extra={"obs_event": {"kind": ..., ...}}`` to
    emit a structured event; records without it land as ``kind="log"``.
    """

    def __init__(self, log: "JsonlEventLog") -> None:
        super().__init__()
        self._log = log

    def emit(self, record: logging.LogRecord) -> None:  # pragma: no cover
        try:
            event = dict(getattr(record, "obs_event", None) or {})
            kind = event.pop("kind", "log")
            self._log.emit(
                kind,
                level=record.levelname,
                logger=record.name,
                message=record.getMessage(),
                **event,
            )
        except Exception:
            self.handleError(record)


class JsonlEventLog:
    """Append-only JSON-lines event sink (thread-safe).

    One line per event: ``{"ts": <unix seconds>, "kind": ..., ...}``.
    The serving layer writes sampled traces (``kind="trace"``) and the
    ``repro`` package logger's records (via :meth:`logging_handler`)
    into it; anything JSON-serialisable goes.

    Args:
        path: file to append to (parent directories are created).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = self.path.open("a", encoding="utf-8")
        self._closed = False

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event line (silently dropped after close)."""
        payload = {"ts": time.time(), "kind": kind, **fields}
        line = json.dumps(payload, default=str)
        with self._lock:
            if self._closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def logging_handler(self) -> logging.Handler:
        """A stdlib handler mirroring log records into this file."""
        return _EventLogHandler(self)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.close()

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
