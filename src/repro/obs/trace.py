"""Lightweight request tracing: sampled spans with near-zero off cost.

A :class:`Tracer` decides once per request whether it is *sampled*; an
unsampled request pays a single comparison (rate 0) or one RNG draw and
never allocates, while a sampled one carries a :class:`Trace` through the
serving pipeline, accumulating :class:`Span` records per stage
(submit -> queue -> compute -> cache write).  Completed traces land in a
bounded ring buffer for the CLI / event log to read; nothing grows
without bound in a long-running service.

Two ways to record spans:

* **Explicit timestamps** (:meth:`Trace.add_span`) -- the serving layer's
  path.  Stages cross thread boundaries (the submit thread enqueues, a
  worker thread computes), so each stage is recorded from monotonic marks
  the service already takes, with the parent passed explicitly.
* **Context manager** (:meth:`Trace.span`) -- for single-threaded
  instrumented code.  Nesting is propagated through a
  :class:`contextvars.ContextVar`, so an inner ``span()`` automatically
  becomes a child of the enclosing one.

All timestamps are ``time.perf_counter()`` seconds; serialized forms
report milliseconds relative to the trace start.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = ["Span", "Trace", "TraceSummary", "Tracer", "current_span"]

#: Intra-thread span nesting: the innermost open context-manager span.
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None
)

_TRACE_IDS = itertools.count(1)


def current_span() -> "Span | None":
    """The innermost open context-manager span of this context, if any."""
    return _CURRENT_SPAN.get()


@dataclass
class Span:
    """One named, timed stage of a trace.

    Attributes:
        name: stage name (e.g. ``"queue"``, ``"forward_partial"``).
        span_id: identifier unique within the trace.
        parent_id: ``span_id`` of the enclosing span (``None`` for the
            root).
        started_at / ended_at: ``perf_counter`` marks (``ended_at`` is
            ``None`` while the span is open).
        annotations: small JSON-friendly payload (replica name, batch
            sequence number, checkpoint schedule, ...).
    """

    name: str
    span_id: int
    parent_id: int | None
    started_at: float
    ended_at: float | None = None
    annotations: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float | None:
        """Span duration in milliseconds (``None`` while open)."""
        if self.ended_at is None:
            return None
        return (self.ended_at - self.started_at) * 1e3


class Trace:
    """One sampled request's spans (thread-safe appends).

    Created through :meth:`Tracer.begin`; the root span (named
    ``"request"``) opens at construction and is closed by
    :meth:`Tracer.finish`.
    """

    __slots__ = ("trace_id", "started_at", "spans", "root", "_lock", "_ids")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.started_at = time.perf_counter()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.spans: list[Span] = []
        self.root = Span(
            name="request",
            span_id=0,
            parent_id=None,
            started_at=self.started_at,
        )
        self.spans.append(self.root)

    def add_span(
        self,
        name: str,
        started_at: float,
        ended_at: float,
        parent: "Span | None" = None,
        **annotations: object,
    ) -> Span:
        """Record a completed stage from explicit ``perf_counter`` marks.

        The serving layer's recording primitive: stages cross thread
        boundaries there, so the parent is passed explicitly (``None``
        parents under the root span).
        """
        with self._lock:
            span = Span(
                name=name,
                span_id=next(self._ids),
                parent_id=(parent or self.root).span_id,
                started_at=started_at,
                ended_at=ended_at,
                annotations=dict(annotations) if annotations else {},
            )
            self.spans.append(span)
            return span

    @contextlib.contextmanager
    def span(self, name: str, **annotations: object):
        """Open a nested span around a code block (single-threaded use).

        The parent is the innermost enclosing ``span()`` of the current
        context (contextvar-propagated), falling back to the root.
        """
        parent = _CURRENT_SPAN.get() or self.root
        with self._lock:
            record = Span(
                name=name,
                span_id=next(self._ids),
                parent_id=parent.span_id,
                started_at=time.perf_counter(),
                annotations=dict(annotations) if annotations else {},
            )
            self.spans.append(record)
        token = _CURRENT_SPAN.set(record)
        try:
            yield record
        finally:
            _CURRENT_SPAN.reset(token)
            record.ended_at = time.perf_counter()

    def stage_ms(self) -> dict[str, float]:
        """Total duration per span name, in milliseconds.

        Repeated stage names (e.g. a retried ``compute``) accumulate.
        Open spans are skipped.
        """
        totals: dict[str, float] = {}
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            duration = span.duration_ms
            if duration is None or span.span_id == 0:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + duration
        return totals

    def find(self, name: str) -> Span | None:
        """The first recorded span with the given name, if any."""
        with self._lock:
            for span in self.spans:
                if span.name == name:
                    return span
        return None

    def to_dict(self) -> dict:
        """JSON-friendly form: span times in ms relative to trace start."""
        with self._lock:
            spans = list(self.spans)
        return {
            "trace_id": self.trace_id,
            "spans": [
                {
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start_ms": (span.started_at - self.started_at) * 1e3,
                    "duration_ms": span.duration_ms,
                    **(
                        {"annotations": span.annotations}
                        if span.annotations
                        else {}
                    ),
                }
                for span in spans
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(id={self.trace_id!r}, spans={len(self.spans)})"


@dataclass(frozen=True)
class TraceSummary:
    """Per-request trace digest carried on an ``InferenceResponse``.

    The queue/service split is exact by construction: all three numbers
    are computed from the same pair of monotonic marks, so
    ``queue_ms + service_ms == latency_ms`` up to float rounding.

    Attributes:
        trace_id: identifier shared with the full trace in the ring
            buffer / event log.
        queue_ms: submit-to-first-execution wall time (0 for requests
            answered entirely from the result cache).
        service_ms: first-execution-to-response wall time.
        latency_ms: total submit-to-response wall time.
        stages: total milliseconds per recorded stage name.
        checkpoints: the evaluated checkpoint schedule (empty for
            cache-only requests).
        checkpoint_ms: estimated cumulative compute milliseconds to reach
            each checkpoint -- the single fused evaluation's measured
            duration attributed pro rata by stream cycles (the simulation
            cost is linear in cycles; per-checkpoint splits are not
            physically separable from one fused pass).
        replica: registry name of the backend replica that computed the
            request (``None`` for cache-only requests).
        worker: worker-thread slot index, likewise.
        batch_seq: scheduler sequence number of the merged batch.
        batch_images: images in the merged bucket that computed this
            request.
        retries: bucket re-executions this request survived.
        degraded: overload degradation flag (mirrors the response).
        cached_images: images of this request served from the cache.
    """

    trace_id: str
    queue_ms: float
    service_ms: float
    latency_ms: float
    stages: dict[str, float]
    checkpoints: tuple[int, ...] = ()
    checkpoint_ms: tuple[float, ...] = ()
    replica: str | None = None
    worker: int | None = None
    batch_seq: int | None = None
    batch_images: int | None = None
    retries: int = 0
    degraded: bool = False
    cached_images: int = 0

    def to_dict(self) -> dict:
        """JSON-friendly form (tuples become lists)."""
        return {
            "trace_id": self.trace_id,
            "queue_ms": self.queue_ms,
            "service_ms": self.service_ms,
            "latency_ms": self.latency_ms,
            "stages": dict(self.stages),
            "checkpoints": list(self.checkpoints),
            "checkpoint_ms": list(self.checkpoint_ms),
            "replica": self.replica,
            "worker": self.worker,
            "batch_seq": self.batch_seq,
            "batch_images": self.batch_images,
            "retries": self.retries,
            "degraded": self.degraded,
            "cached_images": self.cached_images,
        }


class Tracer:
    """Sampling trace collector with a bounded completed-trace buffer.

    Args:
        sample_rate: fraction of requests that carry a trace.  ``0.0``
            never samples (one float comparison per request, no RNG
            draw, no allocation); ``1.0`` always samples; in between,
            requests are sampled independently at this probability.
        capacity: completed traces retained (ring buffer; older traces
            are evicted).
        seed: RNG seed for the in-between sampling decisions, making
            fractional sampling reproducible.  ``None`` seeds from
            entropy.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        capacity: int = 256,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must lie in [0, 1], got {sample_rate}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = float(sample_rate)
        self.capacity = int(capacity)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._completed: deque[Trace] = deque(maxlen=capacity)
        self._started = 0
        self._sampled = 0
        self._finished = 0

    def begin(self) -> Trace | None:
        """Sampling decision for one request.

        Returns a live :class:`Trace` when sampled, else ``None`` --
        callers guard every recording site with ``if trace is not
        None``, which is what makes the off path near-free.
        """
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        with self._lock:
            self._started += 1
            if rate < 1.0 and self._rng.random() >= rate:
                return None
            self._sampled += 1
            trace_id = f"t{next(_TRACE_IDS):08x}"
        return Trace(trace_id)

    def finish(self, trace: Trace) -> None:
        """Close a trace's root span and retain it in the ring buffer."""
        trace.root.ended_at = time.perf_counter()
        with self._lock:
            self._finished += 1
            self._completed.append(trace)

    def recent(self, limit: int | None = None) -> list[dict]:
        """The most recent completed traces, oldest first, as dicts."""
        with self._lock:
            traces = list(self._completed)
        if limit is not None:
            traces = traces[-limit:]
        return [trace.to_dict() for trace in traces]

    def stats(self) -> dict:
        """Sampling counters for ``snapshot()["tracing"]``."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "decisions": self._started,
                "sampled": self._sampled,
                "finished": self._finished,
                "buffered": len(self._completed),
                "capacity": self.capacity,
            }
