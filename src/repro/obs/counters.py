"""Kernel-tier invocation counters for the packed data plane.

Every call through the packed backend's kernel seam
(``_fused_counts`` / ``_fused_chain`` / ``_stream_words`` /
``_recurrence_words``) records *which kernel* ran, on *which tier*
(``"native"`` for the compiled cffi kernels, ``"numpy"`` for the
reference implementations), how long it took and how many output bytes
it produced.  Each backend instance owns a :class:`KernelCounters`
(surfaced through ``Backend.kernel_snapshot()`` and the serving layer's
``snapshot()["kernels"]``); a process-wide aggregate feeds the registry's
``describe_backends()`` availability notes.

The counters are deliberately coarse: one lock acquisition per kernel
invocation, where an invocation is a chunked fused reduction costing
hundreds of microseconds at minimum -- the bookkeeping is noise next to
the work it measures.
"""

from __future__ import annotations

import threading

__all__ = [
    "KernelCounters",
    "GLOBAL_COUNTERS",
    "merge_kernel_snapshots",
    "kernel_note",
]


class KernelCounters:
    """Thread-safe per-kernel, per-tier call/time/byte totals."""

    __slots__ = ("_lock", "_cells")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (kernel, tier) -> [calls, seconds, bytes]
        self._cells: dict[tuple[str, str], list] = {}

    def record(
        self, kernel: str, tier: str, seconds: float, nbytes: int
    ) -> None:
        """Fold one kernel invocation into the totals.

        Args:
            kernel: seam name (``"fused_counts"``, ``"fused_chain"``,
                ``"stream_words"``, ``"recurrence_words"``).
            tier: ``"native"`` or ``"numpy"``.
            seconds: wall time of the invocation.
            nbytes: bytes of output the invocation produced.
        """
        key = (kernel, tier)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = [0, 0.0, 0]
            cell[0] += 1
            cell[1] += float(seconds)
            cell[2] += int(nbytes)

    def reset(self) -> None:
        """Zero every counter (test hook)."""
        with self._lock:
            self._cells.clear()

    def snapshot(self) -> dict:
        """``{kernel: {tier: {"calls", "seconds", "bytes"}}}`` totals."""
        with self._lock:
            cells = {key: list(cell) for key, cell in self._cells.items()}
        result: dict[str, dict] = {}
        for (kernel, tier), (calls, seconds, nbytes) in sorted(cells.items()):
            result.setdefault(kernel, {})[tier] = {
                "calls": calls,
                "seconds": seconds,
                "bytes": nbytes,
            }
        return result

    def totals(self) -> dict:
        """Per-kernel ``{"calls", "bytes"}`` summed across tiers.

        The tier-equivalence invariant tests compare these: the same
        workload must drive the same kernels with the same output bytes
        whether the calls landed on the native or the NumPy tier.
        """
        return _totals(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelCounters({self.snapshot()!r})"


def _totals(snapshot: dict) -> dict:
    result: dict[str, dict] = {}
    for kernel, tiers in snapshot.items():
        calls = sum(cell["calls"] for cell in tiers.values())
        nbytes = sum(cell["bytes"] for cell in tiers.values())
        result[kernel] = {"calls": calls, "bytes": nbytes}
    return result


def merge_kernel_snapshots(snapshots) -> dict:
    """Merge per-replica :meth:`KernelCounters.snapshot` dicts into one."""
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for kernel, tiers in snapshot.items():
            for tier, cell in tiers.items():
                slot = merged.setdefault(kernel, {}).setdefault(
                    tier, {"calls": 0, "seconds": 0.0, "bytes": 0}
                )
                slot["calls"] += cell["calls"]
                slot["seconds"] += cell["seconds"]
                slot["bytes"] += cell["bytes"]
    return merged


#: Process-wide aggregate over every packed-backend instance, feeding the
#: registry availability notes (``describe_backends()`` has no instance
#: to ask, so the classmethod note reads this).
GLOBAL_COUNTERS = KernelCounters()


def kernel_note() -> str | None:
    """One-line process-wide counter summary for registry listings.

    ``None`` before the first kernel call, so backends that never ran
    don't advertise empty counters.
    """
    snapshot = GLOBAL_COUNTERS.snapshot()
    if not snapshot:
        return None
    per_tier: dict[str, int] = {}
    for tiers in snapshot.values():
        for tier, cell in tiers.items():
            per_tier[tier] = per_tier.get(tier, 0) + cell["calls"]
    total = sum(per_tier.values())
    shares = ", ".join(
        f"{tier} {calls}" for tier, calls in sorted(per_tier.items())
    )
    return f"kernel calls: {total} ({shares})"
