"""``python -m repro`` -- the command-line face of :mod:`repro.api`."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
