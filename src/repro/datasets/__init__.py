"""Datasets for the application-level evaluation.

The paper evaluates on MNIST.  This environment has no network access, so
:mod:`repro.datasets.synthetic_mnist` procedurally generates an MNIST-like
28x28 grey-scale digit dataset (stroke-template digits with random affine
jitter, stroke thickness, blur and noise).  The substitution is documented
in DESIGN.md: the dataset exercises the identical inference code path and
the same accuracy-gap measurement as MNIST itself.
"""

from repro.datasets.synthetic_mnist import DigitDataset, generate_digit_dataset, render_digit

__all__ = ["DigitDataset", "generate_digit_dataset", "render_digit"]
