"""Procedural MNIST-like digit dataset.

Each digit class is defined by a set of strokes (line segments on a
normalised canvas, similar to a seven-segment rendering but with diagonals
and curves approximated by poly-lines).  A sample is produced by:

1. rendering the class strokes onto a 28x28 grid with an anti-aliased pen of
   random thickness,
2. applying a small random affine transform (shift, scale, rotation, shear),
3. adding Gaussian blur (separable box approximation) and pixel noise,
4. normalising to ``[0, 1]``.

The result is a 10-class image-classification problem of the same shape and
roughly the same difficulty profile as MNIST: nearest-centroid classifiers
score in the 80s, small CNNs in the high 90s, so the float-vs-SC accuracy
gap the paper reports can be measured meaningfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["DigitDataset", "render_digit", "generate_digit_dataset", "DIGIT_STROKES"]

IMAGE_SIZE = 28

#: Stroke templates per digit: each stroke is a poly-line of (x, y) points on
#: a unit canvas with the origin at the top-left corner.
DIGIT_STROKES: dict[int, list[list[tuple[float, float]]]] = {
    0: [[(0.30, 0.15), (0.70, 0.15), (0.78, 0.50), (0.70, 0.85), (0.30, 0.85),
         (0.22, 0.50), (0.30, 0.15)]],
    1: [[(0.35, 0.28), (0.52, 0.15), (0.52, 0.85)], [(0.35, 0.85), (0.68, 0.85)]],
    2: [[(0.28, 0.28), (0.40, 0.15), (0.62, 0.15), (0.72, 0.30), (0.62, 0.48),
         (0.35, 0.68), (0.25, 0.85), (0.75, 0.85)]],
    3: [[(0.28, 0.18), (0.62, 0.15), (0.72, 0.30), (0.58, 0.48), (0.72, 0.66),
         (0.62, 0.85), (0.28, 0.82)], [(0.45, 0.48), (0.58, 0.48)]],
    4: [[(0.62, 0.85), (0.62, 0.15), (0.25, 0.62), (0.78, 0.62)]],
    5: [[(0.72, 0.15), (0.30, 0.15), (0.28, 0.48), (0.60, 0.45), (0.72, 0.62),
         (0.62, 0.85), (0.28, 0.82)]],
    6: [[(0.68, 0.15), (0.40, 0.30), (0.28, 0.55), (0.32, 0.80), (0.60, 0.86),
         (0.72, 0.66), (0.58, 0.52), (0.32, 0.58)]],
    7: [[(0.25, 0.15), (0.75, 0.15), (0.48, 0.85)], [(0.38, 0.52), (0.62, 0.52)]],
    8: [[(0.50, 0.15), (0.70, 0.26), (0.58, 0.48), (0.30, 0.26), (0.50, 0.15)],
        [(0.58, 0.48), (0.74, 0.68), (0.50, 0.86), (0.28, 0.68), (0.42, 0.48),
         (0.58, 0.48)]],
    9: [[(0.68, 0.42), (0.42, 0.50), (0.30, 0.32), (0.44, 0.15), (0.66, 0.18),
         (0.70, 0.42), (0.62, 0.85), (0.34, 0.85)]],
}


@dataclass(frozen=True)
class DigitDataset:
    """Train/test split of the synthetic digit dataset.

    Attributes:
        train_images: float32 array of shape ``(n_train, 28, 28)`` in [0, 1].
        train_labels: int array of shape ``(n_train,)`` with classes 0-9.
        test_images: float32 array of shape ``(n_test, 28, 28)``.
        test_labels: int array of shape ``(n_test,)``.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray

    @property
    def n_classes(self) -> int:
        """Number of digit classes (always 10)."""
        return 10

    def subset(self, n_train: int, n_test: int) -> "DigitDataset":
        """Return a smaller dataset view (used by fast tests)."""
        if n_train > len(self.train_labels) or n_test > len(self.test_labels):
            raise DatasetError("requested subset larger than the dataset")
        return DigitDataset(
            train_images=self.train_images[:n_train],
            train_labels=self.train_labels[:n_train],
            test_images=self.test_images[:n_test],
            test_labels=self.test_labels[:n_test],
        )


def _stroke_mask(
    strokes: list[list[tuple[float, float]]],
    thickness: float,
    offset: np.ndarray,
    scale: float,
    rotation: float,
    shear: float,
) -> np.ndarray:
    """Rasterise transformed strokes onto a 28x28 grid with a soft pen."""
    ys, xs = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE]
    grid = np.stack([xs, ys], axis=-1).astype(np.float64) / (IMAGE_SIZE - 1)

    cos_r, sin_r = np.cos(rotation), np.sin(rotation)
    transform = np.array([[cos_r, -sin_r], [sin_r + shear, cos_r]]) * scale
    center = np.array([0.5, 0.5])

    image = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
    for stroke in strokes:
        points = np.asarray(stroke, dtype=np.float64)
        points = (points - center) @ transform.T + center + offset
        for start, end in zip(points[:-1], points[1:]):
            seg = end - start
            seg_len_sq = float(seg @ seg)
            rel = grid - start
            if seg_len_sq < 1e-12:
                dist = np.linalg.norm(rel, axis=-1)
            else:
                t = np.clip((rel @ seg) / seg_len_sq, 0.0, 1.0)
                nearest = start + t[..., None] * seg
                dist = np.linalg.norm(grid - nearest, axis=-1)
            image = np.maximum(image, np.exp(-((dist / thickness) ** 2)))
    return image


def render_digit(
    digit: int,
    rng: np.random.Generator,
    *,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render one randomised sample of ``digit``.

    Args:
        digit: class label 0-9.
        rng: random generator controlling all augmentation.
        jitter: augmentation strength multiplier (0 renders the clean
            template, 1 the default distribution).

    Returns:
        ``(28, 28)`` float array in [0, 1].
    """
    if digit not in DIGIT_STROKES:
        raise DatasetError(f"digit must be 0-9, got {digit}")
    thickness = 0.045 + 0.02 * jitter * rng.random()
    offset = rng.normal(0.0, 0.03 * jitter, size=2)
    scale = 1.0 + rng.normal(0.0, 0.08 * jitter)
    rotation = rng.normal(0.0, 0.12 * jitter)
    shear = rng.normal(0.0, 0.08 * jitter)
    image = _stroke_mask(DIGIT_STROKES[digit], thickness, offset, scale, rotation, shear)
    if jitter > 0:
        noise = rng.normal(0.0, 0.04 * jitter, size=image.shape)
        image = image + noise
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def generate_digit_dataset(
    n_train: int = 6000,
    n_test: int = 1000,
    seed: int = 2019,
    jitter: float = 1.0,
) -> DigitDataset:
    """Generate a balanced synthetic digit dataset.

    Args:
        n_train: number of training images (split evenly over 10 classes).
        n_test: number of test images.
        seed: generation seed; train and test use independent sub-seeds.
        jitter: augmentation strength (see :func:`render_digit`).

    Returns:
        A :class:`DigitDataset` with shuffled, class-balanced splits.
    """
    if n_train < 10 or n_test < 10:
        raise DatasetError("need at least one image per class in each split")

    def _make(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        labels = np.tile(np.arange(10), count // 10 + 1)[:count]
        rng.shuffle(labels)
        images = np.stack([render_digit(int(lbl), rng, jitter=jitter) for lbl in labels])
        return images.astype(np.float32), labels.astype(np.int64)

    train_images, train_labels = _make(n_train, np.random.default_rng(seed))
    test_images, test_labels = _make(n_test, np.random.default_rng(seed + 1))
    return DigitDataset(train_images, train_labels, test_images, test_labels)
