"""Reusable buffer arena for allocation-free hot loops.

The packed inference kernels are memory-bandwidth bound: at steady state
the arrays they need have the same shapes on every ``forward()`` call, so
re-allocating them per call only adds allocator traffic and page faults on
the hot path.  :class:`Workspace` is a tiny capacity-based arena that hands
out NumPy views over cached byte buffers, keyed by the call site: the
first request under a key allocates, later requests reuse (growing the
backing buffer only when a larger shape shows up, e.g. a tail chunk being
followed by a full one).

A workspace is owned by exactly one execution context (one backend
instance, one kernel invocation) and is **not** thread-safe: two
concurrent users of the same key would scribble over each other's data.
Backends therefore hold one workspace per replica, which is also what the
process-sharded parallel backend gives every worker for free.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Workspace"]

#: Every arena buffer starts on a 64-byte boundary: one full cache line,
#: and the widest vector width the compiled kernel tier may be built for
#: (AVX-512).  NumPy's own allocator guarantees less, so alignment is
#: enforced by over-allocating and slicing at the boundary.
_ALIGNMENT = 64


class Workspace:
    """Capacity-based reusable buffer arena.

    Buffers are keyed by an arbitrary hashable ``key`` (call sites use
    string/tuple keys naming the kernel and slot).  :meth:`array` returns
    a view with the requested shape and dtype over the cached byte buffer
    for that key, growing it when needed; the contents are
    **uninitialised** (like ``np.empty``), so callers must fully write
    the view before reading it.  Every buffer starts 64-byte aligned
    (see ``_ALIGNMENT``), which the compiled kernels of
    :mod:`repro.sc.native` rely on for aligned vector loads.
    """

    __slots__ = ("_pools", "_total", "_peak")

    def __init__(self) -> None:
        self._pools: dict[object, np.ndarray] = {}
        # Running byte total of the retained buffers and its high-water
        # mark, maintained on grow so `nbytes` / `stats()` stay O(1) on
        # the observability read path.
        self._total = 0
        self._peak = 0

    def array(
        self, key: object, shape: tuple[int, ...], dtype=np.uint64
    ) -> np.ndarray:
        """A reusable uninitialised array of the given shape and dtype.

        Args:
            key: hashable identity of the call site / slot.  Requests under
                the same key share one backing buffer, so a key must never
                be live twice at the same time.
            shape: requested array shape.
            dtype: requested element type.

        Returns:
            A C-contiguous view of the cached buffer with exactly
            ``shape`` and ``dtype``; contents are undefined.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = math.prod(shape) * dtype.itemsize
        raw = self._pools.get(key)
        if raw is None or raw.nbytes < nbytes:
            self._total -= raw.nbytes if raw is not None else 0
            # Over-allocate by one alignment unit and slice at the 64-byte
            # boundary; the slice (kept in the pool, holding its base
            # alive) is contiguous and aligned for every element dtype.
            capacity = max(nbytes, 1)
            base = np.empty(capacity + _ALIGNMENT, dtype=np.uint8)
            start = (-base.ctypes.data) % _ALIGNMENT
            raw = base[start : start + capacity]
            self._pools[key] = raw
            self._total += raw.nbytes
            if self._total > self._peak:
                self._peak = self._total
        return raw[:nbytes].view(dtype).reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently retained by the arena."""
        return self._total

    @property
    def peak_nbytes(self) -> int:
        """High-water mark of retained bytes (survives :meth:`clear`)."""
        return self._peak

    def stats(self) -> dict:
        """Arena statistics for the observability layer.

        Returns ``{"buffers", "nbytes", "peak_nbytes"}`` -- live buffer
        count, currently retained bytes, and the lifetime high-water
        mark.
        """
        return {
            "buffers": len(self._pools),
            "nbytes": self._total,
            "peak_nbytes": self._peak,
        }

    def __len__(self) -> int:
        return len(self._pools)

    def clear(self) -> None:
        """Drop every cached buffer (outstanding views keep theirs alive)."""
        self._pools.clear()
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workspace(buffers={len(self)}, nbytes={self.nbytes})"
