"""Comparator-network representation.

A comparator network is an ordered list of compare-and-swap operations on a
fixed number of lanes.  For binary inputs each comparator maps the pair
``(a, b)`` to ``(max(a, b), min(a, b))`` -- an OR gate and an AND gate in
hardware.  The network records which comparators can run in the same
pipeline stage so that AQFP latency (clock phases) can be derived directly
from its depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import NetlistError, ShapeError

__all__ = ["Comparator", "ComparatorNetwork"]


@dataclass(frozen=True)
class Comparator:
    """A single compare-and-swap between two lanes.

    After the operation, lane ``high`` holds the maximum of the two inputs
    and lane ``low`` holds the minimum.
    """

    high: int
    low: int

    def __post_init__(self) -> None:
        if self.high == self.low:
            raise NetlistError("comparator lanes must be distinct")
        if self.high < 0 or self.low < 0:
            raise NetlistError("comparator lanes must be non-negative")


class ComparatorNetwork:
    """An ordered comparator network over ``width`` lanes.

    Args:
        width: number of input/output lanes.
        comparators: iterable of :class:`Comparator` in execution order.
    """

    def __init__(self, width: int, comparators: Iterable[Comparator] = ()) -> None:
        if width <= 0:
            raise NetlistError(f"width must be positive, got {width}")
        self._width = int(width)
        self._comparators: list[Comparator] = []
        for comp in comparators:
            self.append(comp)

    # -- construction ------------------------------------------------------

    def append(self, comparator: Comparator) -> None:
        """Append a comparator, validating its lane indices."""
        if comparator.high >= self._width or comparator.low >= self._width:
            raise NetlistError(
                f"comparator {comparator} out of range for width {self._width}"
            )
        self._comparators.append(comparator)

    def extend(self, comparators: Iterable[Comparator]) -> None:
        """Append several comparators in order."""
        for comp in comparators:
            self.append(comp)

    def compose(self, other: "ComparatorNetwork") -> "ComparatorNetwork":
        """Return a new network running ``self`` then ``other``."""
        if other.width != self._width:
            raise NetlistError(
                f"cannot compose networks of widths {self._width} and {other.width}"
            )
        combined = ComparatorNetwork(self._width, self._comparators)
        combined.extend(other.comparators)
        return combined

    # -- properties --------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of lanes."""
        return self._width

    @property
    def comparators(self) -> Sequence[Comparator]:
        """The comparators in execution order."""
        return tuple(self._comparators)

    @property
    def size(self) -> int:
        """Total number of comparators (hardware cost driver)."""
        return len(self._comparators)

    def depth(self) -> int:
        """Number of pipeline stages when comparators are packed greedily.

        Two comparators can share a stage when they touch disjoint lanes and
        no earlier comparator on either lane is still pending.  The greedy
        levelisation below gives the standard network depth, which for the
        bitonic constructions equals the textbook ``O(log^2 n)`` bound.
        """
        ready_at = np.zeros(self._width, dtype=np.int64)
        depth = 0
        for comp in self._comparators:
            stage = int(max(ready_at[comp.high], ready_at[comp.low])) + 1
            ready_at[comp.high] = stage
            ready_at[comp.low] = stage
            depth = max(depth, stage)
        return depth

    def stages(self) -> list[list[Comparator]]:
        """Group comparators into their pipeline stages (same rule as depth)."""
        ready_at = np.zeros(self._width, dtype=np.int64)
        grouped: list[list[Comparator]] = []
        for comp in self._comparators:
            stage = int(max(ready_at[comp.high], ready_at[comp.low])) + 1
            ready_at[comp.high] = stage
            ready_at[comp.low] = stage
            while len(grouped) < stage:
                grouped.append([])
            grouped[stage - 1].append(comp)
        return grouped

    # -- evaluation --------------------------------------------------------

    def apply(self, lanes: np.ndarray) -> np.ndarray:
        """Run the network over binary lane data.

        Args:
            lanes: array of shape ``(width, ...)``; trailing axes are carried
                through unchanged (e.g. a stream axis or a batch axis).

        Returns:
            Array of the same shape with every comparator applied in order.
        """
        lanes = np.asarray(lanes)
        if lanes.shape[0] != self._width:
            raise ShapeError(
                f"lane axis has {lanes.shape[0]} entries, expected {self._width}"
            )
        out = lanes.copy()
        for comp in self._comparators:
            hi = np.maximum(out[comp.high], out[comp.low])
            lo = np.minimum(out[comp.high], out[comp.low])
            out[comp.high] = hi
            out[comp.low] = lo
        return out

    def sorts_all_binary_inputs(self) -> bool:
        """Exhaustively verify the network sorts every 0/1 input (<= 2^width).

        By the zero-one principle this proves the network is a sorter for
        arbitrary inputs.  Only practical for widths up to ~20.
        """
        if self._width > 20:
            raise NetlistError(
                "exhaustive zero-one check limited to width <= 20; "
                "use random checks for larger networks"
            )
        n_cases = 1 << self._width
        patterns = ((np.arange(n_cases)[None, :] >> np.arange(self._width)[:, None]) & 1).astype(
            np.uint8
        )
        sorted_out = self.apply(patterns)
        descending = np.sort(patterns, axis=0)[::-1]
        return bool(np.array_equal(sorted_out, descending))

    def gate_count(self) -> dict[str, int]:
        """Two-input gate cost of the binary network (one AND + one OR each)."""
        return {"and": self.size, "or": self.size}
