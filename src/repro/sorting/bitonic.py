"""Bitonic sorting-network constructors (paper Figs. 10-11).

Two constructors are provided:

* :func:`bitonic_sorter` -- a full sorter of arbitrary width.  Power-of-two
  widths give the textbook network of Fig. 10; other widths use the
  arbitrary-length bitonic construction, which is the modular generalisation
  of the paper's odd-width sorter (a smaller first merge stage instead of a
  dedicated 3-input sorter, with identical asymptotic cost and the same
  sorting guarantee).
* :func:`bitonic_merger` -- the merge-only network that sorts an input that
  is already *bitonic* (e.g. an ascending half concatenated with a
  descending half).  The proposed feature-extraction and pooling blocks use
  an ``M``-input sorter plus a ``2M``-input merger, because their feedback
  vector is sorted by construction.

Both return :class:`~repro.sorting.network.ComparatorNetwork` objects, so
gate counts and pipeline depth fall out directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NetlistError
from repro.sorting.network import Comparator, ComparatorNetwork

__all__ = ["bitonic_sorter", "bitonic_merger", "sort_bits", "merge_sorted_halves"]


def _greatest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than ``n`` (requires ``n >= 2``)."""
    power = 1
    while power * 2 < n:
        power *= 2
    return power


def _emit_merge(
    comparators: list[Comparator], lo: int, length: int, descending: bool
) -> None:
    """Emit comparators that sort a bitonic range ``[lo, lo + length)``."""
    if length <= 1:
        return
    m = _greatest_power_of_two_below(length)
    for i in range(lo, lo + length - m):
        if descending:
            comparators.append(Comparator(high=i, low=i + m))
        else:
            comparators.append(Comparator(high=i + m, low=i))
    _emit_merge(comparators, lo, m, descending)
    _emit_merge(comparators, lo + m, length - m, descending)


def _emit_sort(
    comparators: list[Comparator], lo: int, length: int, descending: bool
) -> None:
    """Emit comparators that sort an arbitrary range ``[lo, lo + length)``."""
    if length <= 1:
        return
    m = length // 2
    _emit_sort(comparators, lo, m, not descending)
    _emit_sort(comparators, lo + m, length - m, descending)
    _emit_merge(comparators, lo, length, descending)


def bitonic_sorter(width: int, descending: bool = True) -> ComparatorNetwork:
    """Build a bitonic sorting network for ``width`` lanes.

    Args:
        width: number of lanes (any positive integer).
        descending: sort order along increasing lane index.

    Returns:
        A comparator network that sorts arbitrary inputs.
    """
    if width <= 0:
        raise NetlistError(f"sorter width must be positive, got {width}")
    comparators: list[Comparator] = []
    _emit_sort(comparators, 0, width, descending)
    return ComparatorNetwork(width, comparators)


def bitonic_merger(width: int, descending: bool = True) -> ComparatorNetwork:
    """Build a bitonic merger for ``width`` lanes.

    The merger sorts any *bitonic* input sequence (ascending then descending
    or a cyclic rotation thereof).  It is the cheap second half of the
    feedback blocks, where one operand is freshly sorted and the other is
    the already sorted feedback vector.
    """
    if width <= 0:
        raise NetlistError(f"merger width must be positive, got {width}")
    comparators: list[Comparator] = []
    _emit_merge(comparators, 0, width, descending)
    return ComparatorNetwork(width, comparators)


def sort_bits(bits: np.ndarray, descending: bool = True, axis: int = 0) -> np.ndarray:
    """Plain (software) sort of binary lane data, as a fast functional model.

    Equivalent to running :func:`bitonic_sorter` over the same lanes; used by
    the vectorised block models where constructing the network object would
    only slow the simulation down.
    """
    bits = np.asarray(bits)
    ordered = np.sort(bits, axis=axis)
    if descending:
        ordered = np.flip(ordered, axis=axis)
    return ordered


def merge_sorted_halves(
    top: np.ndarray, bottom: np.ndarray, descending: bool = True
) -> np.ndarray:
    """Functionally merge two sorted binary lane groups into one sorted group.

    ``top`` and ``bottom`` must each already be sorted along axis 0 (in any
    consistent order); for binary data the merged result is simply the sort
    of the concatenation, which is what the hardware merger computes.
    """
    stacked = np.concatenate([np.asarray(top), np.asarray(bottom)], axis=0)
    return sort_bits(stacked, descending=descending, axis=0)
