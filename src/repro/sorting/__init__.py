"""Binary sorting networks.

The paper's central hardware trick is that *binary* sorting of a bit vector
is cheap in AQFP: a compare-and-swap of two bits is just an OR gate (max)
and an AND gate (min), so a bitonic sorting network of width ``M`` costs
``O(M log^2 M)`` two-input gates and ``O(log^2 M)`` pipeline depth -- with no
feedback state and therefore no RAW hazards.  This subpackage provides:

* :class:`~repro.sorting.network.ComparatorNetwork` -- an explicit list of
  compare-and-swap operations with size/depth accounting and batch
  evaluation over stochastic bit matrices.
* :mod:`~repro.sorting.bitonic` -- constructors for descending/ascending
  bitonic sorters of any width (the paper's odd-width extension included)
  and for the bitonic merger used by the feedback blocks.
"""

from repro.sorting.bitonic import (
    bitonic_merger,
    bitonic_sorter,
    merge_sorted_halves,
    sort_bits,
)
from repro.sorting.network import Comparator, ComparatorNetwork

__all__ = [
    "Comparator",
    "ComparatorNetwork",
    "bitonic_sorter",
    "bitonic_merger",
    "sort_bits",
    "merge_sorted_halves",
]
